"""Distillation-temperature sweep (the experiment behind paper Table III).

Fine-tunes the same quantized CNN under an aggressive approximate
multiplier with ApproxKD at each temperature of the paper's grid
{1, 2, 5, 10}, and reports the best/worst temperature. With a large-MRE
multiplier, higher temperatures should win — the paper's central ablation
finding.

Run:  python examples/temperature_sweep.py [multiplier]
      (default multiplier: truncated5)
"""

import sys

from repro.approx import get_multiplier, mean_relative_error
from repro.data import make_synthetic_cifar
from repro.distill import TEMPERATURE_GRID, recommended_t2
from repro.models import simplecnn
from repro.pipeline import approximation_stage, quantization_stage
from repro.train import TrainConfig, cross_entropy_loss, train_model


def main(multiplier_name: str = "truncated5") -> None:
    mult = get_multiplier(multiplier_name)
    mre = mean_relative_error(mult)
    print(f"multiplier: {mult.name}  (MRE {100 * mre:.1f}%)")

    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    ft_config = TrainConfig(epochs=3, batch_size=64, lr=0.02, momentum=0.9, seed=0)
    quant_model, _ = quantization_stage(model, data, train_config=ft_config, temperature=1.0)

    results = {}
    for temp in TEMPERATURE_GRID:
        _, result = approximation_stage(
            quant_model,
            data,
            mult,
            method="approxkd",
            train_config=ft_config,
            temperature=temp,
        )
        results[temp] = result
        print(
            f"T2 = {temp:5.1f}: initial {100 * result.accuracy_before:6.2f}%  "
            f"final {100 * result.accuracy_after:6.2f}%"
        )

    best = max(results, key=lambda t: results[t].accuracy_after)
    worst = min(results, key=lambda t: results[t].accuracy_after)
    print(
        f"\nbest T2 = {best:g} ({100 * results[best].accuracy_after:.2f}%), "
        f"worst T2 = {worst:g} ({100 * results[worst].accuracy_after:.2f}%)"
    )
    print(f"paper's policy would pick T2 = {recommended_t2(mre):g} for this MRE")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "truncated5")
