"""Fully instrumented ApproxKD run: events, spans, metrics, profiler.

Trains a narrow ResNet20, quantizes it, attaches an approximate multiplier,
and records everything the observability subsystem offers along the way:

- a JSONL event log (``instrumented_run.jsonl``) with run/epoch/eval/stage
  and per-epoch ``metrics`` events — afterwards,
  ``repro report instrumented_run.jsonl`` reconstructs the run offline,
  including p50/p95/p99 latency quantiles;
- hierarchical spans (:mod:`repro.obs.trace`) covering every epoch, eval,
  approximate GEMM and Monte-Carlo chunk — exported as a Chrome
  ``trace_event`` file (``instrumented_trace.json``) loadable in
  chrome://tracing or Perfetto, or summarised with
  ``repro trace instrumented_trace.json``. The error models of two
  multipliers are fitted on a two-process pool, so the trace contains
  spans from at least two worker processes parented onto the dispatching
  ``fit_error_models`` span;
- streaming metrics (:mod:`repro.obs.metrics`): per-batch train/eval
  latency histograms, Monte-Carlo draw latency, plan-cache hit counters
  and per-layer ε(y)/grad-norm gauges via
  :class:`~repro.train.TelemetryCallback`;
- :class:`~repro.obs.StatsHook` on every quantized GEMM layer, streaming
  per-epoch activation ranges into ``layer_stats`` events;
- the hot-path profiler, whose :class:`~repro.obs.ProfileReport` shows
  where the wall time went (LUT gathers, im2col, fake quantization).

The approximate fine-tune is spelled out manually (clone, attach
multiplier, train) rather than through ``approximation_stage`` so the
stats hooks can be attached to the exact model instance that trains.

Run:  python examples/instrumented_training.py
"""

from repro.approx import get_multiplier
from repro.data import make_synthetic_cifar
from repro.distill import clone_model
from repro.ge import estimate_error_model
from repro.models import resnet20
from repro.obs import (
    EventLog,
    JsonlSink,
    attach_stats_hooks,
    detach_stats_hooks,
    profiled,
    set_event_log,
)
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.parallel import ParallelConfig, map_workers
from repro.pipeline import quantization_stage
from repro.quant import QuantConv2d, QuantLinear
from repro.sim import attach_multiplier, evaluate_accuracy
from repro.train import TelemetryCallback, TrainConfig, cross_entropy_loss, train_model

LOGFILE = "instrumented_run.jsonl"
TRACEFILE = "instrumented_trace.json"


def fit_one(name: str):
    """Fit one multiplier's error model (module-level: process-picklable)."""
    return name, estimate_error_model(get_multiplier(name))


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = resnet20(width_mult=0.25, rng=0)

    log = EventLog()
    log.add_sink(JsonlSink(LOGFILE))
    previous = set_event_log(log)
    tr.reset_tracing()
    tr.enable_tracing()
    met.reset_metrics()
    met.enable_metrics()
    log.run_start(
        command="examples/instrumented_training", config={"model": "resnet20/0.25"}
    )
    try:
        with profiled() as profile, tr.span("instrumented_run"):
            train_model(
                model,
                data,
                cross_entropy_loss(),
                TrainConfig(epochs=4, batch_size=64, lr=0.05, momentum=0.9, seed=0),
            )

            ft = TrainConfig(
                epochs=2, batch_size=32, lr=0.01, momentum=0.9, grad_clip=1.0, seed=0
            )
            quant_model, _ = quantization_stage(model, data, train_config=ft, temperature=1.0)

            # Fit two error models on a two-process pool: the worker spans
            # (mc.chunk, approx.matmul, ...) travel back with the results
            # and appear in the exported trace under their worker pids,
            # parented onto this fit_error_models span.
            with tr.span("fit_error_models"):
                fitted = dict(
                    map_workers(
                        fit_one,
                        ["truncated4", "mitchell"],
                        ParallelConfig(workers=2, backend="process"),
                    )
                )

            # Approximate fine-tune, instrumented per layer: activation
            # ranges, ε(y) error of the attached multiplier, gradient norms.
            student = clone_model(quant_model)
            attach_multiplier(student, "truncated4", error_model=fitted["truncated4"])
            hooks = attach_stats_hooks(
                student, layer_types=(QuantConv2d, QuantLinear), track_error=True
            )
            telemetry = TelemetryCallback(hooks, event_log=log)
            log.stage("approximation", "start", multiplier="truncated4")
            train_model(student, data, cross_entropy_loss(), ft, callbacks=[telemetry])
            detach_stats_hooks(hooks)
            accuracy = evaluate_accuracy(student, data.test_x, data.test_y)
            log.eval("approximation/after_ft", accuracy)
            log.stage("approximation", "end", accuracy_after=accuracy)

        print(f"approximate accuracy: {100 * accuracy:.2f}%")
        print()
        print("last-epoch layer stats (first three quantized layers):")
        for name, stats in list(telemetry.per_epoch[-1].items())[:3]:
            print(
                f"  {name:24s} act[{stats.act_min:8.2f},{stats.act_max:8.2f}]  "
                f"eps_mean={stats.eps_mean:8.3f}  grad_norm={stats.grad_norm}"
            )
        print()
        print(profile.to_table(top=8))

        # Final metrics snapshot + exported Chrome trace, mirroring what
        # the CLI's --metrics/--trace flags do at run end.
        snapshot = met.emit_snapshot(log, scope="final")["metrics"]
        eval_hist = snapshot["histograms"].get("eval.batch_seconds")
        if eval_hist is not None:
            q = met.snapshot_quantiles(eval_hist)
            print()
            print(
                f"eval batch latency: p50={q['p50'] * 1e3:.2f}ms  "
                f"p95={q['p95'] * 1e3:.2f}ms  p99={q['p99'] * 1e3:.2f}ms  "
                f"({eval_hist['count']} batches, error <= "
                f"{100 * met.QUANTILE_REL_ERROR:.1f}%)"
            )
        tr.disable_tracing()
        spans = tr.get_trace_recorder().spans()
        tr.write_chrome_trace(TRACEFILE, spans)
        worker_pids = {s.pid for s in spans}
        log.emit(
            "trace",
            path=TRACEFILE,
            spans=len(spans),
            top_self_time=tr.self_time_summary(spans)[:10],
        )
        print(f"trace: {TRACEFILE} ({len(spans)} spans, {len(worker_pids)} processes)")
        log.run_end(status="ok")
    finally:
        tr.disable_tracing()
        met.disable_metrics()
        set_event_log(previous)
        log.close()
    print()
    print(f"event log written to {LOGFILE}; inspect it with:")
    print(f"  repro report {LOGFILE}")
    print(f"  repro trace {TRACEFILE}")


if __name__ == "__main__":
    main()
