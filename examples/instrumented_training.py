"""Fully instrumented ApproxKD run: event log, stats hooks, profiler.

Trains a narrow ResNet20, quantizes it, attaches an approximate multiplier,
and records everything the observability subsystem offers along the way:

- a JSONL event log (``instrumented_run.jsonl``) with run/epoch/eval/stage
  events — afterwards, ``repro report instrumented_run.jsonl`` reconstructs
  the run offline;
- :class:`~repro.obs.StatsHook` on every quantized GEMM layer, streaming
  per-epoch activation ranges, ε(y) approximation error and gradient norms
  into ``layer_stats`` events via :class:`~repro.train.TelemetryCallback`;
- the hot-path profiler, whose :class:`~repro.obs.ProfileReport` shows
  where the wall time went (LUT gathers, im2col, fake quantization).

The approximate fine-tune is spelled out manually (clone, attach
multiplier, train) rather than through ``approximation_stage`` so the
stats hooks can be attached to the exact model instance that trains.

Run:  python examples/instrumented_training.py
"""

from repro.data import make_synthetic_cifar
from repro.distill import clone_model
from repro.models import resnet20
from repro.obs import (
    EventLog,
    JsonlSink,
    attach_stats_hooks,
    detach_stats_hooks,
    profiled,
    set_event_log,
)
from repro.pipeline import quantization_stage
from repro.quant import QuantConv2d, QuantLinear
from repro.sim import attach_multiplier, evaluate_accuracy
from repro.train import TelemetryCallback, TrainConfig, cross_entropy_loss, train_model

LOGFILE = "instrumented_run.jsonl"


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = resnet20(width_mult=0.25, rng=0)

    log = EventLog()
    log.add_sink(JsonlSink(LOGFILE))
    previous = set_event_log(log)
    log.run_start(
        command="examples/instrumented_training", config={"model": "resnet20/0.25"}
    )
    try:
        with profiled() as profile:
            train_model(
                model,
                data,
                cross_entropy_loss(),
                TrainConfig(epochs=4, batch_size=64, lr=0.05, momentum=0.9, seed=0),
            )

            ft = TrainConfig(
                epochs=2, batch_size=32, lr=0.01, momentum=0.9, grad_clip=1.0, seed=0
            )
            quant_model, _ = quantization_stage(model, data, train_config=ft, temperature=1.0)

            # Approximate fine-tune, instrumented per layer: activation
            # ranges, ε(y) error of the attached multiplier, gradient norms.
            student = clone_model(quant_model)
            attach_multiplier(student, "truncated4")
            hooks = attach_stats_hooks(
                student, layer_types=(QuantConv2d, QuantLinear), track_error=True
            )
            telemetry = TelemetryCallback(hooks, event_log=log)
            log.stage("approximation", "start", multiplier="truncated4")
            train_model(student, data, cross_entropy_loss(), ft, callbacks=[telemetry])
            detach_stats_hooks(hooks)
            accuracy = evaluate_accuracy(student, data.test_x, data.test_y)
            log.eval("approximation/after_ft", accuracy)
            log.stage("approximation", "end", accuracy_after=accuracy)

        print(f"approximate accuracy: {100 * accuracy:.2f}%")
        print()
        print("last-epoch layer stats (first three quantized layers):")
        for name, stats in list(telemetry.per_epoch[-1].items())[:3]:
            print(
                f"  {name:24s} act[{stats.act_min:8.2f},{stats.act_max:8.2f}]  "
                f"eps_mean={stats.eps_mean:8.3f}  grad_norm={stats.grad_norm}"
            )
        print()
        print(profile.to_table(top=8))
        log.run_end(status="ok")
    finally:
        set_event_log(previous)
        log.close()
    print()
    print(f"event log written to {LOGFILE}; inspect it with:")
    print(f"  repro report {LOGFILE}")


if __name__ == "__main__":
    main()
