"""Quickstart: the full optimization flow of the paper in ~2 minutes on CPU.

Steps (Algorithm 1 of the paper):

1. Train a small full-precision CNN on the synthetic 10-class dataset.
2. Quantization stage: convert to 8A4W, calibrate with MinPropQE, fine-tune
   with knowledge distillation from the FP teacher (T1 = 1).
3. Approximation stage: execute all GEMMs through an approximate multiplier
   (truncated-4) and recover the lost accuracy with ApproxKD + gradient
   estimation (T2 = 5).
4. Report the energy savings of the final approximate network.

Run:  python examples/quickstart.py
"""

from repro.approx import get_multiplier, network_energy
from repro.data import make_synthetic_cifar
from repro.models import simplecnn
from repro.pipeline import approximation_stage, quantization_stage
from repro.sim import count_macs, evaluate_accuracy
from repro.train import TrainConfig, cross_entropy_loss, train_model

MULTIPLIER = "truncated4"


def main() -> None:
    print("== 1. data + full-precision training ==")
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    fp_config = TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0)
    train_model(model, data, cross_entropy_loss(), fp_config)
    fp_acc = evaluate_accuracy(model, data.test_x, data.test_y)
    print(f"full-precision accuracy: {100 * fp_acc:.2f}%")

    print("\n== 2. quantization stage (8A4W + KD, T1=1) ==")
    ft_config = TrainConfig(epochs=3, batch_size=64, lr=0.02, momentum=0.9, seed=0)
    quant_model, quant_result = quantization_stage(
        model, data, train_config=ft_config, temperature=1.0
    )
    print(f"accuracy after quantization, before FT: {100 * quant_result.accuracy_before:.2f}%")
    print(f"accuracy after KD fine-tuning:          {100 * quant_result.accuracy_after:.2f}%")

    print(f"\n== 3. approximation stage ({MULTIPLIER} + ApproxKD + GE, T2=5) ==")
    approx_model, approx_result = approximation_stage(
        quant_model,
        data,
        MULTIPLIER,
        method="approxkd_ge",
        train_config=ft_config,
        temperature=5.0,
    )
    print(f"accuracy with approximate multipliers, before FT: "
          f"{100 * approx_result.accuracy_before:.2f}%")
    print(f"accuracy after ApproxKD+GE fine-tuning:           "
          f"{100 * approx_result.accuracy_after:.2f}%")

    print("\n== 4. energy report ==")
    macs = count_macs(approx_model, data.image_shape).total_macs
    report = network_energy(macs, get_multiplier(MULTIPLIER))
    print(
        f"{macs / 1e6:.1f}M MACs/inference on {MULTIPLIER}: "
        f"{report.savings_percent:.0f}% multiplier energy saved "
        f"at {100 * (fp_acc - approx_result.accuracy_after):.2f}% accuracy cost vs FP"
    )


if __name__ == "__main__":
    main()
