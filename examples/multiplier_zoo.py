"""Tour of every approximate-multiplier family in the library.

Prints a full characterisation table — MRE (Eq. 14), bias, worst-case
error, exactly-computed fraction, energy savings — for the paper's
multipliers plus the extension families (bias-corrected truncation,
Mitchell logarithmic, DRUM), an error histogram for one biased and one
unbiased design, and the per-operand-magnitude error profile that explains
*where* each design spends its error budget.

Run:  python examples/multiplier_zoo.py
"""

from repro.approx import (
    available_multipliers,
    compare_multipliers,
    error_by_operand_magnitude,
    error_histogram,
)

EXTENSIONS = ["truncated4bc", "truncated5bc", "mitchell", "drum3", "drum4", "drum5"]


def _bar(value: float, scale: float, width: int = 30) -> str:
    filled = int(round(width * min(value / scale, 1.0))) if scale else 0
    return "#" * filled


def main() -> None:
    names = available_multipliers() + EXTENSIONS
    summaries = compare_multipliers(names)

    print(
        f"{'name':16s} {'MRE[%]':>7s} {'bias':>5s} {'maxerr':>7s} "
        f"{'exact[%]':>9s} {'savings[%]':>10s}"
    )
    print("-" * 60)
    for s in summaries:
        tag = "biased" if s.is_biased else "  ~0  "
        print(
            f"{s.name:16s} {100 * s.mre:7.1f} {tag:>5s} {s.max_abs_error:7d} "
            f"{100 * s.error_free_fraction:9.1f} {100 * s.energy_savings:10.0f}"
        )

    for name in ("truncated5", "evoapprox228"):
        counts, edges = error_histogram(
            __import__("repro.approx", fromlist=["get_multiplier"]).get_multiplier(name),
            bins=13,
        )
        peak = counts.max()
        print(f"\nerror histogram — {name}:")
        for count, lo, hi in zip(counts, edges, edges[1:]):
            print(f"  [{lo:8.0f},{hi:8.0f}) {_bar(count, peak)} {count}")

    print("\nmean relative error by activation magnitude:")
    for name in ("truncated5", "drum4"):
        mult = __import__("repro.approx", fromlist=["get_multiplier"]).get_multiplier(name)
        profile = error_by_operand_magnitude(mult, num_bins=8)
        row = "  ".join(f"{100 * e:5.1f}" for _, e in profile)
        print(f"  {name:12s} {row}")
    print("  (columns: activation-magnitude bins, small -> large; values in %)")
    print(
        "\nTakeaway: truncation concentrates error on small operands and is "
        "one-sided (GE gets a slope); DRUM is exact below its window and "
        "nearly unbiased (GE degenerates to STE)."
    )


if __name__ == "__main__":
    main()
