"""Monte-Carlo error profiling of approximate multipliers (paper Figs. 2/3).

Profiles the GEMM-level approximation error of one biased (truncated) and
one unbiased (EvoApprox) multiplier, fits the paper's piecewise-linear
error function to each, and renders the profiles as ASCII scatter plots.
The truncated multiplier shows a clear negative slope (its gradient feeds
Eq. 12's ``(1 + K)`` correction); the EvoApprox error only fits a constant,
so gradient estimation degenerates to the straight-through estimator.

Run:  python examples/error_profiling.py
"""

import numpy as np

from repro.approx import get_multiplier, mean_relative_error
from repro.ge import fit_error_model, profile_multiplier_error


def ascii_profile(profile, model, bins: int = 15, width: int = 56) -> str:
    edges = np.linspace(profile.y.min(), profile.y.max(), bins + 1)
    rows = []
    lo = min(profile.eps.min(), model.lower)
    hi = max(profile.eps.max(), model.upper)
    span = hi - lo or 1.0
    for a, b in zip(edges, edges[1:]):
        mask = (profile.y >= a) & (profile.y < b)
        if mask.sum() < 5:
            continue
        mean_eps = profile.eps[mask].mean()
        center = 0.5 * (a + b)
        line = [" "] * width
        fit_pos = int((model(np.array([center]))[0] - lo) / span * (width - 1))
        mean_pos = int((mean_eps - lo) / span * (width - 1))
        line[fit_pos] = "-"
        line[mean_pos] = "*"
        rows.append(f"  y={center:9.1f} |{''.join(line)}|")
    return "\n".join(rows)


def main() -> None:
    for name in ("truncated5", "evoapprox228"):
        mult = get_multiplier(name)
        profile = profile_multiplier_error(mult, num_simulations=50, rng=0)
        model = fit_error_model(profile.y, profile.eps)
        print(f"\n=== {name} (MRE {100 * mean_relative_error(mult):.1f}%) ===")
        print(ascii_profile(profile, model))
        if model.is_constant:
            print(f"  fit: constant f(y) = {model.c:.2f}  ->  GE == STE")
        else:
            print(
                f"  fit: f(y) = min({model.upper:.1f}, "
                f"max({model.k:.4f}*y + {model.c:.2f}, {model.lower:.1f}))"
            )
            print(f"  gradient scale in linear region: 1 + k = {1 + model.k:.4f}")


if __name__ == "__main__":
    main()
