"""Partial (resiliency-based) approximation — the alternative the paper's
related-work section contrasts with its full-approximation approach.

Quantizes a trained CNN, ranks its layers by resiliency to an aggressive
multiplier, then greedily approximates the most resilient layers within an
accuracy budget — reporting the accuracy/energy point reached *without any
retraining*, versus the full-approximation + fine-tuning flow of the paper.

Run:  python examples/partial_approximation.py
"""

from repro.data import iterate_batches, make_synthetic_cifar
from repro.models import simplecnn
from repro.quant import calibrate_model, quantize_model
from repro.sim import (
    evaluate_accuracy,
    greedy_heterogeneous_assignment,
    layer_resiliency,
    partial_approximation_energy,
)
from repro.train import TrainConfig, cross_entropy_loss, train_model

MULTIPLIER = "truncated5"
ACCURACY_BUDGET = 0.02  # tolerate up to 2 points of accuracy drop


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    quant = quantize_model(model)
    calibrate_model(
        quant,
        iterate_batches(data.train_x, data.train_y, 64, shuffle=False),
        max_batches=4,
    )
    baseline = evaluate_accuracy(quant, data.test_x, data.test_y)
    print(f"8A4W exact accuracy: {100 * baseline:.2f}%\n")

    print(f"per-layer resiliency to {MULTIPLIER} (most resilient first):")
    for entry in layer_resiliency(quant, data.test_x, data.test_y, MULTIPLIER):
        print(f"  {entry.layer_name:30s} drop {100 * entry.drop:6.2f}%")

    assignment = greedy_heterogeneous_assignment(
        quant, data.test_x, data.test_y, MULTIPLIER, accuracy_budget=ACCURACY_BUDGET
    )
    final = evaluate_accuracy(quant, data.test_x, data.test_y)
    savings = partial_approximation_energy(quant, data.image_shape, assignment)
    print(
        f"\ngreedy partial approximation within {100 * ACCURACY_BUDGET:.0f}% budget: "
        f"{len(assignment)} layers approximated"
    )
    print(f"accuracy {100 * baseline:.2f}% -> {100 * final:.2f}%")
    print(f"multiplier-energy savings: {100 * savings:.1f}% "
          f"(full approximation would give 38%, but needs the paper's fine-tuning)")


if __name__ == "__main__":
    main()
