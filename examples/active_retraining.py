"""Active (noisy-weight) retraining for approximation robustness.

AxTrain [4] — the paper's "normal" baseline in its passive form — also
proposes an *active* mode that steers weights toward noise-insensitive
regions. This example fine-tunes the same quantized model twice (plain vs
noisy-weight training) and compares how well each tolerates approximate
multipliers it was never trained on.

Run:  python examples/active_retraining.py
"""

from repro.data import make_synthetic_cifar
from repro.distill import clone_model
from repro.models import simplecnn
from repro.pipeline import quantization_stage
from repro.sim import approximate_execution, evaluate_accuracy
from repro.train import (
    TrainConfig,
    cross_entropy_loss,
    noisy_weight_training,
    train_model,
)

PROBE_MULTIPLIERS = ["truncated3", "truncated4", "evoapprox111", "evoapprox228"]


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    ft = TrainConfig(epochs=3, batch_size=32, lr=0.01, momentum=0.9, grad_clip=1.0, seed=0)
    quant_model, _ = quantization_stage(model, data, train_config=ft, temperature=1.0)

    passive = clone_model(quant_model)
    train_model(passive, data, cross_entropy_loss(), ft)

    active = clone_model(quant_model)
    noisy_weight_training(active, data, cross_entropy_loss(), ft, noise_sigma=0.08)

    print(f"{'multiplier':14s} {'passive[%]':>11s} {'active[%]':>10s}")
    print("-" * 38)
    exact_p = evaluate_accuracy(passive, data.test_x, data.test_y)
    exact_a = evaluate_accuracy(active, data.test_x, data.test_y)
    print(f"{'exact':14s} {100 * exact_p:11.2f} {100 * exact_a:10.2f}")
    wins = 0
    for name in PROBE_MULTIPLIERS:
        with approximate_execution(passive, name):
            acc_p = evaluate_accuracy(passive, data.test_x, data.test_y)
        with approximate_execution(active, name):
            acc_a = evaluate_accuracy(active, data.test_x, data.test_y)
        wins += acc_a >= acc_p
        print(f"{name:14s} {100 * acc_p:11.2f} {100 * acc_a:10.2f}")
    print(
        f"\nactive retraining matches or beats passive on {wins}/"
        f"{len(PROBE_MULTIPLIERS)} unseen multipliers"
    )


if __name__ == "__main__":
    main()
