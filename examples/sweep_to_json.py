"""Run a multiplier × method sweep and export the results as JSON.

Demonstrates the programmatic sweep harness (`repro.pipeline.run_sweep`)
that the table benchmarks are built on: quantize a model once, sweep the
approximation stage over a grid, inspect the result object, and persist it
for downstream analysis.

Run:  python examples/sweep_to_json.py [output.json]
"""

import sys

from repro.data import make_synthetic_cifar
from repro.models import simplecnn
from repro.pipeline import quantization_stage, run_sweep
from repro.train import TrainConfig, cross_entropy_loss, train_model


def main(out_path: str = "sweep_results.json") -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    ft = TrainConfig(epochs=2, batch_size=32, lr=0.01, momentum=0.9, grad_clip=1.0, seed=0)
    quant_model, _ = quantization_stage(model, data, train_config=ft, temperature=1.0)

    result = run_sweep(
        quant_model,
        data,
        multipliers=["truncated3", "truncated4", "truncated5", "evoapprox228"],
        methods=("normal", "approxkd_ge"),
        train_config=ft,
    )

    print(f"{'multiplier':14s} {'method':12s} {'T2':>4s} {'init[%]':>8s} {'final[%]':>9s}")
    print("-" * 52)
    for p in result.points:
        print(
            f"{p.multiplier:14s} {p.method:12s} {p.temperature:4.0f} "
            f"{100 * p.initial_accuracy:8.2f} {100 * p.final_accuracy:9.2f}"
        )
    best = result.best_point()
    print(
        f"\nbest cell: {best.multiplier} + {best.method} "
        f"({100 * best.final_accuracy:.2f}% at {100 * best.energy_savings:.0f}% savings)"
    )
    result.to_json(out_path)
    print(f"sweep written to {out_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sweep_results.json")
