"""Weight-memory fault sensitivity of a quantized CNN.

Sweeps stuck-bit error rates over the 4-bit weight store of an 8A4W model
and reports accuracy — the reliability counterpart to designed
approximation error, and a common analysis in approximate-computing
deployments (cheap, lower-voltage memories trade bit errors for energy).

Run:  python examples/fault_tolerance.py
"""

from repro.data import iterate_batches, make_synthetic_cifar
from repro.models import simplecnn
from repro.quant import calibrate_model, quantize_model
from repro.sim import evaluate_accuracy, fault_sensitivity_sweep
from repro.train import TrainConfig, cross_entropy_loss, train_model


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    quant = quantize_model(model)
    calibrate_model(
        quant,
        iterate_batches(data.train_x, data.train_y, 64, shuffle=False),
        max_batches=4,
    )
    clean = evaluate_accuracy(quant, data.test_x, data.test_y)
    print(f"clean 8A4W accuracy: {100 * clean:.2f}%\n")

    rates = [0.0, 0.001, 0.005, 0.02, 0.05, 0.1, 0.2]
    reports = fault_sensitivity_sweep(
        quant, data.test_x, data.test_y, bit_error_rates=rates, trials=3, rng=0
    )
    print(f"{'BER':>8s} {'acc[%]':>8s} {'drop[%]':>8s}")
    print("-" * 28)
    for report in reports:
        print(
            f"{report.bit_error_rate:8.3f} {100 * report.accuracy:8.2f} "
            f"{100 * (clean - report.accuracy):8.2f}"
        )
    print(
        f"\n({reports[-1].total_bits} weight bits per model; accuracies are "
        "means over 3 fault patterns)"
    )


if __name__ == "__main__":
    main()
