"""Energy/accuracy trade-off sweep across every multiplier in the registry.

Quantizes a trained CNN to 8A4W and evaluates it with each approximate
multiplier the paper uses — *without* fine-tuning — then prints the
accuracy/energy-savings trade-off table (the raw material of the paper's
Pareto selection). Multipliers whose error is too large to be usable
without retraining (e.g. EvoApprox 249) are clearly visible.

Run:  python examples/energy_accuracy_tradeoff.py
"""

from repro.approx import (
    available_multipliers,
    get_multiplier,
    mean_relative_error,
    network_energy,
)
from repro.data import iterate_batches, make_synthetic_cifar
from repro.models import simplecnn
from repro.quant import calibrate_model, quantize_model
from repro.sim import approximate_execution, count_macs, evaluate_accuracy
from repro.train import TrainConfig, cross_entropy_loss, train_model


def main() -> None:
    data = make_synthetic_cifar(num_train=600, num_test=300, image_size=16, seed=1)
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=8, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )

    quant = quantize_model(model)
    calibrate_model(
        quant,
        iterate_batches(data.train_x, data.train_y, 64, shuffle=False),
        max_batches=4,
    )
    macs = count_macs(quant, data.image_shape).total_macs
    base_acc = evaluate_accuracy(quant, data.test_x, data.test_y)
    print(f"8A4W exact accuracy: {100 * base_acc:.2f}%  ({macs / 1e6:.1f}M MACs)\n")

    print(f"{'multiplier':14s} {'MRE[%]':>7s} {'savings[%]':>10s} {'acc[%]':>7s} {'drop[%]':>8s}")
    print("-" * 52)
    for name in available_multipliers():
        mult = get_multiplier(name)
        with approximate_execution(quant, mult):
            acc = evaluate_accuracy(quant, data.test_x, data.test_y)
        savings = network_energy(macs, mult).savings_percent
        print(
            f"{name:14s} {100 * mean_relative_error(mult):7.1f} {savings:10.0f} "
            f"{100 * acc:7.2f} {100 * (base_acc - acc):8.2f}"
        )
    print(
        "\nMultipliers with large drops need the fine-tuning stage "
        "(see examples/quickstart.py); EvoApprox 249 cannot recover at all."
    )


if __name__ == "__main__":
    main()
