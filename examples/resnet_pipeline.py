"""Algorithm 1 end-to-end on a width-scaled ResNet20, comparing all five
fine-tuning methods — a miniature of paper Table V on one multiplier.

This is the heaviest example (~5-10 minutes on a laptop CPU). Pass a
multiplier name to change the approximation (default truncated5).

Run:  python examples/resnet_pipeline.py [multiplier]
"""

import sys

from repro.approx import get_multiplier, mean_relative_error, network_energy
from repro.data import make_synthetic_cifar
from repro.distill import recommended_t2
from repro.models import resnet20
from repro.pipeline import METHODS, approximation_stage, quantization_stage
from repro.sim import count_macs, evaluate_accuracy
from repro.train import TrainConfig, cross_entropy_loss, train_model


def main(multiplier_name: str = "truncated5") -> None:
    mult = get_multiplier(multiplier_name)
    mre = mean_relative_error(mult)
    temperature = recommended_t2(mre)

    data = make_synthetic_cifar(num_train=320, num_test=200, image_size=16, seed=42, noise=0.4)
    model = resnet20(width_mult=0.25, rng=0)
    print("training full-precision ResNet20 (width 0.25)...")
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=12, batch_size=64, lr=0.05, momentum=0.9, seed=0),
    )
    fp_acc = evaluate_accuracy(model, data.test_x, data.test_y)
    print(f"FP accuracy: {100 * fp_acc:.2f}%")

    ft_config = TrainConfig(epochs=2, batch_size=64, lr=0.02, momentum=0.9, seed=0)
    quant_model, quant_result = quantization_stage(
        model, data, train_config=ft_config, temperature=1.0
    )
    print(
        f"8A4W: {100 * quant_result.accuracy_before:.2f}% -> "
        f"{100 * quant_result.accuracy_after:.2f}% after KD fine-tuning"
    )

    print(
        f"\napproximating with {mult.name} "
        f"(MRE {100 * mre:.1f}%, T2 = {temperature:g}):"
    )
    for method in METHODS:
        _, result = approximation_stage(
            quant_model,
            data,
            mult,
            method=method,
            train_config=ft_config,
            temperature=temperature,
        )
        print(
            f"  {method:12s}: {100 * result.accuracy_before:6.2f}% -> "
            f"{100 * result.accuracy_after:6.2f}%"
        )

    macs = count_macs(quant_model, data.image_shape).total_macs
    print(
        f"\nenergy: {network_energy(macs, mult).savings_percent:.0f}% of multiplier "
        f"energy saved on {macs / 1e6:.1f}M MACs/inference"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "truncated5")
