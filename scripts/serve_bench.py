#!/usr/bin/env python
"""Serving benchmark: micro-batched throughput at a p95 latency SLO.

Builds a small quantized CNN with an approximate multiplier attached,
then measures three ways of scoring the same single-sample request
stream (``docs/SERVING.md``):

- **sequential** — a plain loop of single-sample forwards on a warm
  plan cache; the no-server baseline and the reference outputs;
- **unbatched serve** — the full server stack (queue + replicas) with
  ``max_batch=1``, isolating the serving overhead;
- **batched serve** — the same stack with micro-batching enabled; the
  load generator issues single-sample requests from concurrent clients
  and the server coalesces them under the latency deadline.

Every served response is verified bitwise against direct single-sample
evaluation (the batch-invariance guarantee); the report records latency
quantiles, whether the p95 SLO held, and batch occupancy. Results land
in ``BENCH_serve.json`` with full provenance for trend tracking.

CI gates: ``--require-serve-speedup MIN`` (batched serve vs sequential,
both within the same p95 SLO) and ``--require-batched-speedup MIN``
(batched vs unbatched serve).

Usage::

    PYTHONPATH=src python scripts/serve_bench.py [--smoke] \
        [--out BENCH_serve.json] [--require-serve-speedup 1.5] \
        [--require-batched-speedup 1.0]
"""

from __future__ import annotations

import argparse
import os
import platform
import time

import numpy as np


def _build_served_model(smoke: bool):
    """A trained, quantized, approximate CNN plus its dataset."""
    from repro.data import make_synthetic_cifar
    from repro.models import simplecnn
    from repro.pipeline import quantization_stage
    from repro.sim import attach_multiplier
    from repro.train import TrainConfig, cross_entropy_loss, train_model

    data = make_synthetic_cifar(
        num_train=128 if smoke else 400,
        num_test=96 if smoke else 256,
        image_size=16,
        seed=7,
    )
    model = simplecnn(base_width=4 if smoke else 8, rng=0)
    train_model(
        model,
        data,
        cross_entropy_loss(),
        TrainConfig(epochs=1 if smoke else 2, batch_size=64, lr=0.05, seed=0),
    )
    quant, _ = quantization_stage(
        model,
        data,
        train_config=TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=0),
    )
    quant.eval()
    attach_multiplier(quant, "truncated4")
    return quant, data


def _sequential_baseline(model, xs: np.ndarray) -> tuple[float, float, np.ndarray]:
    """(samples/s, p95 ms, logits) for a single-sample eval loop."""
    from repro.autograd.grad_mode import no_grad
    from repro.autograd.tensor import Tensor

    with no_grad():
        model(Tensor(xs[:1]))  # warm the plan cache outside the timing
        latencies = []
        outputs = []
        start = time.perf_counter()
        for i in range(len(xs)):
            t0 = time.perf_counter()
            outputs.append(model(Tensor(xs[i : i + 1])).data)
            latencies.append(time.perf_counter() - t0)
        duration = time.perf_counter() - start
    sps = len(xs) / duration
    p95_ms = float(np.percentile(np.asarray(latencies) * 1e3, 95))
    return sps, p95_ms, np.concatenate(outputs)


def _served_run(model, data, *, max_batch: int, requests: int, concurrency: int,
                slo_p95_ms: float, replicas: int | None):
    from repro.serve import ServeConfig, Server, run_load
    from repro.serve.loadgen import dataset_samples

    config = ServeConfig(
        deadline_ms=5.0,
        max_batch=max_batch,
        queue_depth=max(4 * max_batch, 4 * concurrency, 64),
        replicas=replicas,
    )
    server = Server(model, config)
    warm = dataset_samples(data, limit=min(max_batch, 8))
    server.start(warm=warm)
    try:
        report = run_load(
            server,
            data,
            requests=requests,
            concurrency=concurrency,
            batch_fraction=0.0,  # all single-sample: micro-batching does the work
            slo_p95_ms=slo_p95_ms,
            reference_models={0: model},
        )
    finally:
        server.stop()
    return report


def bench_serve(smoke: bool) -> dict:
    model, data = _build_served_model(smoke)
    requests = 96 if smoke else 512
    concurrency = 8 if smoke else 16

    seq_xs_count = min(requests, 96 if smoke else 256)
    from repro.serve.loadgen import dataset_samples

    xs = dataset_samples(data, limit=seq_xs_count)
    seq_sps, seq_p95_ms, _ = _sequential_baseline(model, xs)
    # The SLO both serving modes are judged against: generous relative to
    # the single-sample latency so it measures throughput, not luck.
    slo_p95_ms = max(250.0, 20.0 * seq_p95_ms)

    unbatched = _served_run(
        model, data, max_batch=1, requests=requests, concurrency=concurrency,
        slo_p95_ms=slo_p95_ms, replicas=None,
    )
    # max_batch matches the offered concurrency: a closed-loop client pool
    # can keep at most `concurrency` samples queued, so a larger max_batch
    # would never fill and every batch would wait out the whole deadline.
    batched = _served_run(
        model, data, max_batch=concurrency, requests=requests,
        concurrency=concurrency, slo_p95_ms=slo_p95_ms, replicas=None,
    )
    for name, report in (("unbatched", unbatched), ("batched", batched)):
        if report.failed_requests:
            raise AssertionError(f"{name} serve run had failed requests: {report}")
        if report.bitwise_mismatches:
            raise AssertionError(
                f"{name} serve responses not bitwise identical to direct eval "
                f"({report.bitwise_mismatches}/{report.bitwise_checked})"
            )
        if not report.slo_met:
            raise AssertionError(
                f"{name} serve run missed the p95 SLO: "
                f"p95 {report.latency_p95_ms:.1f}ms > {slo_p95_ms:.1f}ms"
            )
    return {
        "bench": "serve",
        "requests": requests,
        "concurrency": concurrency,
        "replicas": batched.server_stats["replicas"],
        "deadline_ms": batched.server_stats["deadline_ms"],
        "max_batch": batched.server_stats["max_batch"],
        "sequential_sps": round(seq_sps, 2),
        "sequential_p95_ms": round(seq_p95_ms, 3),
        "unbatched_sps": round(unbatched.throughput_sps, 2),
        "unbatched_p95_ms": round(unbatched.latency_p95_ms, 3),
        "batched_sps": round(batched.throughput_sps, 2),
        "batched_p50_ms": round(batched.latency_p50_ms, 3),
        "batched_p95_ms": round(batched.latency_p95_ms, 3),
        "batched_p99_ms": round(batched.latency_p99_ms, 3),
        "slo_p95_ms": round(slo_p95_ms, 3),
        "slo_met": batched.slo_met and unbatched.slo_met,
        "speedup": round(batched.throughput_sps / seq_sps, 3),
        "speedup_vs_unbatched": round(
            batched.throughput_sps / unbatched.throughput_sps, 3
        ),
        "mean_batch_size": round(batched.server_stats["mean_batch_size"], 2),
        "batch_occupancy": round(batched.server_stats["batch_occupancy"], 3),
        "bitwise_checked": batched.bitwise_checked + unbatched.bitwise_checked,
        "bitwise_identical": True,
        "rejected_retries": batched.rejected_retries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workload")
    parser.add_argument(
        "--require-serve-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless batched serving beats the sequential "
             "single-sample baseline by at least MIN x at the same p95 SLO",
    )
    parser.add_argument(
        "--require-batched-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless batched serving beats unbatched serving "
             "(max_batch=1) by at least MIN x",
    )
    args = parser.parse_args(argv)

    entry = bench_serve(args.smoke)
    print(
        f"serve: sequential {entry['sequential_sps']:.0f} sps | unbatched "
        f"{entry['unbatched_sps']:.0f} sps | batched {entry['batched_sps']:.0f} sps "
        f"({entry['speedup']}x vs sequential, {entry['speedup_vs_unbatched']}x vs "
        f"unbatched) | p95 {entry['batched_p95_ms']:.1f}ms within "
        f"{entry['slo_p95_ms']:.0f}ms SLO | mean batch {entry['mean_batch_size']}",
        flush=True,
    )

    from repro.obs.runmeta import provenance
    from repro.utils.serialization import save_results

    payload = {
        "meta": {
            "smoke": args.smoke,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "provenance": provenance(),
        },
        "results": [entry],
    }
    save_results(payload, args.out)
    print(f"wrote {args.out}")

    failed = False
    if (
        args.require_serve_speedup is not None
        and entry["speedup"] < args.require_serve_speedup
    ):
        print(
            f"FAIL: batched serve speedup {entry['speedup']}x < "
            f"required {args.require_serve_speedup}x"
        )
        failed = True
    if (
        args.require_batched_speedup is not None
        and entry["speedup_vs_unbatched"] < args.require_batched_speedup
    ):
        print(
            f"FAIL: batched-vs-unbatched speedup {entry['speedup_vs_unbatched']}x < "
            f"required {args.require_batched_speedup}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
