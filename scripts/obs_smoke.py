#!/usr/bin/env python
"""Observability smoke gate: overhead budget, trace validity, quantiles.

Exercises the tracing + metrics subsystems end to end and fails loudly
when any acceptance property regresses:

1. **Overhead** — a representative eval workload is timed with all
   observability off and again with tracing + metrics + event logging
   enabled. Interleaved min-of-N timing; the instrumented run must stay
   within the 5% budget (plus a small constant for sub-second runs).
2. **Trace validity** — a run that fans Monte-Carlo error fitting out to
   a two-process pool must export a Chrome ``trace_event`` JSON whose
   spans cover >= 2 worker pids, every ``parallel.task`` span parents
   onto the dispatching span, and every parent_id resolves within the
   trace.
3. **Quantile bound** — per-batch eval latencies are recorded both into
   a plain Python list and the streaming histogram; the histogram's
   p50/p95/p99 must match ``numpy.quantile(..., method="inverted_cdf")``
   within the documented ``QUANTILE_REL_ERROR``.

Artifacts (Chrome trace, metrics JSONL event log, summary JSON) land in
``--out-dir`` for CI upload.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--out-dir obs_artifacts]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.approx import get_multiplier
from repro.data import make_synthetic_cifar
from repro.data.dataloader import iterate_batches
from repro.ge import estimate_error_model
from repro.models import create_model
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.parallel import ParallelConfig, fork_available, map_workers
from repro.quant import calibrate_model, quantize_model
from repro.sim import attach_multiplier, evaluate_accuracy

OVERHEAD_BUDGET = 0.05  # the documented 5% ceiling
OVERHEAD_SLACK_S = 0.05  # absolute grace for sub-second workloads
ROUNDS = 3


def _workload():
    """A small quantized model + data, evaluated repeatedly."""
    data = make_synthetic_cifar(num_train=96, num_test=192, image_size=12, seed=3)
    model = create_model("simplecnn", rng=0)
    quantize_model(model)
    calibrate_model(
        model,
        iterate_batches(data.train_x, data.train_y, 32, shuffle=False),
        max_batches=2,
    )
    attach_multiplier(model, "truncated4")
    return model, data


def _run_eval(model, data, repeats: int = 2) -> float:
    for _ in range(repeats):
        acc = evaluate_accuracy(model, data.test_x, data.test_y, batch_size=32)
    return acc


def check_overhead(out_dir: Path) -> dict:
    model, data = _workload()
    _run_eval(model, data, repeats=1)  # warm caches/pools

    def plain_round() -> float:
        t0 = time.perf_counter()
        _run_eval(model, data)
        return time.perf_counter() - t0

    def instrumented_round() -> float:
        log = obs_events.EventLog()
        log.add_sink(obs_events.CollectingSink())
        previous = obs_events.set_event_log(log)
        tr.reset_tracing()
        tr.enable_tracing()
        met.reset_metrics()
        met.enable_metrics()
        try:
            t0 = time.perf_counter()
            _run_eval(model, data)
            elapsed = time.perf_counter() - t0
        finally:
            tr.disable_tracing()
            met.disable_metrics()
            obs_events.set_event_log(previous)
        return elapsed

    plain_times, instrumented_times = [], []
    for _ in range(ROUNDS):  # interleave so drift hits both arms equally
        plain_times.append(plain_round())
        instrumented_times.append(instrumented_round())
    plain = min(plain_times)
    instrumented = min(instrumented_times)
    budget = plain * (1 + OVERHEAD_BUDGET) + OVERHEAD_SLACK_S
    ok = instrumented <= budget
    print(
        f"overhead: plain {plain:.3f}s  instrumented {instrumented:.3f}s  "
        f"budget {budget:.3f}s  -> {'OK' if ok else 'FAIL'}"
    )
    return {
        "plain_s": round(plain, 4),
        "instrumented_s": round(instrumented, 4),
        "budget_s": round(budget, 4),
        "ok": ok,
    }


def fit_one(name: str):
    """Module-level so the process pool can pickle it."""
    return name, estimate_error_model(get_multiplier(name), num_simulations=8)


def check_trace(out_dir: Path) -> dict:
    if not fork_available():
        print("trace: fork unavailable, skipping multi-process check")
        return {"skipped": "fork unavailable"}
    log = obs_events.EventLog()
    logfile = out_dir / "obs_smoke_events.jsonl"
    log.add_sink(obs_events.JsonlSink(logfile, max_bytes=64 * 1024))
    previous = obs_events.set_event_log(log)
    tr.reset_tracing()
    tr.enable_tracing()
    met.reset_metrics()
    met.enable_metrics()
    try:
        log.run_start(command="obs_smoke", config={})
        with tr.span("fit_error_models"):
            map_workers(
                fit_one,
                ["truncated4", "mitchell"],
                ParallelConfig(workers=2, backend="process"),
            )
        met.emit_snapshot(log, scope="final")
        log.run_end(status="ok")
    finally:
        tr.disable_tracing()
        met.disable_metrics()
        obs_events.set_event_log(previous)
        log.close()

    spans = tr.get_trace_recorder().spans()
    tracefile = out_dir / "obs_smoke_trace.json"
    tr.write_chrome_trace(tracefile, spans)
    reread = tr.read_chrome_trace(tracefile)
    assert len(reread) == len(spans), "trace did not round-trip"

    by_id = {s.span_id: s for s in spans}
    pids = {s.pid for s in spans}
    import os

    worker_pids = pids - {os.getpid()}
    root = next(s for s in spans if s.name == "fit_error_models")
    tasks = [s for s in spans if s.name == "parallel.task"]
    dangling = [
        s for s in spans if s.parent_id is not None and s.parent_id not in by_id
    ]
    ok = (
        len(worker_pids) >= 2
        and len(tasks) >= 2
        and all(t.parent_id == root.span_id for t in tasks)
        and not dangling
    )
    print(
        f"trace: {len(spans)} spans, {len(worker_pids)} worker pid(s), "
        f"{len(tasks)} task span(s), {len(dangling)} dangling parent(s) "
        f"-> {'OK' if ok else 'FAIL'}"
    )
    return {
        "spans": len(spans),
        "worker_pids": sorted(worker_pids),
        "tasks": len(tasks),
        "dangling_parents": len(dangling),
        "tracefile": str(tracefile),
        "logfile": str(logfile),
        "ok": ok,
    }


def check_quantiles(out_dir: Path) -> dict:
    model, data = _workload()
    met.reset_metrics()
    met.enable_metrics()
    samples: list[float] = []
    try:
        for _ in range(4):
            for xb, yb in iterate_batches(
                data.test_x, data.test_y, 32, shuffle=False
            ):
                t0 = time.perf_counter()
                from repro.autograd.tensor import Tensor

                model(Tensor(xb))
                dt = time.perf_counter() - t0
                samples.append(dt)
                met.observe("eval.batch_seconds", dt)
    finally:
        met.disable_metrics()

    payload = met.get_metrics().snapshot()["histograms"]["eval.batch_seconds"]
    quantiles = met.snapshot_quantiles(payload)
    rows = {}
    ok = True
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        exact = float(np.quantile(samples, q, method="inverted_cdf"))
        got = quantiles[label]
        rel = abs(got - exact) / exact
        rows[label] = {"exact": exact, "streaming": got, "rel_error": rel}
        ok = ok and rel <= met.QUANTILE_REL_ERROR
        print(
            f"quantile {label}: exact {exact * 1e3:.3f}ms  streaming "
            f"{got * 1e3:.3f}ms  rel {100 * rel:.2f}% "
            f"(bound {100 * met.QUANTILE_REL_ERROR:.2f}%)"
        )
    print(f"quantiles -> {'OK' if ok else 'FAIL'}")
    return {"samples": len(samples), "rows": rows, "ok": ok}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="obs_artifacts", metavar="DIR")
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    prof.disable_profiling()
    results = {
        "overhead": check_overhead(out_dir),
        "trace": check_trace(out_dir),
        "quantiles": check_quantiles(out_dir),
    }
    summary_path = out_dir / "obs_smoke_summary.json"
    summary_path.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(f"wrote {summary_path}")
    failed = [k for k, v in results.items() if v.get("ok") is False]
    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    print("obs smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
