#!/usr/bin/env python
"""Wall-time benchmarks seeding the perf trajectory.

Times the parallelised hot paths (``docs/PERFORMANCE.md``) serially and at
``--workers`` workers, plus the weight-stationary kernel-plan cache
(cached vs uncached), and writes the measurements to a JSON file
(default ``BENCH_pr5.json``) for trend tracking across PRs:

- **sweep** — ``run_sweep`` over a multiplier × method grid on a small
  quantized CNN (process pool, one cell per task);
- **montecarlo** — Monte-Carlo error profiling of one multiplier
  (process pool over simulation chunks, bit-identical to serial);
- **gemm** — a large approximate GEMM (threaded row blocks);
- **eval** — repeated-batch evaluation of a quantized MLP with an
  approximate multiplier attached, with the per-layer plan cache on vs
  off (``repro.approx.plan``); outputs are asserted bitwise identical.
- **train** — repeated-batch retraining (forward + backward + SGD step)
  of an approximate MLP and CNN under three configurations: fully
  uncached, forward-plan-cache only (the pre-training-plans behaviour)
  and the full training path (plan revalidation, cached backward
  operands, im2col plans); weights and logits are asserted bitwise
  identical across all three.
- **analytic** — closed-form error models vs Monte-Carlo
  characterization over the multiplier registry (``repro.ge.analytic``),
  with per-candidate cross-validation of the two fitted models; the
  full run is committed as ``BENCH_analytic.json``.

``--smoke`` shrinks every workload for CI. Parallel speedups are
hardware-bound: on a single-core runner they are expected to be ~1x or
below (the report records ``cpu_count`` so trends stay interpretable).
The **eval**, **train** and **analytic** speedups are
hardware-independent — the fast paths strictly remove work — so CI gates
on them via ``--require-cached-speedup`` / ``--require-train-speedup`` /
``--require-analytic-speedup``.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke] [--workers 4] \
        [--out BENCH_pr5.json] [--require-cached-speedup 1.0] \
        [--require-train-speedup 1.0]
    PYTHONPATH=src python scripts/bench.py --analytic \
        --out BENCH_analytic.json --require-analytic-speedup 10
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

import numpy as np


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _result(name: str, serial_s: float, parallel_s: float, workers: int, **extra) -> dict:
    return {
        "bench": name,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        **extra,
    }


def bench_sweep(workers: int, smoke: bool) -> dict:
    from repro.data import make_synthetic_cifar
    from repro.models import simplecnn
    from repro.pipeline import quantization_stage, run_sweep
    from repro.train import TrainConfig, cross_entropy_loss, train_model

    data = make_synthetic_cifar(
        num_train=128 if smoke else 400,
        num_test=64 if smoke else 200,
        image_size=16,
        seed=7,
    )
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model, data, cross_entropy_loss(),
        TrainConfig(epochs=1 if smoke else 3, batch_size=64, lr=0.05, seed=0),
    )
    quant_model, _ = quantization_stage(
        model, data, train_config=TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=0)
    )
    quant_model.eval()

    multipliers = ["truncated3", "truncated4"] if smoke else [
        "truncated3", "truncated4", "evoapprox29", "evoapprox470"
    ]
    config = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)

    def sweep(n: int):
        return run_sweep(
            quant_model, data, multipliers,
            methods=("normal",) if smoke else ("normal", "approxkd"),
            train_config=config, workers=n,
        )

    serial_s = _timed(lambda: sweep(1))
    parallel_s = _timed(lambda: sweep(workers))
    return _result(
        "sweep", serial_s, parallel_s, workers,
        cells=len(multipliers) * (1 if smoke else 2),
    )


def bench_montecarlo(workers: int, smoke: bool) -> dict:
    from repro.approx import get_multiplier
    from repro.ge import profile_multiplier_error

    mult = get_multiplier("truncated4")
    sims = 50 if smoke else 400
    rows = 64 if smoke else 256

    def profile(n: int):
        return profile_multiplier_error(
            mult, num_simulations=sims, gemm_rows=rows, rng=0, workers=n
        )

    serial_s = _timed(lambda: profile(1))
    parallel_s = _timed(lambda: profile(workers))
    return _result("montecarlo", serial_s, parallel_s, workers, simulations=sims)


def bench_gemm(workers: int, smoke: bool) -> dict:
    from repro.approx import get_multiplier
    from repro.approx.gemm import approx_matmul

    mult = get_multiplier("truncated4")
    rng = np.random.default_rng(0)
    m = 2048 if smoke else 8192
    a = rng.integers(-127, 128, size=(m, 72), dtype=np.int64).astype(np.int32)
    b = rng.integers(-7, 8, size=(72, 64), dtype=np.int64).astype(np.int32)
    repeats = 3

    def gemm(n: int):
        for _ in range(repeats):
            approx_matmul(a, b, mult, workers=n)

    gemm(1)  # warm the LUT caches out of the timed region
    serial_s = _timed(lambda: gemm(1))
    parallel_s = _timed(lambda: gemm(workers))
    return _result("gemm", serial_s, parallel_s, workers, rows=m, repeats=repeats)


def bench_eval(workers: int, smoke: bool) -> dict:
    """Repeated-batch eval: per-layer kernel-plan cache on vs off.

    The cached path quantizes the weights, bucketizes them and gathers
    into a pooled workspace once per layer instead of once per batch; the
    logits must stay bitwise identical either way.
    """
    from repro.approx import get_multiplier, plan_cache_disabled
    from repro.autograd.grad_mode import no_grad
    from repro.autograd.tensor import Tensor
    from repro.quant import QuantLinear

    mult = get_multiplier("truncated4")
    dims = [256, 512, 512, 10]
    batch = 32 if smoke else 128
    batches = 4 if smoke else 8
    rng = np.random.default_rng(0)
    layers = []
    for din, dout in zip(dims[:-1], dims[1:]):
        layer = QuantLinear(din, dout, rng=rng)
        layer.act_step, layer.weight_step = 1 / 16, 1 / 8
        layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
        layer.set_multiplier(mult)
        layer.eval()
        layers.append(layer)
    xs = [rng.normal(size=(batch, dims[0])).astype(np.float32) for _ in range(batches)]

    def run() -> np.ndarray:
        with no_grad():
            outs = []
            for xb in xs:
                h = Tensor(xb)
                for layer in layers:
                    h = layer(h)
                outs.append(h.data)
        return np.concatenate(outs)

    run()  # warm the LUT caches out of the timed region
    with plan_cache_disabled():
        reference = run()
        uncached_s = _timed(run)
    for layer in layers:
        layer._plan_cache.clear()
    cached_out = run()  # timed runs below are all plan-cache hits
    cached_s = _timed(run)
    if not np.array_equal(cached_out, reference):
        raise AssertionError("cached eval is not bitwise identical to uncached")
    return {
        "bench": "eval",
        "uncached_s": round(uncached_s, 4),
        "cached_s": round(cached_s, 4),
        "speedup": round(uncached_s / cached_s, 3) if cached_s > 0 else None,
        "batches": batches,
        "batch_size": batch,
        "layer_dims": dims,
        "bitwise_identical": True,
    }


def bench_train(workers: int, smoke: bool) -> dict:
    """Repeated-batch retraining: training-path plans on vs off vs uncached.

    Three configurations train the same model from the same initial state
    on the same batches:

    - **uncached** — plan caching disabled entirely (the reference GEMM);
    - **prior** — forward plan cache only (``train_plans_disabled``): the
      pre-backward-plans behaviour, where every optimizer step bumps the
      weight version and rebuilds each layer's plan from scratch;
    - **cached** — the full training path: code-level plan revalidation
      across steps, cached backward weight layouts, memoized exact-GEMM
      operands (gradient estimation) and shape-keyed im2col plans.

    The headline ``speedup`` is cached vs prior (the regression this PR
    fixes: plan rebuilds made training *slower* than no cache at all);
    ``speedup_vs_uncached`` shows the absolute win. Final weights and
    logits must be bitwise identical across all three.
    """
    from contextlib import nullcontext

    from repro.approx import get_multiplier, plan_cache_disabled, train_plans_disabled
    from repro.autograd.im2col import clear_col_plans
    from repro.autograd.tensor import Tensor
    from repro.ge.error_model import PiecewiseLinearErrorModel
    from repro.quant import QuantConv2d, QuantLinear
    from repro.train import SGD

    mult = get_multiplier("truncated4")
    # Non-constant error model so gradient estimation runs its exact GEMM
    # alongside every approximate one (the paper's GE training mode).
    error_model = PiecewiseLinearErrorModel(0.01, 0.0, -4.0, 4.0)
    dims = [512, 1024, 10]
    batch = 32 if smoke else 128
    steps = 8 if smoke else 20
    reps = 2 if smoke else 5
    lr = 1e-3

    def build_mlp():
        rng = np.random.default_rng(0)
        layers = []
        for din, dout in zip(dims[:-1], dims[1:]):
            layer = QuantLinear(din, dout, rng=rng)
            layer.act_step, layer.weight_step = 1 / 16, 1 / 8
            layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
            layer.set_multiplier(mult, error_model)
            layers.append(layer)
        return layers

    def build_conv():
        rng = np.random.default_rng(1)
        layers = [
            QuantConv2d(8, 16, 3, padding=1, rng=rng),
            QuantConv2d(16, 16, 3, stride=2, padding=1, rng=rng),
        ]
        for layer in layers:
            layer.act_step, layer.weight_step = 1 / 16, 1 / 8
            layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
            layer.set_multiplier(mult)
        return layers

    rng = np.random.default_rng(42)
    mlp_xs = [rng.normal(size=(batch, dims[0])).astype(np.float32) for _ in range(steps)]
    mlp_gs = [
        (rng.normal(size=(batch, dims[-1])) * 1e-3).astype(np.float32)
        for _ in range(steps)
    ]
    conv_batch = max(4, batch // 4)
    conv_xs = [
        rng.normal(size=(conv_batch, 8, 12, 12)).astype(np.float32)
        for _ in range(steps)
    ]
    conv_gs = [
        (rng.normal(size=(conv_batch, 16, 6, 6)) * 1e-3).astype(np.float32)
        for _ in range(steps)
    ]

    def train(layers, xs, gs):
        opt = SGD([p for layer in layers for p in layer.parameters()], lr=lr)
        for xb, gb in zip(xs, gs):
            opt.zero_grad()
            h = Tensor(xb)
            for layer in layers:
                h = layer(h)
            h.backward(gb)
            opt.step()

    contexts = {
        "uncached": plan_cache_disabled,
        "prior": train_plans_disabled,
        "cached": nullcontext,
    }

    def measure(build, xs, gs):
        times, finals = {}, {}
        for mode, ctx in contexts.items():
            best = float("inf")
            layers = None
            for _ in range(reps):
                clear_col_plans()
                layers = build()
                with ctx():
                    best = min(best, _timed(lambda: train(layers, xs, gs)))
            with ctx():
                h = Tensor(xs[0])
                for layer in layers:
                    h = layer(h)
            finals[mode] = (
                [layer.weight.data.copy() for layer in layers],
                h.data.copy(),
            )
            times[mode] = best
        ws_ref, logits_ref = finals["uncached"]
        for mode in ("prior", "cached"):
            ws, logits = finals[mode]
            if len(ws) != len(ws_ref) or not all(
                np.array_equal(a, b) for a, b in zip(ws, ws_ref)
            ):
                raise AssertionError(
                    f"{mode} training run diverged from the uncached weights"
                )
            if not np.array_equal(logits, logits_ref):
                raise AssertionError(
                    f"{mode} training run diverged from the uncached logits"
                )
        return times, True

    # warm the multiplier LUT caches out of every timed region
    warm = build_mlp()
    with plan_cache_disabled():
        train(warm, mlp_xs[:1], mlp_gs[:1])
    mlp_t, mlp_ok = measure(build_mlp, mlp_xs, mlp_gs)
    warm = build_conv()
    with plan_cache_disabled():
        train(warm, conv_xs[:1], conv_gs[:1])
    conv_t, conv_ok = measure(build_conv, conv_xs, conv_gs)

    def ratio(num, den):
        return round(num / den, 3) if den > 0 else None

    return {
        "bench": "train",
        "uncached_s": round(mlp_t["uncached"], 4),
        "prior_s": round(mlp_t["prior"], 4),
        "cached_s": round(mlp_t["cached"], 4),
        "speedup": ratio(mlp_t["prior"], mlp_t["cached"]),
        "speedup_vs_uncached": ratio(mlp_t["uncached"], mlp_t["cached"]),
        "steps": steps,
        "batch_size": batch,
        "layer_dims": dims,
        "bitwise_identical": bool(mlp_ok and conv_ok),
        "conv": {
            "uncached_s": round(conv_t["uncached"], 4),
            "prior_s": round(conv_t["prior"], 4),
            "cached_s": round(conv_t["cached"], 4),
            "speedup": ratio(conv_t["prior"], conv_t["cached"]),
            "speedup_vs_uncached": ratio(conv_t["uncached"], conv_t["cached"]),
            "batch_size": conv_batch,
            "bitwise_identical": bool(conv_ok),
        },
    }


def bench_analytic(workers: int, smoke: bool) -> dict:
    """Closed-form analytic error models vs Monte-Carlo characterization.

    Times both engines over the multiplier registry on identical model
    settings — the paper's 50-simulation sampling protocol against the
    O(LUT) closed form (``docs/PERFORMANCE.md``) — and cross-validates the
    two fitted models per candidate. Likewise hardware-independent: the
    analytic engine strictly removes the sampled-GEMM work, so the ratio
    is gateable in CI via ``--require-analytic-speedup``. Also times
    moments-only zoo ranking of the same candidates (``repro zoo``).
    """
    from repro.approx import available_multipliers, get_multiplier
    from repro.ge import cross_validate, rank_multipliers
    from repro.ge.analytic import analytic_error_model
    from repro.ge.montecarlo import montecarlo_error_model

    names = available_multipliers()
    if smoke:
        names = names[:5]
    sims = 50  # the paper's characterization protocol
    # First call builds the shared operand priors and the first LUT out of
    # the timed region (every later candidate still pays its own LUT).
    analytic_error_model(get_multiplier(names[0]))

    candidates = []
    mc_total = analytic_total = 0.0
    for name in names:
        mult = get_multiplier(name)
        analytic_error_model(mult)  # warm this candidate's LUT for both engines
        analytic_s = min(_timed(lambda: analytic_error_model(mult)) for _ in range(3))
        mc_s = _timed(
            lambda: montecarlo_error_model(mult, num_simulations=sims, rng=0, workers=1)
        )
        validation = cross_validate(mult, num_simulations=sims, rng=0)
        mc_total += mc_s
        analytic_total += analytic_s
        candidates.append({
            "name": name,
            "analytic_s": round(analytic_s, 5),
            "montecarlo_s": round(mc_s, 5),
            "speedup": round(mc_s / analytic_s, 2) if analytic_s > 0 else None,
            "normalized_disagreement": round(validation.normalized_disagreement, 4),
            "agrees": validation.agrees(),
        })

    zoo_s = _timed(lambda: rank_multipliers(names))
    per_candidate = sorted(c["speedup"] for c in candidates)
    return {
        "bench": "analytic",
        "simulations": sims,
        "candidates": candidates,
        "montecarlo_total_s": round(mc_total, 4),
        "analytic_total_s": round(analytic_total, 4),
        "speedup": round(mc_total / analytic_total, 2) if analytic_total > 0 else None,
        "median_candidate_speedup": per_candidate[len(per_candidate) // 2],
        "min_candidate_speedup": per_candidate[0],
        "all_agree": all(c["agrees"] for c in candidates),
        "zoo_rank_s": round(zoo_s, 4),
    }


BENCHES = {
    "sweep": bench_sweep,
    "montecarlo": bench_montecarlo,
    "gemm": bench_gemm,
    "eval": bench_eval,
    "train": bench_train,
    "analytic": bench_analytic,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr5.json", help="output JSON path")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--only", choices=sorted(BENCHES), action="append",
        help="run a subset (repeatable; default: all)",
    )
    parser.add_argument(
        "--analytic", action="store_true",
        help="shorthand for --only analytic (the closed-form-vs-Monte-Carlo "
             "characterization bench behind BENCH_analytic.json)",
    )
    parser.add_argument(
        "--require-cached-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless the eval bench's cached-vs-uncached "
             "speedup is at least MIN (CI regression gate)",
    )
    parser.add_argument(
        "--require-train-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless the train bench's cached-vs-prior speedup "
             "is at least MIN (CI regression gate; the cached-vs-uncached "
             "ratio is reported but not gated)",
    )
    parser.add_argument(
        "--require-analytic-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless the analytic bench's median per-candidate "
             "analytic-vs-Monte-Carlo speedup is at least MIN and every "
             "candidate's models cross-validate (CI regression gate)",
    )
    args = parser.parse_args(argv)
    if args.analytic:
        args.only = (args.only or []) + ["analytic"]

    from repro.utils.serialization import save_results

    results = []
    for name in args.only or sorted(BENCHES):
        print(f"bench: {name} (workers={args.workers})", flush=True)
        entry = BENCHES[name](args.workers, args.smoke)
        if name == "eval":
            print(
                f"  uncached {entry['uncached_s']:.2f}s  cached {entry['cached_s']:.2f}s"
                f"  speedup {entry['speedup']}x",
                flush=True,
            )
        elif name == "train":
            print(
                f"  uncached {entry['uncached_s']:.2f}s  prior {entry['prior_s']:.2f}s"
                f"  cached {entry['cached_s']:.2f}s  speedup {entry['speedup']}x"
                f" (vs uncached {entry['speedup_vs_uncached']}x)",
                flush=True,
            )
        elif name == "analytic":
            print(
                f"  montecarlo {entry['montecarlo_total_s']:.3f}s  analytic "
                f"{entry['analytic_total_s']:.3f}s over {len(entry['candidates'])} "
                f"candidates  speedup {entry['speedup']}x (median per-candidate "
                f"{entry['median_candidate_speedup']}x), zoo rank "
                f"{entry['zoo_rank_s'] * 1e3:.1f}ms, "
                f"all_agree={entry['all_agree']}",
                flush=True,
            )
        else:
            print(
                f"  serial {entry['serial_s']:.2f}s  parallel {entry['parallel_s']:.2f}s"
                f"  speedup {entry['speedup']}x",
                flush=True,
            )
        results.append(entry)

    from repro.obs.runmeta import provenance

    payload = {
        "meta": {
            "workers": args.workers,
            "smoke": args.smoke,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "provenance": provenance(),
        },
        "results": results,
    }
    save_results(payload, args.out)
    print(f"wrote {args.out}")

    if args.require_cached_speedup is not None:
        evals = [r for r in results if r["bench"] == "eval"]
        if not evals:
            print("error: --require-cached-speedup needs the eval bench to run")
            return 1
        speedup = evals[0]["speedup"] or 0.0
        if speedup < args.require_cached_speedup:
            print(
                f"error: cached eval speedup {speedup}x is below the required "
                f"{args.require_cached_speedup}x"
            )
            return 1
        print(
            f"cached eval speedup {speedup}x meets the required "
            f"{args.require_cached_speedup}x"
        )

    if args.require_train_speedup is not None:
        trains = [r for r in results if r["bench"] == "train"]
        if not trains:
            print("error: --require-train-speedup needs the train bench to run")
            return 1
        entry = trains[0]
        # Only the cached-vs-prior ratio is gated: both sides pay the
        # same plan builds, so the cached path strictly removes work and
        # the ratio is hardware-independent. The cached-vs-uncached ratio
        # depends on amortizing initial builds over the step count, which
        # short smoke runs cannot guarantee — it is reported, not gated.
        value = entry["speedup"] or 0.0
        if value < args.require_train_speedup:
            print(
                f"error: train speedup {value}x is below the required "
                f"{args.require_train_speedup}x"
            )
            return 1
        print(
            f"train speedup {entry['speedup']}x meets the required "
            f"{args.require_train_speedup}x "
            f"(vs uncached: {entry['speedup_vs_uncached']}x, not gated)"
        )

    if args.require_analytic_speedup is not None:
        analytics = [r for r in results if r["bench"] == "analytic"]
        if not analytics:
            print("error: --require-analytic-speedup needs the analytic bench to run")
            return 1
        entry = analytics[0]
        # The median per-candidate ratio is gated (robust to one noisy
        # cell on a loaded runner); the total and minimum are reported.
        value = entry["median_candidate_speedup"] or 0.0
        if value < args.require_analytic_speedup:
            print(
                f"error: analytic median per-candidate speedup {value}x is below "
                f"the required {args.require_analytic_speedup}x"
            )
            return 1
        if not entry["all_agree"]:
            bad = [c["name"] for c in entry["candidates"] if not c["agrees"]]
            print(f"error: analytic model disagrees with Monte-Carlo for: {bad}")
            return 1
        print(
            f"analytic median per-candidate speedup {value}x meets the required "
            f"{args.require_analytic_speedup}x (total {entry['speedup']}x, "
            f"min {entry['min_candidate_speedup']}x), all models cross-validate"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
