#!/usr/bin/env python
"""Wall-time benchmarks seeding the perf trajectory.

Times the parallelised hot paths (``docs/PERFORMANCE.md``) serially and at
``--workers`` workers, plus the weight-stationary kernel-plan cache
(cached vs uncached), and writes the measurements to a JSON file
(default ``BENCH_pr5.json``) for trend tracking across PRs:

- **sweep** — ``run_sweep`` over a multiplier × method grid on a small
  quantized CNN (process pool, one cell per task);
- **montecarlo** — Monte-Carlo error profiling of one multiplier
  (process pool over simulation chunks, bit-identical to serial);
- **gemm** — a large approximate GEMM (threaded row blocks);
- **eval** — repeated-batch evaluation of a quantized MLP with an
  approximate multiplier attached, with the per-layer plan cache on vs
  off (``repro.approx.plan``); outputs are asserted bitwise identical.

``--smoke`` shrinks every workload for CI. Parallel speedups are
hardware-bound: on a single-core runner they are expected to be ~1x or
below (the report records ``cpu_count`` so trends stay interpretable).
The **eval** speedup is hardware-independent — the cached path strictly
removes work — so CI gates on it via ``--require-cached-speedup``.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke] [--workers 4] \
        [--out BENCH_pr5.json] [--require-cached-speedup 1.0]
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

import numpy as np


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _result(name: str, serial_s: float, parallel_s: float, workers: int, **extra) -> dict:
    return {
        "bench": name,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        **extra,
    }


def bench_sweep(workers: int, smoke: bool) -> dict:
    from repro.data import make_synthetic_cifar
    from repro.models import simplecnn
    from repro.pipeline import quantization_stage, run_sweep
    from repro.train import TrainConfig, cross_entropy_loss, train_model

    data = make_synthetic_cifar(
        num_train=128 if smoke else 400,
        num_test=64 if smoke else 200,
        image_size=16,
        seed=7,
    )
    model = simplecnn(base_width=8, rng=0)
    train_model(
        model, data, cross_entropy_loss(),
        TrainConfig(epochs=1 if smoke else 3, batch_size=64, lr=0.05, seed=0),
    )
    quant_model, _ = quantization_stage(
        model, data, train_config=TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=0)
    )
    quant_model.eval()

    multipliers = ["truncated3", "truncated4"] if smoke else [
        "truncated3", "truncated4", "evoapprox29", "evoapprox470"
    ]
    config = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)

    def sweep(n: int):
        return run_sweep(
            quant_model, data, multipliers,
            methods=("normal",) if smoke else ("normal", "approxkd"),
            train_config=config, workers=n,
        )

    serial_s = _timed(lambda: sweep(1))
    parallel_s = _timed(lambda: sweep(workers))
    return _result(
        "sweep", serial_s, parallel_s, workers,
        cells=len(multipliers) * (1 if smoke else 2),
    )


def bench_montecarlo(workers: int, smoke: bool) -> dict:
    from repro.approx import get_multiplier
    from repro.ge import profile_multiplier_error

    mult = get_multiplier("truncated4")
    sims = 50 if smoke else 400
    rows = 64 if smoke else 256

    def profile(n: int):
        return profile_multiplier_error(
            mult, num_simulations=sims, gemm_rows=rows, rng=0, workers=n
        )

    serial_s = _timed(lambda: profile(1))
    parallel_s = _timed(lambda: profile(workers))
    return _result("montecarlo", serial_s, parallel_s, workers, simulations=sims)


def bench_gemm(workers: int, smoke: bool) -> dict:
    from repro.approx import get_multiplier
    from repro.approx.gemm import approx_matmul

    mult = get_multiplier("truncated4")
    rng = np.random.default_rng(0)
    m = 2048 if smoke else 8192
    a = rng.integers(-127, 128, size=(m, 72), dtype=np.int64).astype(np.int32)
    b = rng.integers(-7, 8, size=(72, 64), dtype=np.int64).astype(np.int32)
    repeats = 3

    def gemm(n: int):
        for _ in range(repeats):
            approx_matmul(a, b, mult, workers=n)

    gemm(1)  # warm the LUT caches out of the timed region
    serial_s = _timed(lambda: gemm(1))
    parallel_s = _timed(lambda: gemm(workers))
    return _result("gemm", serial_s, parallel_s, workers, rows=m, repeats=repeats)


def bench_eval(workers: int, smoke: bool) -> dict:
    """Repeated-batch eval: per-layer kernel-plan cache on vs off.

    The cached path quantizes the weights, bucketizes them and gathers
    into a pooled workspace once per layer instead of once per batch; the
    logits must stay bitwise identical either way.
    """
    from repro.approx import get_multiplier, plan_cache_disabled
    from repro.autograd.grad_mode import no_grad
    from repro.autograd.tensor import Tensor
    from repro.quant import QuantLinear

    mult = get_multiplier("truncated4")
    dims = [256, 512, 512, 10]
    batch = 32 if smoke else 128
    batches = 4 if smoke else 8
    rng = np.random.default_rng(0)
    layers = []
    for din, dout in zip(dims[:-1], dims[1:]):
        layer = QuantLinear(din, dout, rng=rng)
        layer.act_step, layer.weight_step = 1 / 16, 1 / 8
        layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
        layer.set_multiplier(mult)
        layer.eval()
        layers.append(layer)
    xs = [rng.normal(size=(batch, dims[0])).astype(np.float32) for _ in range(batches)]

    def run() -> np.ndarray:
        with no_grad():
            outs = []
            for xb in xs:
                h = Tensor(xb)
                for layer in layers:
                    h = layer(h)
                outs.append(h.data)
        return np.concatenate(outs)

    run()  # warm the LUT caches out of the timed region
    with plan_cache_disabled():
        reference = run()
        uncached_s = _timed(run)
    for layer in layers:
        layer._plan_cache.clear()
    cached_out = run()  # timed runs below are all plan-cache hits
    cached_s = _timed(run)
    if not np.array_equal(cached_out, reference):
        raise AssertionError("cached eval is not bitwise identical to uncached")
    return {
        "bench": "eval",
        "uncached_s": round(uncached_s, 4),
        "cached_s": round(cached_s, 4),
        "speedup": round(uncached_s / cached_s, 3) if cached_s > 0 else None,
        "batches": batches,
        "batch_size": batch,
        "layer_dims": dims,
        "bitwise_identical": True,
    }


BENCHES = {
    "sweep": bench_sweep,
    "montecarlo": bench_montecarlo,
    "gemm": bench_gemm,
    "eval": bench_eval,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr5.json", help="output JSON path")
    parser.add_argument("--workers", type=int, default=4, help="parallel worker count")
    parser.add_argument("--smoke", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--only", choices=sorted(BENCHES), action="append",
        help="run a subset (repeatable; default: all)",
    )
    parser.add_argument(
        "--require-cached-speedup", type=float, default=None, metavar="MIN",
        help="exit nonzero unless the eval bench's cached-vs-uncached "
             "speedup is at least MIN (CI regression gate)",
    )
    args = parser.parse_args(argv)

    from repro.utils.serialization import save_results

    results = []
    for name in args.only or sorted(BENCHES):
        print(f"bench: {name} (workers={args.workers})", flush=True)
        entry = BENCHES[name](args.workers, args.smoke)
        if name == "eval":
            print(
                f"  uncached {entry['uncached_s']:.2f}s  cached {entry['cached_s']:.2f}s"
                f"  speedup {entry['speedup']}x",
                flush=True,
            )
        else:
            print(
                f"  serial {entry['serial_s']:.2f}s  parallel {entry['parallel_s']:.2f}s"
                f"  speedup {entry['speedup']}x",
                flush=True,
            )
        results.append(entry)

    from repro.obs.runmeta import provenance

    payload = {
        "meta": {
            "workers": args.workers,
            "smoke": args.smoke,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "provenance": provenance(),
        },
        "results": results,
    }
    save_results(payload, args.out)
    print(f"wrote {args.out}")

    if args.require_cached_speedup is not None:
        evals = [r for r in results if r["bench"] == "eval"]
        if not evals:
            print("error: --require-cached-speedup needs the eval bench to run")
            return 1
        speedup = evals[0]["speedup"] or 0.0
        if speedup < args.require_cached_speedup:
            print(
                f"error: cached eval speedup {speedup}x is below the required "
                f"{args.require_cached_speedup}x"
            )
            return 1
        print(
            f"cached eval speedup {speedup}x meets the required "
            f"{args.require_cached_speedup}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
