#!/usr/bin/env python
"""End-to-end crash/resume smoke test: train, SIGKILL, resume, verify.

Launches ``repro train`` with checkpointing as a subprocess, kills it with
SIGKILL as soon as the first checkpoint manifest appears (the harshest
interruption the OS offers — no cleanup handlers run), then reruns the
same command with ``--resume`` and asserts it finishes successfully and
wrote its model. Exercises the full stack documented in
``docs/RESILIENCE.md`` the way a real crash would, which in-process tests
cannot.

Usage: python scripts/resilience_smoke.py [workdir]
Exit code 0 means the crash/resume cycle worked end to end.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
POLL_S = 0.05
FIRST_CHECKPOINT_TIMEOUT_S = 300.0
RESUME_TIMEOUT_S = 600.0


def train_command(out: Path, ckpt_dir: Path, resume: bool) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro.cli", "train",
        "--num-train", "1200", "--num-test", "300", "--image-size", "16",
        "--epochs", "4", "--batch-size", "64",
        "--out", str(out), "--checkpoint-dir", str(ckpt_dir),
    ]
    if resume:
        cmd.append("--resume")
    return cmd


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="resilience-smoke-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    out = workdir / "model.npz"
    ckpt_dir = workdir / "ckpt"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))

    print(f"[smoke] workdir: {workdir}")
    print("[smoke] starting training run to be killed...")
    victim = subprocess.Popen(
        train_command(out, ckpt_dir, resume=False), env=env, cwd=REPO
    )
    deadline = time.monotonic() + FIRST_CHECKPOINT_TIMEOUT_S
    try:
        while not list(ckpt_dir.glob("epoch-*.ckpt.json")):
            code = victim.poll()
            if code is not None:
                if code != 0:
                    print(f"[smoke] FAIL: run died (code {code}) before checkpointing")
                    return 1
                print("[smoke] WARN: run finished before the kill could land")
                break
            if time.monotonic() > deadline:
                print("[smoke] FAIL: no checkpoint appeared in time")
                return 1
            time.sleep(POLL_S)
        if victim.poll() is None:
            print("[smoke] first checkpoint on disk -- sending SIGKILL")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            print(f"[smoke] victim killed (code {victim.returncode})")
    finally:
        if victim.poll() is None:
            victim.kill()

    if not list(ckpt_dir.glob("epoch-*.ckpt.json")):
        print("[smoke] FAIL: no checkpoint manifest on disk after the kill")
        return 1

    print("[smoke] rerunning with --resume...")
    resumed = subprocess.run(
        train_command(out, ckpt_dir, resume=True),
        env=env, cwd=REPO, timeout=RESUME_TIMEOUT_S,
    )
    if resumed.returncode != 0:
        print(f"[smoke] FAIL: resume exited with code {resumed.returncode}")
        return 1
    if not out.exists():
        print(f"[smoke] FAIL: resumed run wrote no model to {out}")
        return 1
    print("[smoke] PASS: kill/resume cycle completed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
