#!/usr/bin/env python
"""CI smoke for the serving stack (``docs/SERVING.md``).

Two phases:

1. Run ``scripts/serve_bench.py --smoke`` and assert the emitted
   ``BENCH_serve.json`` carries the SLO fields trend tracking relies on,
   with batched serving at least matching unbatched serving.
2. A chaos pass: serve mixed single/batch traffic while a replica fault
   is injected mid-load. The fault must be isolated (its batch fails,
   everything else completes bitwise-identical to direct evaluation)
   and the server must still serve and drain cleanly afterwards.

Exit status is nonzero on any violated assertion, so CI can gate on it.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REQUIRED_FIELDS = (
    "sequential_sps",
    "unbatched_sps",
    "batched_sps",
    "batched_p50_ms",
    "batched_p95_ms",
    "batched_p99_ms",
    "slo_p95_ms",
    "slo_met",
    "speedup",
    "speedup_vs_unbatched",
    "mean_batch_size",
    "batch_occupancy",
    "bitwise_checked",
    "bitwise_identical",
)


def check_bench(out: Path) -> None:
    import serve_bench

    code = serve_bench.main(
        ["--smoke", "--out", str(out), "--require-batched-speedup", "1.0"]
    )
    assert code == 0, f"serve_bench exited {code}"
    payload = json.loads(out.read_text())
    assert payload["meta"]["provenance"], "bench payload lacks provenance"
    (entry,) = payload["results"]
    missing = [field for field in REQUIRED_FIELDS if field not in entry]
    assert not missing, f"BENCH_serve.json missing SLO fields: {missing}"
    assert entry["slo_met"] is True, f"smoke run missed its SLO: {entry}"
    assert entry["bitwise_identical"] is True
    assert entry["bitwise_checked"] > 0
    print(
        f"bench smoke ok: batched {entry['batched_sps']:.0f} sps "
        f"({entry['speedup_vs_unbatched']}x vs unbatched), "
        f"p95 {entry['batched_p95_ms']:.1f}ms <= {entry['slo_p95_ms']:.0f}ms"
    )


def check_fault_isolation() -> None:
    from serve_bench import _build_served_model

    from repro.errors import ServeError
    from repro.serve import Client, ServeConfig, Server, run_load

    model, data = _build_served_model(smoke=True)
    config = ServeConfig(deadline_ms=5.0, max_batch=8, queue_depth=64, replicas=2)
    server = Server(model, config).start()
    try:
        client = Client(server)

        stop_injecting = threading.Event()

        def inject() -> None:
            # Keep arming one-shot faults on replica 0 while the load runs.
            while not stop_injecting.is_set():
                server.inject_replica_fault(0)
                time.sleep(0.02)

        injector = threading.Thread(target=inject, daemon=True)
        injector.start()
        report = run_load(
            server,
            data,
            requests=96,
            concurrency=6,
            batch_fraction=0.25,  # mixed single-sample and batch requests
            batch_size=4,
            reference_models={0: model},
        )
        stop_injecting.set()
        injector.join(timeout=5)

        assert report.failed_requests >= 1, "no injected fault ever fired"
        assert report.requests >= 1, "every request failed — fault not isolated"
        assert report.bitwise_mismatches == 0, (
            f"surviving responses diverged: {report.bitwise_mismatches}"
        )
        assert server.stats()["replica_faults"] >= 1
        # The server must still be healthy after the chaos. The injector
        # may have left one armed fault behind; at most one retry absorbs it.
        x = data.test_x[0].astype("float32")
        try:
            prediction = client.predict(x)
        except ServeError:
            prediction = client.predict(x)
        assert prediction.weights_version == 0
    finally:
        try:
            server.stop()
        except ServeError:
            pass
    print(
        f"fault smoke ok: {report.failed_requests} request(s) failed by injected "
        f"faults, {report.requests} served, 0 bitwise mismatches, server healthy"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--out", default="BENCH_serve_smoke.json")
    args = parser.parse_args(argv)
    sys.path.insert(0, str(Path(__file__).parent))
    check_bench(Path(args.out))
    check_fault_isolation()
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
