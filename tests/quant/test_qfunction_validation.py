"""Input validation of the quantized GEMM Functions."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import QuantizationError, ShapeError
from repro.quant.qfunction import (
    QuantConv2dFunction,
    QuantLinearFunction,
    _weight_step_per_channel,
)


class TestQuantLinearValidation:
    def test_rejects_non_2d_input(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32))
        w = Tensor(rng.normal(size=(5, 4)).astype(np.float32))
        with pytest.raises(ShapeError):
            QuantLinearFunction.apply(x, w, None, 1 / 32, 1 / 8, 8, 4)


class TestQuantConvValidation:
    def test_rejects_inconsistent_groups(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 6, 6)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 4, 3, 3)).astype(np.float32))
        with pytest.raises(ShapeError):
            QuantConv2dFunction.apply(x, w, None, 1, 1, 2, 1 / 32, 1 / 8, 8, 4)

    def test_rejects_channel_mismatch(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 6, 6)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        with pytest.raises(ShapeError):
            QuantConv2dFunction.apply(x, w, None, 1, 1, 1, 1 / 32, 1 / 8, 8, 4)


class TestPerChannelStepValidation:
    def test_scalar_broadcasts(self):
        steps = _weight_step_per_channel(0.125, 4)
        np.testing.assert_allclose(steps, np.full(4, 0.125))

    def test_vector_passthrough(self):
        vec = np.array([0.1, 0.2, 0.3], dtype=np.float32)
        np.testing.assert_allclose(_weight_step_per_channel(vec, 3), vec)

    def test_wrong_length_rejected(self):
        with pytest.raises(QuantizationError):
            _weight_step_per_channel(np.ones(5, dtype=np.float32), 3)
