"""BN folding on MobileNetV2-style blocks (depthwise + projection BNs)."""

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.models.mobilenetv2 import ConvBNReLU6, InvertedResidual, MobileNetV2
from repro.nn import BatchNorm2d
from repro.quant import fold_batchnorms


def _randomize_bns(model, rng):
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            m.gamma.data = rng.uniform(0.5, 1.5, m.num_features).astype(np.float32)
            m.beta.data = rng.normal(size=m.num_features).astype(np.float32)
            m.set_buffer(
                "running_mean", rng.normal(scale=0.2, size=m.num_features).astype(np.float32)
            )
            m.set_buffer(
                "running_var", rng.uniform(0.5, 2.0, m.num_features).astype(np.float32)
            )


class TestConvBNReLU6Folding:
    def test_output_preserved(self, rng):
        block = ConvBNReLU6(3, 8, 3, 1, rng=0)
        _randomize_bns(block, rng)
        block.eval()
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            ref = block(x).data
        assert fold_batchnorms(block) == 1
        with no_grad():
            np.testing.assert_allclose(block(x).data, ref, atol=1e-3)


class TestInvertedResidualFolding:
    def test_all_bns_folded_and_output_preserved(self, rng):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=6, rng=0)
        _randomize_bns(block, rng)
        block.eval()
        x = Tensor(rng.normal(size=(2, 8, 6, 6)).astype(np.float32))
        with no_grad():
            ref = block(x).data
        count = fold_batchnorms(block)
        assert count == 3  # expansion, depthwise, projection
        assert not [m for m in block.modules() if isinstance(m, BatchNorm2d)]
        with no_grad():
            np.testing.assert_allclose(block(x).data, ref, atol=1e-3)


class TestFullModelFolding:
    def test_small_mobilenet_folds_completely(self, rng):
        config = ((1, 8, 1, 1), (6, 16, 1, 2))
        model = MobileNetV2(width_mult=1.0, inverted_residual_config=config, rng=0)
        _randomize_bns(model, rng)
        model.eval()
        x = Tensor(rng.normal(size=(1, 3, 8, 8)).astype(np.float32))
        with no_grad():
            ref = model(x).data
        fold_batchnorms(model)
        assert not [m for m in model.modules() if isinstance(m, BatchNorm2d)]
        with no_grad():
            np.testing.assert_allclose(model(x).data, ref, atol=1e-2)
