"""Model conversion and calibration."""

import numpy as np
import pytest

from repro.data import iterate_batches
from repro.errors import QuantizationError
from repro.models import mobilenetv2, resnet20, simplecnn
from repro.nn import BatchNorm2d, Conv2d, Linear
from repro.quant import (
    QCONFIG_8A4W,
    QConfig,
    QuantConv2d,
    QuantLinear,
    calibrate_model,
    named_quant_layers,
    quant_layers,
    quantize_model,
    refresh_weight_steps,
)
from repro.sim import evaluate_accuracy


class TestQuantizeModel:
    def test_replaces_all_gemm_layers(self):
        model = quantize_model(resnet20(width_mult=0.25, rng=0))
        floats = [
            m for m in model.modules() if type(m) in (Conv2d, Linear)
        ]
        assert not floats
        assert len(list(quant_layers(model))) > 10

    def test_fold_bn_true_removes_bns(self):
        model = quantize_model(resnet20(width_mult=0.25, rng=0), fold_bn=True)
        assert not [m for m in model.modules() if isinstance(m, BatchNorm2d)]

    def test_fold_bn_false_keeps_bns(self):
        model = quantize_model(mobilenetv2(width_mult=0.25, rng=0), fold_bn=False)
        assert [m for m in model.modules() if isinstance(m, BatchNorm2d)]

    def test_custom_qconfig_propagates(self):
        qc = QConfig(weight_bits=8)
        model = quantize_model(simplecnn(base_width=4, rng=0), qconfig=qc)
        for layer in quant_layers(model):
            assert layer.qconfig.weight_bits == 8

    def test_named_quant_layers(self):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        names = [n for n, _ in named_quant_layers(model)]
        assert any("classifier" in n for n in names)


class TestCalibration:
    def test_calibration_enables_forward(self, tiny_dataset):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        calibrate_model(
            model,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 32, shuffle=False),
            max_batches=2,
        )
        acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert 0.0 <= acc <= 1.0

    def test_requires_batches(self):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        with pytest.raises(QuantizationError):
            calibrate_model(model, iter([]))

    def test_requires_quant_layers(self, tiny_dataset):
        from repro.models import simplecnn as fresh

        with pytest.raises(QuantizationError):
            calibrate_model(fresh(base_width=4, rng=0), iter([tiny_dataset.train_x[:8]]))

    def test_accepts_tuple_batches(self, tiny_dataset):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        calibrate_model(
            model,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 32, shuffle=False),
            max_batches=1,
        )
        assert all(layer.is_calibrated for layer in quant_layers(model))

    def test_quantized_accuracy_close_to_fp(self, trained_fp_model, tiny_dataset):
        """8A4W quantization should not destroy the trained model."""
        from repro.distill import clone_model

        fp_acc = evaluate_accuracy(trained_fp_model, tiny_dataset.test_x, tiny_dataset.test_y)
        qmodel = quantize_model(clone_model(trained_fp_model))
        calibrate_model(
            qmodel,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 64, shuffle=False),
            max_batches=3,
        )
        q_acc = evaluate_accuracy(qmodel, tiny_dataset.test_x, tiny_dataset.test_y)
        assert q_acc >= fp_acc - 0.25

    def test_refresh_weight_steps(self, tiny_dataset):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        calibrate_model(
            model,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 32, shuffle=False),
            max_batches=1,
        )
        for layer in quant_layers(model):
            layer.weight.data = layer.weight.data * 8.0
        refresh_weight_steps(model)
        assert all(layer.weight_step > 0 for layer in quant_layers(model))
