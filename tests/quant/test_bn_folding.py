"""BN folding equivalence and model-level folding."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import resnet20, simplecnn
from repro.nn import BatchNorm2d, Conv2d, Identity, Sequential
from repro.quant import fold_batchnorms, fold_conv_bn


def _randomize_bn(bn, rng):
    bn.gamma.data = rng.uniform(0.5, 1.5, bn.num_features).astype(np.float32)
    bn.beta.data = rng.normal(size=bn.num_features).astype(np.float32)
    bn.set_buffer("running_mean", rng.normal(size=bn.num_features).astype(np.float32))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, bn.num_features).astype(np.float32))


class TestFoldConvBn:
    def test_equivalence_eval_mode(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        bn = BatchNorm2d(8)
        _randomize_bn(bn, rng)
        bn.eval()
        folded = fold_conv_bn(conv, bn)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            ref = bn(conv(x)).data
            out = folded(x).data
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_equivalence_conv_without_bias(self, rng):
        conv = Conv2d(3, 4, 3, bias=False, rng=rng)
        bn = BatchNorm2d(4)
        _randomize_bn(bn, rng)
        bn.eval()
        folded = fold_conv_bn(conv, bn)
        x = Tensor(rng.normal(size=(1, 3, 6, 6)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(folded(x).data, bn(conv(x)).data, atol=1e-4)

    def test_folded_conv_has_bias(self, rng):
        conv = Conv2d(3, 4, 3, bias=False, rng=rng)
        bn = BatchNorm2d(4)
        folded = fold_conv_bn(conv, bn)
        assert folded.bias is not None

    def test_depthwise_folding(self, rng):
        conv = Conv2d(4, 4, 3, padding=1, groups=4, bias=False, rng=rng)
        bn = BatchNorm2d(4)
        _randomize_bn(bn, rng)
        bn.eval()
        folded = fold_conv_bn(conv, bn)
        x = Tensor(rng.normal(size=(1, 4, 6, 6)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(folded(x).data, bn(conv(x)).data, atol=1e-4)


class TestModelFolding:
    def test_sequential_pair_folded(self, rng):
        model = Sequential(Conv2d(3, 4, 3, rng=rng), BatchNorm2d(4))
        count = fold_batchnorms(model)
        assert count == 1
        assert isinstance(model[0], Conv2d)
        assert isinstance(model[1], Identity)

    def test_resnet_folds_all_bns(self, rng):
        model = resnet20(width_mult=0.25, rng=0)
        model.eval()
        x = Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))
        with no_grad():
            ref = model(x).data
        count = fold_batchnorms(model)
        assert count > 0
        remaining = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
        assert not remaining
        with no_grad():
            out = model(x).data
        np.testing.assert_allclose(out, ref, atol=1e-3)

    def test_simplecnn_output_preserved(self, rng):
        model = simplecnn(base_width=4, rng=0)
        model.eval()
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        with no_grad():
            ref = model(x).data
        fold_batchnorms(model)
        with no_grad():
            np.testing.assert_allclose(model(x).data, ref, atol=1e-3)

    def test_channel_mismatch_not_folded(self, rng):
        # A BN that does not match the conv's out_channels must be skipped.
        model = Sequential(Conv2d(3, 4, 3, rng=rng), BatchNorm2d(7))
        assert fold_batchnorms(model) == 0
