"""Fake quantization with clipped STE."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.quant import fake_quantize, fake_quantize_np


class TestForward:
    def test_matches_numpy_reference(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        out = fake_quantize(Tensor(x), 0.125, 8)
        np.testing.assert_allclose(out.data, fake_quantize_np(x, 0.125, 8))

    def test_output_on_grid(self, rng):
        x = rng.normal(size=100).astype(np.float32)
        out = fake_quantize(Tensor(x), 0.25, 4).data
        np.testing.assert_allclose(out / 0.25, np.round(out / 0.25), atol=1e-6)


class TestSTE:
    def test_passthrough_inside_range(self):
        x = Tensor(np.array([0.1, -0.3], dtype=np.float32), requires_grad=True)
        out = fake_quantize(x, 0.125, 8)
        out.backward(np.array([1.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [1.0, 2.0])

    def test_zero_gradient_outside_range(self):
        # 4-bit, step 0.1 -> representable range [-0.7, 0.7]
        x = Tensor(np.array([5.0, -5.0, 0.5], dtype=np.float32), requires_grad=True)
        out = fake_quantize(x, 0.1, 4)
        out.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_boundary_value_passes_gradient(self):
        x = Tensor(np.array([0.7], dtype=np.float32), requires_grad=True)
        out = fake_quantize(x, 0.1, 4)
        out.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [1.0], atol=1e-6)

    def test_training_through_fake_quant_converges(self):
        """A weight trained through fake-quant should reach its target."""
        w = Tensor(np.array([0.0], dtype=np.float32), requires_grad=True)
        target = 0.5
        for _ in range(200):
            w.zero_grad()
            out = fake_quantize(w, 1 / 64, 8)
            loss = (out - target) ** 2
            loss.backward()
            w.data = w.data - 0.1 * w.grad
        assert abs(w.data[0] - target) < 0.02
