"""Layer-level kernel-plan caching: bitwise identity and invalidation.

The cached weight-stationary path must be indistinguishable from the
uncached reference at the output level, and any weight or step mutation
must invalidate the cached state by construction (version counters), so
a stale plan cannot be reused.
"""

import copy

import numpy as np
import pytest

from repro.approx import get_multiplier, plan_cache_disabled
from repro.autograd import Tensor
from repro.nn.parameter import Parameter
from repro.obs import profiling as prof
from repro.quant import QuantConv2d, QuantLinear
from repro.sim import attach_multiplier, evaluate_accuracy
from repro.train import SGD


def _calibrated(layer, x):
    layer.begin_calibration()
    layer(Tensor(x))
    layer.finalize_calibration()
    return layer


def _layers(rng):
    mult = get_multiplier("truncated3")
    xl = rng.normal(size=(6, 12)).astype(np.float32)
    lin = _calibrated(QuantLinear(12, 5, rng=rng), xl)
    xc = rng.normal(size=(3, 4, 8, 8)).astype(np.float32)
    conv = _calibrated(QuantConv2d(4, 6, 3, padding=1, rng=rng), xc)
    grouped = _calibrated(QuantConv2d(4, 8, 3, padding=1, groups=2, rng=rng), xc)
    depthwise = _calibrated(QuantConv2d(4, 4, 3, padding=1, groups=4, rng=rng), xc)
    for layer in (lin, conv, grouped, depthwise):
        layer.set_multiplier(mult)
    return [(lin, xl), (conv, xc), (grouped, xc), (depthwise, xc)]


class TestBitwiseIdentity:
    def test_cached_forward_matches_uncached_reference(self, rng):
        for layer, x in _layers(rng):
            cached = layer(Tensor(x)).data
            again = layer(Tensor(x)).data
            layer._plan_cache.clear()
            with plan_cache_disabled():
                reference = layer(Tensor(x)).data
            np.testing.assert_array_equal(cached, again)
            np.testing.assert_array_equal(cached, reference)

    def test_model_eval_is_bitwise_identical(self, quantized_model, tiny_dataset):
        model = copy.deepcopy(quantized_model)
        attach_multiplier(model, get_multiplier("truncated4"))
        x, y = tiny_dataset.test_x, tiny_dataset.test_y
        cached = evaluate_accuracy(model, x, y, batch_size=64)
        cached2 = evaluate_accuracy(model, x, y, batch_size=64)
        with plan_cache_disabled():
            reference = evaluate_accuracy(model, x, y, batch_size=64)
        assert cached == cached2 == reference

    def test_exact_layers_never_build_plans(self, rng):
        lin = _calibrated(QuantLinear(8, 3, rng=rng), rng.normal(size=(4, 8)).astype(np.float32))
        x = rng.normal(size=(4, 8)).astype(np.float32)
        with prof.profiled() as report:
            lin(Tensor(x))
        assert report.counter("approx.plan_built") is None


class TestInvalidation:
    def test_parameter_version_counts_every_rebind(self):
        p = Parameter(np.zeros((2, 2), dtype=np.float32))
        assert p.version == 0
        p.data = np.ones((2, 2), dtype=np.float32)
        p.data = p.data * 2.0
        assert p.version == 2
        # in-place mutation of the same array does not rebind -- callers
        # (optimizer, load_state_dict, fault injection) all assign .data
        p.data[0, 0] = 5.0
        assert p.version == 2

    def test_optimizer_step_invalidates_the_plan(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        with prof.profiled() as report:
            out = layer(Tensor(x))
            out.backward(np.ones_like(out.data))
            SGD(layer.parameters(), lr=0.5).step()
            layer.refresh_weight_step()
            layer(Tensor(x))
        # two distinct keys -> two misses, zero (stale) hits
        assert report.counter("approx.plan_cache_miss").calls == 2
        assert report.counter("approx.plan_cache_hit") is None
        assert report.counter("approx.plan_built").calls == 2

    def test_training_step_changes_key_so_stale_reuse_is_impossible(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        _, key_before = layer._plan_state()
        out = layer(Tensor(x))
        out.backward(np.ones_like(out.data))
        SGD(layer.parameters(), lr=0.5).step()
        _, key_after = layer._plan_state()
        assert key_after != key_before
        # the post-step cached forward equals the uncached one on the new weights
        stepped = layer(Tensor(x)).data
        layer._plan_cache.clear()
        with plan_cache_disabled():
            np.testing.assert_array_equal(stepped, layer(Tensor(x)).data)

    def test_refresh_weight_step_changes_key(self, rng):
        x = rng.normal(size=(4, 8)).astype(np.float32)
        layer = _calibrated(QuantLinear(8, 3, rng=rng), x)
        _, before = layer._plan_state()
        layer.refresh_weight_step()
        _, after = layer._plan_state()
        assert after != before

    def test_set_multiplier_clears_the_cache(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        layer(Tensor(x))
        assert len(layer._plan_cache) == 1
        layer.set_multiplier(get_multiplier("truncated4"))
        assert len(layer._plan_cache) == 0

    def test_load_state_dict_invalidates_via_parameter_version(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        layer(Tensor(x))
        donor = QuantLinear(12, 5, rng=np.random.default_rng(42))
        state = donor.state_dict()
        version_before = layer.weight.version
        layer.load_state_dict(state)
        assert layer.weight.version > version_before
        loaded = layer(Tensor(x)).data
        layer._plan_cache.clear()
        with plan_cache_disabled():
            np.testing.assert_array_equal(loaded, layer(Tensor(x)).data)


class TestCacheHygiene:
    def test_repeated_eval_hits_after_first_miss(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        with prof.profiled() as report:
            for _ in range(4):
                layer(Tensor(x))
        assert report.counter("approx.plan_cache_miss").calls == 1
        assert report.counter("approx.plan_cache_hit").calls == 3
        assert report.counter("approx.plan_built").calls == 1

    def test_deepcopied_layer_starts_with_an_empty_cache(self, rng):
        mult = get_multiplier("truncated3")
        x = rng.normal(size=(6, 12)).astype(np.float32)
        layer = _calibrated(QuantLinear(12, 5, rng=rng), x)
        layer.set_multiplier(mult)
        layer(Tensor(x))
        clone = copy.deepcopy(layer)
        assert len(clone._plan_cache) == 0
        np.testing.assert_array_equal(clone(Tensor(x)).data, layer(Tensor(x)).data)

    def test_grouped_conv_caches_one_entry_with_per_group_plans(self, rng):
        mult = get_multiplier("truncated3")
        xc = rng.normal(size=(3, 4, 8, 8)).astype(np.float32)
        layer = _calibrated(QuantConv2d(4, 8, 3, padding=1, groups=2, rng=rng), xc)
        layer.set_multiplier(mult)
        with prof.profiled() as report:
            layer(Tensor(xc))
            layer(Tensor(xc))
        assert report.counter("approx.plan_built").calls == 2  # one per group
        assert report.counter("approx.plan_cache_miss").calls == 1
        assert report.counter("approx.plan_cache_hit").calls == 1
