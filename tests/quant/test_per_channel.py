"""Per-output-channel weight quantization (extension beyond the paper's
layer-wise scheme)."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, linear
from repro.data import iterate_batches
from repro.distill import clone_model
from repro.models import simplecnn
from repro.quant import (
    QConfig,
    QuantConv2d,
    QuantLinear,
    calibrate_model,
    fake_quantize_np,
    quant_layers,
    quantize_model,
)
from repro.sim import attach_multiplier, evaluate_accuracy

PER_CHANNEL = QConfig(per_channel_weights=True)


class TestCalibration:
    def test_weight_step_is_vector(self, rng):
        layer = QuantConv2d(3, 6, 3, padding=1, qconfig=PER_CHANNEL)
        layer.begin_calibration()
        layer(Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32)))
        layer.finalize_calibration()
        assert isinstance(layer.weight_step, np.ndarray)
        assert layer.weight_step.shape == (6,)
        assert (layer.weight_step > 0).all()

    def test_steps_are_pow2(self, rng):
        layer = QuantLinear(8, 4, qconfig=PER_CHANNEL)
        layer.begin_calibration()
        layer(Tensor(rng.normal(size=(4, 8)).astype(np.float32)))
        layer.finalize_calibration()
        exps = np.log2(layer.weight_step)
        np.testing.assert_allclose(exps, np.round(exps), atol=1e-6)

    def test_channels_with_different_scales_get_different_steps(self, rng):
        layer = QuantLinear(8, 2, qconfig=PER_CHANNEL)
        layer.weight.data[0] = rng.normal(size=8).astype(np.float32) * 0.01
        layer.weight.data[1] = rng.normal(size=8).astype(np.float32) * 10.0
        layer.begin_calibration()
        layer(Tensor(rng.normal(size=(4, 8)).astype(np.float32)))
        layer.finalize_calibration()
        assert layer.weight_step[1] > layer.weight_step[0] * 16


class TestForward:
    def test_matches_per_channel_fake_quant(self, rng):
        layer = QuantConv2d(3, 4, 3, padding=1, bias=False, qconfig=PER_CHANNEL)
        steps = np.array([1 / 8, 1 / 16, 1 / 4, 1 / 8], dtype=np.float32)
        layer.act_step, layer.weight_step = 1 / 32, steps
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        out = layer(Tensor(x)).data

        xq = fake_quantize_np(x, layer.act_step, 8)
        wq = np.stack(
            [fake_quantize_np(layer.weight.data[c], steps[c], 4) for c in range(4)]
        )
        ref = conv2d(Tensor(xq), Tensor(wq), None, 1, 1, 1).data
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_linear_matches_per_channel_fake_quant(self, rng):
        layer = QuantLinear(6, 3, bias=False, qconfig=PER_CHANNEL)
        steps = np.array([1 / 8, 1 / 4, 1 / 16], dtype=np.float32)
        layer.act_step, layer.weight_step = 1 / 32, steps
        x = rng.normal(size=(5, 6)).astype(np.float32)
        out = layer(Tensor(x)).data
        xq = fake_quantize_np(x, layer.act_step, 8)
        wq = np.stack(
            [fake_quantize_np(layer.weight.data[c], steps[c], 4) for c in range(3)]
        )
        ref = linear(Tensor(xq), Tensor(wq), None).data
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_gradients_flow(self, rng):
        layer = QuantConv2d(3, 4, 3, padding=1, qconfig=PER_CHANNEL)
        layer.act_step = 1 / 32
        layer.weight_step = np.full(4, 1 / 8, dtype=np.float32)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None and layer.weight.grad is not None

    def test_approximate_path(self, rng):
        layer = QuantConv2d(3, 4, 3, padding=1, bias=False, qconfig=PER_CHANNEL)
        layer.act_step = 1 / 32
        layer.weight_step = np.full(4, 1 / 8, dtype=np.float32)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        exact = layer(x).data
        attach = __import__("repro.approx", fromlist=["get_multiplier"]).get_multiplier
        layer.set_multiplier(attach("truncated5"))
        approx = layer(x).data
        assert approx.shape == exact.shape and not np.allclose(approx, exact)


class TestEndToEnd:
    def test_per_channel_at_least_as_accurate(self, trained_fp_model, tiny_dataset):
        """Per-channel steps should match or beat layer-wise min-max at
        equal bit-width (they strictly refine it)."""
        accs = {}
        for label, qconfig in [
            ("layerwise-minmax", QConfig(weight_observer="minmax")),
            ("per-channel", PER_CHANNEL),
        ]:
            model = quantize_model(clone_model(trained_fp_model), qconfig=qconfig)
            calibrate_model(
                model,
                iterate_batches(
                    tiny_dataset.train_x, tiny_dataset.train_y, 64, shuffle=False
                ),
                max_batches=3,
            )
            accs[label] = evaluate_accuracy(
                model, tiny_dataset.test_x, tiny_dataset.test_y
            )
        assert accs["per-channel"] >= accs["layerwise-minmax"] - 0.05

    def test_serialization_roundtrip(self, tmp_path, trained_fp_model, tiny_dataset):
        from repro.utils.serialization import load_model, save_model

        model = quantize_model(clone_model(trained_fp_model), qconfig=PER_CHANNEL)
        calibrate_model(
            model,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 64, shuffle=False),
            max_batches=2,
        )
        path = tmp_path / "pc.npz"
        save_model(model, path)
        dst = quantize_model(clone_model(trained_fp_model), qconfig=PER_CHANNEL)
        load_model(dst, path)
        for a, b in zip(quant_layers(model), quant_layers(dst)):
            np.testing.assert_allclose(a.weight_step, b.weight_step)
        src_acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        dst_acc = evaluate_accuracy(dst, tiny_dataset.test_x, tiny_dataset.test_y)
        assert src_acc == dst_acc
