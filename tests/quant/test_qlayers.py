"""Quantized layer behaviour: calibration lifecycle, integer execution,
approximate multipliers and gradient estimation hooks."""

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.autograd import Tensor, conv2d, linear
from repro.errors import QuantizationError
from repro.ge import PiecewiseLinearErrorModel
from repro.quant import QConfig, QuantConv2d, QuantLinear, fake_quantize_np


@pytest.fixture
def qconv(rng):
    layer = QuantConv2d(3, 6, 3, stride=1, padding=1, qconfig=QConfig(), rng=rng)
    layer.act_step, layer.weight_step = 1 / 32, 1 / 8
    # Keep weights strictly inside the 4-bit representable range so the
    # clipped-STE mask stays fully open (tests compare against an unmasked
    # float reference).
    layer.weight.data = np.clip(layer.weight.data, -0.85, 0.85)
    return layer


@pytest.fixture
def qlin(rng):
    layer = QuantLinear(8, 4, qconfig=QConfig(), rng=rng)
    layer.act_step, layer.weight_step = 1 / 32, 1 / 8
    layer.weight.data = np.clip(layer.weight.data, -0.85, 0.85)
    return layer


def _x(rng, shape):
    return Tensor(rng.normal(size=shape).astype(np.float32))


class TestLifecycle:
    def test_uncalibrated_forward_raises(self, rng):
        layer = QuantConv2d(3, 4, 3)
        with pytest.raises(QuantizationError):
            layer(_x(rng, (1, 3, 8, 8)))

    def test_finalize_without_begin_raises(self):
        with pytest.raises(QuantizationError):
            QuantLinear(4, 2).finalize_calibration()

    def test_calibration_sets_steps(self, rng):
        layer = QuantConv2d(3, 4, 3, padding=1)
        layer.begin_calibration()
        layer(_x(rng, (2, 3, 8, 8)))
        layer.finalize_calibration()
        assert layer.is_calibrated
        assert layer.act_step > 0 and layer.weight_step > 0

    def test_calibration_steps_are_pow2(self, rng):
        layer = QuantLinear(8, 4)
        layer.begin_calibration()
        layer(_x(rng, (4, 8)))
        layer.finalize_calibration()
        for step in (layer.act_step, layer.weight_step):
            assert np.log2(step) == pytest.approx(round(np.log2(step)))

    def test_from_float_copies_parameters(self, rng):
        from repro.nn import Conv2d

        conv = Conv2d(3, 4, 3, rng=rng)
        q = QuantConv2d.from_float(conv)
        np.testing.assert_allclose(q.weight.data, conv.weight.data)
        np.testing.assert_allclose(q.bias.data, conv.bias.data)
        assert q.stride == conv.stride and q.padding == conv.padding

    def test_refresh_weight_step(self, rng):
        layer = QuantLinear(8, 4)
        layer.begin_calibration()
        layer(_x(rng, (4, 8)))
        layer.finalize_calibration()
        layer.weight.data = layer.weight.data * 16.0
        old = layer.weight_step
        layer.refresh_weight_step()
        assert layer.weight_step > old


class TestExactIntegerPath:
    def test_conv_matches_fake_quant_reference(self, qconv, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = qconv(Tensor(x)).data
        xq = fake_quantize_np(x, qconv.act_step, 8)
        wq = fake_quantize_np(qconv.weight.data, qconv.weight_step, 4)
        ref = conv2d(Tensor(xq), Tensor(wq), qconv.bias, 1, 1, 1).data
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_linear_matches_fake_quant_reference(self, qlin, rng):
        x = rng.normal(size=(5, 8)).astype(np.float32)
        out = qlin(Tensor(x)).data
        xq = fake_quantize_np(x, qlin.act_step, 8)
        wq = fake_quantize_np(qlin.weight.data, qlin.weight_step, 4)
        ref = linear(Tensor(xq), Tensor(wq), qlin.bias).data
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_depthwise_matches_fake_quant_reference(self, rng):
        layer = QuantConv2d(4, 4, 3, padding=1, groups=4, bias=False)
        layer.act_step, layer.weight_step = 1 / 32, 1 / 8
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = layer(Tensor(x)).data
        xq = fake_quantize_np(x, layer.act_step, 8)
        wq = fake_quantize_np(layer.weight.data, layer.weight_step, 4)
        ref = conv2d(Tensor(xq), Tensor(wq), None, 1, 1, 4).data
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_grouped_matches_fake_quant_reference(self, rng):
        layer = QuantConv2d(4, 6, 3, padding=0, groups=2, bias=False)
        layer.act_step, layer.weight_step = 1 / 32, 1 / 8
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        out = layer(Tensor(x)).data
        xq = fake_quantize_np(x, layer.act_step, 8)
        wq = fake_quantize_np(layer.weight.data, layer.weight_step, 4)
        ref = conv2d(Tensor(xq), Tensor(wq), None, 1, 0, 2).data
        np.testing.assert_allclose(out, ref, atol=1e-4)


class TestApproximatePath:
    def test_exact_multiplier_equals_plain_integer(self, qconv, rng):
        x = _x(rng, (2, 3, 8, 8))
        ref = qconv(x).data
        qconv.set_multiplier(get_multiplier("exact"))
        np.testing.assert_allclose(qconv(x).data, ref, atol=1e-6)

    def test_truncated_output_differs_and_is_biased_low(self, qconv, rng):
        x = _x(rng, (2, 3, 8, 8))
        ref = qconv(x).data
        qconv.set_multiplier(get_multiplier("truncated5"))
        approx = qconv(x).data
        assert not np.allclose(approx, ref)

    def test_depthwise_approximate(self, rng):
        layer = QuantConv2d(4, 4, 3, padding=1, groups=4, bias=False)
        layer.act_step, layer.weight_step = 1 / 32, 1 / 8
        x = _x(rng, (2, 4, 6, 6))
        exact = layer(x).data
        layer.set_multiplier(get_multiplier("truncated4"))
        approx = layer(x).data
        assert approx.shape == exact.shape
        assert not np.allclose(approx, exact)

    def test_set_multiplier_none_restores_exact(self, qconv, rng):
        x = _x(rng, (1, 3, 8, 8))
        ref = qconv(x).data
        qconv.set_multiplier(get_multiplier("truncated5"))
        qconv.set_multiplier(None)
        np.testing.assert_allclose(qconv(x).data, ref)


class TestGradients:
    def test_ste_gradients_flow(self, qconv, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        out = qconv(x)
        out.sum().backward()
        assert x.grad is not None
        assert qconv.weight.grad is not None
        assert qconv.bias.grad is not None

    def test_ste_conv_gradient_matches_fake_quant_weight_grad(self, qconv, rng):
        """With STE, grad wrt W equals the float-conv grad on fq operands."""
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = qconv(Tensor(x))
        out.sum().backward()
        ste_grad = qconv.weight.grad.copy()

        xq = Tensor(fake_quantize_np(x, qconv.act_step, 8))
        w_float = Tensor(
            fake_quantize_np(qconv.weight.data, qconv.weight_step, 4), requires_grad=True
        )
        ref = conv2d(xq, w_float, None, 1, 1, 1)
        ref.sum().backward()
        np.testing.assert_allclose(ste_grad, w_float.grad, rtol=1e-4, atol=1e-4)

    def test_ge_scales_gradients(self, qlin, rng):
        """A non-constant error model must change gradient magnitudes."""
        x = Tensor(rng.normal(size=(8, 8)).astype(np.float32))
        mult = get_multiplier("truncated5")

        qlin.set_multiplier(mult, None)
        qlin.weight.zero_grad()
        qlin(x).sum().backward()
        ste_grad = qlin.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-1e9, upper=1e9)
        qlin.set_multiplier(mult, em)
        qlin.weight.zero_grad()
        qlin(x).sum().backward()
        ge_grad = qlin.weight.grad.copy()
        np.testing.assert_allclose(ge_grad, 0.5 * ste_grad, rtol=1e-4, atol=1e-6)

    def test_constant_error_model_equals_ste(self, qlin, rng):
        """Paper: ∂f/∂y = 0 makes GE identical to the plain STE."""
        x = Tensor(rng.normal(size=(8, 8)).astype(np.float32))
        mult = get_multiplier("evoapprox228")
        qlin.set_multiplier(mult, None)
        qlin.weight.zero_grad()
        qlin(x).sum().backward()
        ste_grad = qlin.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=0.0, c=5.0, lower=-10.0, upper=10.0)
        qlin.set_multiplier(mult, em)
        qlin.weight.zero_grad()
        qlin(x).sum().backward()
        np.testing.assert_allclose(qlin.weight.grad, ste_grad)

    def test_clipped_ste_blocks_out_of_range_activations(self, qlin):
        x = Tensor(np.full((1, 8), 100.0, dtype=np.float32), requires_grad=True)
        qlin(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros_like(x.data))


class TestOutputCollector:
    def test_collects_in_training_mode(self, qlin, rng):
        collector = []
        qlin.output_collector = collector
        qlin.train()
        qlin(_x(rng, (2, 8)))
        assert len(collector) == 1
        out, inv_step = collector[0]
        assert out.shape == (2, 4)
        assert inv_step == pytest.approx(1.0 / (qlin.act_step * qlin.weight_step))

    def test_not_collected_in_eval_mode(self, qlin, rng):
        collector = []
        qlin.output_collector = collector
        qlin.eval()
        qlin(_x(rng, (2, 8)))
        assert collector == []
