"""Observer (calibration) behaviour, including MinPropQE."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import MinMaxObserver, MinPropQEObserver, MSEObserver, create_observer
from repro.quant.quantizer import fake_quantize_np


class TestMinMax:
    def test_step_covers_observed_max(self, rng):
        obs = MinMaxObserver(8, pow2=False)
        obs.observe(rng.uniform(-3, 3, size=100))
        step = obs.compute_step()
        assert step * 127 >= 2.5

    def test_accumulates_over_batches(self):
        obs = MinMaxObserver(8, pow2=False)
        obs.observe(np.array([1.0]))
        obs.observe(np.array([-10.0]))
        assert obs.compute_step() * 127 >= 10.0 - 1e-6

    def test_requires_data(self):
        with pytest.raises(QuantizationError):
            MinMaxObserver(8).compute_step()

    def test_pow2_step(self):
        obs = MinMaxObserver(8, pow2=True)
        obs.observe(np.array([1.0]))
        step = obs.compute_step()
        assert np.log2(step) == pytest.approx(round(np.log2(step)))


class TestMSE:
    def test_beats_minmax_on_heavy_tails(self, rng):
        # At 4 bits, covering a lone outlier wastes nearly all resolution;
        # the MSE observer should clip it with a smaller step.
        data = np.concatenate([rng.normal(0, 1, 10_000), [100.0]])
        mm = MinMaxObserver(4, pow2=False)
        mm.observe(data)
        mse = MSEObserver(4, pow2=False)
        mse.observe(data)
        step_mm, step_mse = mm.compute_step(), mse.compute_step()
        assert step_mse < step_mm
        err_mm = np.mean((fake_quantize_np(data, step_mm, 4) - data) ** 2)
        err_mse = np.mean((fake_quantize_np(data, step_mse, 4) - data) ** 2)
        assert err_mse <= err_mm

    def test_requires_data(self):
        with pytest.raises(QuantizationError):
            MSEObserver(8).compute_step()


class TestMinPropQE:
    def test_minimises_propagated_error(self, rng):
        w = rng.normal(0, 1, size=(8, 16))
        x = rng.normal(0, 1, size=(64, 16))
        obs = MinPropQEObserver(4, pow2=True)
        obs.set_weight(w)
        obs.observe_inputs(x)
        step = obs.compute_step()
        # The chosen step must be at least as good as its pow2 neighbours.
        def prop_err(s):
            werr = fake_quantize_np(w, s, 4) - w
            return float(np.mean((x @ werr.T) ** 2))

        assert prop_err(step) <= prop_err(step * 2) + 1e-9
        assert prop_err(step) <= prop_err(step / 2) + 1e-9

    def test_falls_back_to_local_mse_without_inputs(self, rng):
        obs = MinPropQEObserver(4, pow2=False)
        obs.set_weight(rng.normal(size=(4, 4)))
        assert obs.compute_step() > 0

    def test_observe_registers_weight(self, rng):
        obs = MinPropQEObserver(4)
        obs.observe(rng.normal(size=(4, 4)))
        assert obs.compute_step() > 0

    def test_rejects_non_2d_inputs(self, rng):
        obs = MinPropQEObserver(4)
        with pytest.raises(QuantizationError):
            obs.observe_inputs(rng.normal(size=(2, 3, 4)))

    def test_input_subsampling(self, rng):
        obs = MinPropQEObserver(4, max_rows=16)
        obs.set_weight(rng.normal(size=(4, 8)))
        obs.observe_inputs(rng.normal(size=(1000, 8)))
        assert obs._inputs[0].shape[0] == 16

    def test_requires_weight(self):
        obs = MinPropQEObserver(4)
        with pytest.raises(QuantizationError):
            obs.compute_step()


class TestFactory:
    @pytest.mark.parametrize("name", ["minmax", "mse", "minpropqe"])
    def test_create_known(self, name):
        assert create_observer(name, 8) is not None

    def test_create_unknown_raises(self):
        with pytest.raises(QuantizationError):
            create_observer("magic", 8)
