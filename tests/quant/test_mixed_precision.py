"""Mixed-precision conversion via per-layer QConfig overrides."""

import pytest

from repro.data import iterate_batches
from repro.errors import QuantizationError
from repro.models import simplecnn
from repro.quant import (
    QConfig,
    calibrate_model,
    named_quant_layers,
    quantize_model,
)
from repro.sim import evaluate_accuracy


class TestLayerOverrides:
    def test_override_applies_to_named_layer(self):
        model = quantize_model(
            simplecnn(base_width=4, rng=0),
            qconfig=QConfig(weight_bits=4),
            layer_overrides={"classifier": QConfig(weight_bits=8)},
        )
        layers = dict(named_quant_layers(model))
        assert layers["classifier"].qconfig.weight_bits == 8
        others = [l for n, l in layers.items() if n != "classifier"]
        assert all(l.qconfig.weight_bits == 4 for l in others)

    def test_unknown_override_rejected(self):
        with pytest.raises(QuantizationError, match="unknown GEMM layers"):
            quantize_model(
                simplecnn(base_width=4, rng=0),
                layer_overrides={"does.not.exist": QConfig()},
            )

    def test_mixed_precision_model_runs(self, tiny_dataset):
        model = quantize_model(
            simplecnn(base_width=4, rng=0),
            qconfig=QConfig(weight_bits=3),
            layer_overrides={"classifier": QConfig(weight_bits=8)},
        )
        calibrate_model(
            model,
            iterate_batches(tiny_dataset.train_x, tiny_dataset.train_y, 32, shuffle=False),
            max_batches=2,
        )
        acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert 0.0 <= acc <= 1.0

    def test_wider_classifier_helps_at_low_backbone_bits(
        self, trained_fp_model, tiny_dataset
    ):
        """Keeping the final layer at 8 bits should not hurt vs all-3-bit."""
        from repro.distill import clone_model

        def accuracy(overrides):
            model = quantize_model(
                clone_model(trained_fp_model),
                qconfig=QConfig(weight_bits=3),
                layer_overrides=overrides,
            )
            calibrate_model(
                model,
                iterate_batches(
                    tiny_dataset.train_x, tiny_dataset.train_y, 64, shuffle=False
                ),
                max_batches=3,
            )
            return evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)

        plain = accuracy(None)
        mixed = accuracy({"classifier": QConfig(weight_bits=8)})
        assert mixed >= plain - 0.05
