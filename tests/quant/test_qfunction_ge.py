"""Gradient-estimation behaviour inside the quantized conv/linear Functions:
region gating, depthwise and grouped paths, Eq. 12 semantics."""

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.autograd import Tensor
from repro.ge import PiecewiseLinearErrorModel
from repro.quant import QuantConv2d, QuantLinear


def _make_conv(groups=1, in_ch=4, out_ch=4, bias=False):
    conv = QuantConv2d(in_ch, out_ch, 3, padding=1, groups=groups, bias=bias)
    conv.act_step, conv.weight_step = 1 / 32, 1 / 8
    return conv


class TestRegionGating:
    """K is non-zero only where the fitted line is between its saturations
    (Eq. 13): a model saturated everywhere must behave exactly like STE."""

    def test_fully_saturated_model_equals_ste(self, rng):
        mult = get_multiplier("truncated5")
        lin = QuantLinear(8, 4, bias=False)
        lin.act_step, lin.weight_step = 1 / 32, 1 / 8
        x = Tensor(rng.normal(size=(6, 8)).astype(np.float32))

        lin.set_multiplier(mult, None)
        lin(x).sum().backward()
        ste = lin.weight.grad.copy()

        # Saturation bounds so tight the linear region is never active.
        saturated = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-1e-6, upper=1e-6)
        lin.set_multiplier(mult, saturated)
        lin.weight.zero_grad()
        lin(x).sum().backward()
        np.testing.assert_allclose(lin.weight.grad, ste, rtol=1e-5)

    def test_partial_region_mixes_scales(self, rng):
        """With bounds cutting through the output range, some gradient rows
        are scaled and others are not."""
        mult = get_multiplier("truncated5")
        lin = QuantLinear(16, 8, bias=False)
        lin.act_step, lin.weight_step = 1 / 32, 1 / 8
        x = Tensor(rng.normal(size=(16, 16)).astype(np.float32))

        lin.set_multiplier(mult, None)
        lin(x).sum().backward()
        ste = lin.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-30.0, upper=30.0)
        lin.set_multiplier(mult, em)
        lin.weight.zero_grad()
        lin(x).sum().backward()
        mixed = lin.weight.grad
        assert not np.allclose(mixed, ste)
        assert not np.allclose(mixed, 0.5 * ste)


class TestConvGE:
    def test_dense_conv_ge_scales_whole_gradient(self, rng):
        mult = get_multiplier("truncated4")
        conv = _make_conv()
        x = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))

        conv.set_multiplier(mult, None)
        conv(x).sum().backward()
        ste = conv.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.25, c=0.0, lower=-1e9, upper=1e9)
        conv.set_multiplier(mult, em)
        conv.weight.zero_grad()
        conv(x).sum().backward()
        np.testing.assert_allclose(conv.weight.grad, 0.75 * ste, rtol=1e-4, atol=1e-6)

    def test_depthwise_conv_ge(self, rng):
        mult = get_multiplier("truncated4")
        conv = _make_conv(groups=4)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))

        conv.set_multiplier(mult, None)
        conv(x).sum().backward()
        ste = conv.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-1e9, upper=1e9)
        conv.set_multiplier(mult, em)
        conv.weight.zero_grad()
        conv(x).sum().backward()
        np.testing.assert_allclose(conv.weight.grad, 0.5 * ste, rtol=1e-4, atol=1e-6)

    def test_grouped_conv_ge(self, rng):
        mult = get_multiplier("truncated4")
        conv = QuantConv2d(4, 6, 3, padding=0, groups=2, bias=False)
        conv.act_step, conv.weight_step = 1 / 32, 1 / 8
        x = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))

        conv.set_multiplier(mult, None)
        conv(x).sum().backward()
        ste = conv.weight.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-1e9, upper=1e9)
        conv.set_multiplier(mult, em)
        conv.weight.zero_grad()
        conv(x).sum().backward()
        np.testing.assert_allclose(conv.weight.grad, 0.5 * ste, rtol=1e-4, atol=1e-6)

    def test_ge_also_scales_input_gradient(self, rng):
        """Eq. 12 modifies ∂C/∂ỹ, which propagates to both W and X grads."""
        mult = get_multiplier("truncated4")
        conv = _make_conv()
        x1 = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32), requires_grad=True)
        conv.set_multiplier(mult, None)
        conv(x1).sum().backward()
        ste = x1.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.5, c=0.0, lower=-1e9, upper=1e9)
        conv.set_multiplier(mult, em)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        conv(x2).sum().backward()
        np.testing.assert_allclose(x2.grad, 0.5 * ste, rtol=1e-4, atol=1e-6)

    def test_bias_gradient_not_scaled_by_ge(self, rng):
        """The bias is added after the approximate GEMM, outside Eq. 12."""
        mult = get_multiplier("truncated4")
        conv = _make_conv(bias=True)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))
        conv.set_multiplier(mult, None)
        conv(x).sum().backward()
        ste_bias = conv.bias.grad.copy()

        em = PiecewiseLinearErrorModel(k=-0.9, c=0.0, lower=-1e9, upper=1e9)
        conv.set_multiplier(mult, em)
        conv.bias.zero_grad()
        conv(x).sum().backward()
        np.testing.assert_allclose(conv.bias.grad, ste_bias, rtol=1e-5)
