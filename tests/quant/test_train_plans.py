"""Training-path plan caching: N-step bitwise equivalence and revalidation.

The training loop reuses weight-derived kernel state across optimizer
steps — plan revalidation/repair, cached backward weight layouts,
memoized exact-GEMM operands and shape-keyed im2col plans. All of it is
an *optimization only*: training with the full cached path, with only
the forward plan cache (the pre-training-plans behaviour) and with
caching disabled entirely must produce bitwise-identical weights and
logits at every step.
"""

from contextlib import nullcontext

import numpy as np

from repro.approx import (
    get_multiplier,
    plan_cache_disabled,
    train_plans_disabled,
    train_plans_enabled,
)
from repro.autograd import Tensor
from repro.autograd.im2col import clear_col_plans
from repro.ge import PiecewiseLinearErrorModel
from repro.obs import profiling as prof
from repro.quant import QuantConv2d, QuantLinear
from repro.train import SGD

MULT = get_multiplier("truncated3")
# Non-constant slope so gradient estimation runs its exact GEMM too.
GE_MODEL = PiecewiseLinearErrorModel(0.05, 0.0, -4.0, 4.0)


def _build_mlp(error_model=GE_MODEL):
    rng = np.random.default_rng(7)
    layers = []
    for din, dout in ((12, 24), (24, 5)):
        layer = QuantLinear(din, dout, rng=rng)
        layer.act_step, layer.weight_step = 1 / 16, 1 / 8
        layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
        layer.set_multiplier(MULT, error_model)
        layers.append(layer)
    return layers


def _build_conv():
    rng = np.random.default_rng(8)
    layers = [
        QuantConv2d(3, 6, 3, padding=1, rng=rng),
        QuantConv2d(6, 6, 3, stride=2, padding=1, rng=rng),
    ]
    for layer in layers:
        layer.act_step, layer.weight_step = 1 / 16, 1 / 8
        layer.weight.data = np.clip(layer.weight.data, -0.8, 0.8)
        layer.set_multiplier(MULT)
    return layers


def _train(build, xs, gs, lr=0.05, mutate=None):
    """Train fresh layers on fixed batches; returns per-step weight/logit history."""
    clear_col_plans()
    layers = build()
    opt = SGD([p for layer in layers for p in layer.parameters()], lr=lr)
    history = []
    for step, (xb, gb) in enumerate(zip(xs, gs)):
        if mutate is not None:
            mutate(step, layers)
        opt.zero_grad()
        h = Tensor(xb)
        for layer in layers:
            h = layer(h)
        h.backward(gb)
        opt.step()
        history.append(
            ([layer.weight.data.copy() for layer in layers], h.data.copy())
        )
    return history


def _assert_histories_identical(reference, other, label):
    assert len(reference) == len(other)
    for step, ((ws_ref, y_ref), (ws, y)) in enumerate(zip(reference, other)):
        for w_ref, w in zip(ws_ref, ws):
            np.testing.assert_array_equal(
                w_ref, w, err_msg=f"{label}: weights diverged at step {step}"
            )
        np.testing.assert_array_equal(
            y_ref, y, err_msg=f"{label}: logits diverged at step {step}"
        )


def _batches(rng, steps, x_shape, g_shape, g_scale=1e-2):
    xs = [rng.normal(size=x_shape).astype(np.float32) for _ in range(steps)]
    gs = [(rng.normal(size=g_shape) * g_scale).astype(np.float32) for _ in range(steps)]
    return xs, gs


CONTEXTS = {
    "uncached": plan_cache_disabled,
    "prior": train_plans_disabled,
    "cached": nullcontext,
}


class TestTrainingBitwiseEquivalence:
    def test_linear_training_identical_across_cache_modes(self, rng):
        xs, gs = _batches(rng, 5, (6, 12), (6, 5))
        runs = {}
        for mode, ctx in CONTEXTS.items():
            with ctx():
                runs[mode] = _train(_build_mlp, xs, gs)
        _assert_histories_identical(runs["uncached"], runs["prior"], "prior")
        _assert_histories_identical(runs["uncached"], runs["cached"], "cached")

    def test_conv_training_identical_across_cache_modes(self, rng):
        xs, gs = _batches(rng, 4, (3, 3, 8, 8), (3, 6, 4, 4))
        runs = {}
        for mode, ctx in CONTEXTS.items():
            with ctx():
                runs[mode] = _train(_build_conv, xs, gs)
        _assert_histories_identical(runs["uncached"], runs["prior"], "prior")
        _assert_histories_identical(runs["uncached"], runs["cached"], "cached")

    def test_refresh_weight_step_mid_run_stays_identical(self, rng):
        xs, gs = _batches(rng, 4, (6, 12), (6, 5))

        def mutate(step, layers):
            if step == 2:
                for layer in layers:
                    layer.refresh_weight_step()

        with plan_cache_disabled():
            reference = _train(_build_mlp, xs, gs, mutate=mutate)
        cached = _train(_build_mlp, xs, gs, mutate=mutate)
        _assert_histories_identical(reference, cached, "refresh_weight_step")

    def test_load_state_dict_mid_run_stays_identical(self, rng):
        xs, gs = _batches(rng, 4, (6, 12), (6, 5))
        donor_states = [layer.state_dict() for layer in _build_mlp()]

        def mutate(step, layers):
            if step == 2:
                for layer, state in zip(layers, donor_states):
                    layer.load_state_dict(state)

        def build():
            rng2 = np.random.default_rng(99)
            layers = []
            for din, dout in ((12, 24), (24, 5)):
                layer = QuantLinear(din, dout, rng=rng2)
                layer.act_step, layer.weight_step = 1 / 16, 1 / 8
                layer.set_multiplier(MULT, GE_MODEL)
                layers.append(layer)
            return layers

        with plan_cache_disabled():
            reference = _train(build, xs, gs, mutate=mutate)
        cached = _train(build, xs, gs, mutate=mutate)
        _assert_histories_identical(reference, cached, "load_state_dict")

    def test_large_lr_code_churn_stays_identical(self, rng):
        # lr large enough that many 4-bit codes flip every step, forcing
        # the repair / full-rebuild paths rather than pure revalidation.
        xs, gs = _batches(rng, 4, (6, 12), (6, 5), g_scale=1.0)
        with plan_cache_disabled():
            reference = _train(_build_mlp, xs, gs, lr=0.5)
        cached = _train(_build_mlp, xs, gs, lr=0.5)
        _assert_histories_identical(reference, cached, "large-lr")


class TestRevalidation:
    def test_unchanged_codes_revalidate_without_rebuilding(self, rng):
        # A vanishingly small learning rate bumps every Parameter version
        # without moving any weight across a 4-bit rounding boundary: the
        # codes are unchanged, so after the first build the plan must be
        # revalidated, never rebuilt.
        xs, gs = _batches(rng, 4, (6, 12), (6, 5))
        with prof.profiled() as report:
            _train(_build_mlp, xs, gs, lr=1e-12)
        assert report.counter("approx.plan_built").calls == 2  # one per layer
        assert report.counter("approx.plan_cache_revalidate").calls == 6
        assert report.counter("approx.plan_repaired") is None

    def test_sparse_code_drift_repairs_in_place(self, rng):
        # Flip exactly one weight to a magnitude the plan already knows:
        # the plan must be repaired in place, not rebuilt.
        layers = _build_mlp(error_model=None)
        layer = layers[0]
        x = rng.normal(size=(6, 12)).astype(np.float32)
        with prof.profiled() as report:
            layer(Tensor(x))
            new_w = layer.weight.data.copy()
            # sign-flip the largest weight: its 4-bit code is certainly
            # nonzero, and the flipped magnitude is one the plan knows
            idx = np.unravel_index(np.argmax(np.abs(new_w)), new_w.shape)
            new_w[idx] = -new_w[idx]
            layer.weight.data = new_w  # rebind bumps the version
            repaired_out = layer(Tensor(x)).data
        assert report.counter("approx.plan_built").calls == 1
        assert report.counter("approx.plan_repaired").calls == 1
        layer._plan_cache.clear()
        with plan_cache_disabled():
            np.testing.assert_array_equal(repaired_out, layer(Tensor(x)).data)

    def test_train_plans_disabled_restores_prior_miss_behaviour(self, rng):
        xs, gs = _batches(rng, 3, (6, 12), (6, 5))
        with train_plans_disabled():
            assert not train_plans_enabled()
            with prof.profiled() as report:
                _train(_build_mlp, xs, gs, lr=1e-12)
        # every step is a fresh miss: no revalidation at all
        assert report.counter("approx.plan_cache_revalidate") is None
        assert report.counter("approx.plan_built").calls == 6

    def test_col_plans_only_built_when_train_plans_enabled(self, rng):
        xs, gs = _batches(rng, 2, (2, 3, 8, 8), (2, 6, 4, 4))
        clear_col_plans()
        with train_plans_disabled(), prof.profiled() as report:
            _train(_build_conv, xs, gs)
        assert report.counter("autograd.col_plan_built") is None
        with prof.profiled() as report:
            _train(_build_conv, xs, gs)
        assert report.counter("autograd.col_plan_built").calls >= 1
