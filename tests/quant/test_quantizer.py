"""Symmetric quantizer semantics and invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.quant import (
    dequantize,
    fake_quantize_np,
    qrange,
    quantization_noise,
    quantize,
    round_step_to_pow2,
    step_from_max,
)


class TestQRange:
    def test_symmetric_ranges(self):
        assert qrange(8) == (-127, 127)
        assert qrange(4) == (-7, 7)
        assert qrange(2) == (-1, 1)

    def test_rejects_too_few_bits(self):
        with pytest.raises(QuantizationError):
            qrange(1)


class TestPow2Rounding:
    def test_exact_powers_unchanged(self):
        for e in range(-8, 8):
            assert round_step_to_pow2(2.0**e) == 2.0**e

    def test_geometric_rounding(self):
        assert round_step_to_pow2(0.3) == 0.25
        assert round_step_to_pow2(0.4) == 0.5
        assert round_step_to_pow2(3.0) == 4.0  # sqrt(2)*2 ≈ 2.83 < 3

    def test_rejects_nonpositive(self):
        with pytest.raises(QuantizationError):
            round_step_to_pow2(0.0)
        with pytest.raises(QuantizationError):
            round_step_to_pow2(-1.0)
        with pytest.raises(QuantizationError):
            round_step_to_pow2(float("nan"))

    @settings(max_examples=50, deadline=None)
    @given(st.floats(1e-6, 1e6))
    def test_result_is_power_of_two(self, step):
        result = round_step_to_pow2(step)
        exponent = np.log2(result)
        assert exponent == pytest.approx(round(exponent))

    @settings(max_examples=50, deadline=None)
    @given(st.floats(1e-6, 1e6))
    def test_within_sqrt2_factor(self, step):
        result = round_step_to_pow2(step)
        ratio = result / step
        assert 2**-0.5 - 1e-9 <= ratio <= 2**0.5 + 1e-9


class TestQuantizeDequantize:
    def test_codes_are_integers_in_range(self, rng):
        x = rng.normal(0, 10, size=1000)
        codes = quantize(x, 0.125, 8)
        assert codes.dtype == np.int32
        assert codes.min() >= -127 and codes.max() <= 127

    def test_zero_maps_to_zero(self):
        assert quantize(np.zeros(3), 0.5, 8).sum() == 0

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        # Unrounded step: everything is covered, so error <= step/2.
        x = rng.uniform(-1, 1, size=500)
        step = step_from_max(1.0, 8, pow2=False)
        err = np.abs(fake_quantize_np(x, step, 8) - x)
        assert err.max() <= step / 2 + 1e-7

    def test_pow2_roundtrip_error_bounded_by_clip_plus_half_step(self, rng):
        # Pow2 rounding may shrink the range; error is bounded by the
        # clipping distance plus half a step.
        x = rng.uniform(-1, 1, size=500)
        step = step_from_max(1.0, 8, pow2=True)
        clip_limit = max(0.0, 1.0 - 127 * step)
        err = np.abs(fake_quantize_np(x, step, 8) - x)
        assert err.max() <= clip_limit + step / 2 + 1e-7

    def test_clipping_beyond_range(self):
        out = fake_quantize_np(np.array([100.0]), 0.1, 4)
        assert out[0] == pytest.approx(0.7)  # 7 * 0.1

    def test_dequantize_scales(self):
        np.testing.assert_allclose(dequantize(np.array([4, -2]), 0.25), [1.0, -0.5])

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 40),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.integers(2, 8),
    )
    def test_fake_quantize_idempotent(self, x, bits):
        step = 0.5
        once = fake_quantize_np(x, step, bits)
        twice = fake_quantize_np(once, step, bits)
        np.testing.assert_allclose(once, twice)

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64, st.integers(1, 40), elements=st.floats(-50, 50, allow_nan=False)
        )
    )
    def test_fake_quantize_odd_symmetry(self, x):
        """Symmetric quantizer: Q(-x) == -Q(x) (no zero-point)."""
        step = 0.25
        np.testing.assert_allclose(
            fake_quantize_np(-x, step, 8), -fake_quantize_np(x, step, 8), atol=1e-9
        )


class TestStepFromMax:
    def test_covers_range(self):
        step = step_from_max(4.0, 4, pow2=False)
        assert step * 7 >= 4.0 - 1e-9

    def test_pow2_flag(self):
        step = step_from_max(1.0, 8, pow2=True)
        assert np.log2(step) == pytest.approx(round(np.log2(step)))

    def test_degenerate_zero_max(self):
        assert step_from_max(0.0, 8) > 0


class TestQuantizationNoise:
    def test_zero_for_representable_values(self):
        x = np.array([0.5, -0.25, 0.75])
        assert quantization_noise(x, 0.25, 8) == pytest.approx(0.0)

    def test_decreases_with_more_bits(self, rng):
        x = rng.uniform(-1, 1, 1000)
        noise4 = quantization_noise(x, step_from_max(1.0, 4), 4)
        noise8 = quantization_noise(x, step_from_max(1.0, 8), 8)
        assert noise8 < noise4
