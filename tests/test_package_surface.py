"""Guard against ghost namespace packages.

A directory containing only ``__pycache__`` (e.g. left behind by a
deleted module tree) still imports as a *namespace package* under
``repro.*`` — it has no source, no ``__init__``, and silently shadows
the error a user should get. These tests pin the package surface to real
source modules.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).parent
TESTS_ROOT = Path(__file__).parent


def _source_dirs(root: Path):
    for path in sorted(root.rglob("*")):
        if path.is_dir() and path.name != "__pycache__":
            yield path


def test_every_repro_directory_is_a_real_package():
    for directory in _source_dirs(SRC_ROOT):
        entries = [p for p in directory.iterdir() if p.name != "__pycache__"]
        assert entries, (
            f"{directory} contains only __pycache__ — a ghost namespace "
            "package; delete the directory"
        )
        assert (directory / "__init__.py").exists(), (
            f"{directory} lacks __init__.py — it would import as an "
            "implicit namespace package"
        )
        assert any(p.suffix == ".py" for p in entries), (
            f"{directory} has no Python source modules"
        )


def test_every_importable_subpackage_has_real_source():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        origin = getattr(module, "__file__", None)
        assert origin is not None and origin.endswith(".py"), (
            f"{info.name} resolves to {origin!r} — namespace package or "
            "bytecode-only ghost"
        )


def test_no_pycache_only_directories_under_tests():
    for directory in _source_dirs(TESTS_ROOT):
        entries = [p for p in directory.iterdir() if p.name != "__pycache__"]
        assert entries, (
            f"{directory} contains only __pycache__ — stale test tree; "
            "delete the directory"
        )
