"""Module registration, traversal, state dict and train/eval semantics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Linear, Module, Parameter, Sequential


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))
        self.register_buffer("stat", np.zeros(2))

    def forward(self, x):
        return x


class Parent(Module):
    def __init__(self):
        super().__init__()
        self.leaf = Leaf()
        self.extra = Parameter(np.zeros(1))

    def forward(self, x):
        return self.leaf(x)


class TestRegistration:
    def test_parameters_discovered(self):
        p = Parent()
        names = dict(p.named_parameters())
        assert set(names) == {"extra", "leaf.weight"}

    def test_buffers_discovered(self):
        names = dict(Parent().named_buffers())
        assert set(names) == {"leaf.stat"}

    def test_modules_traversal(self):
        mods = dict(Parent().named_modules())
        assert set(mods) == {"", "leaf"}

    def test_reassignment_replaces_child(self):
        p = Parent()
        p.leaf = Leaf()
        assert len(list(p.named_parameters())) == 2

    def test_num_parameters(self):
        assert Parent().num_parameters() == 4

    def test_set_buffer_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Leaf().set_buffer("nope", np.zeros(2))

    def test_set_buffer_updates_attribute(self):
        leaf = Leaf()
        leaf.set_buffer("stat", np.ones(2))
        np.testing.assert_allclose(leaf.stat, [1.0, 1.0])


class TestTrainEval:
    def test_propagates_to_children(self):
        p = Parent()
        p.eval()
        assert not p.training and not p.leaf.training
        p.train()
        assert p.training and p.leaf.training

    def test_zero_grad(self):
        p = Parent()
        p.extra.grad = np.ones(1)
        p.zero_grad()
        assert p.extra.grad is None


class TestStateDict:
    def test_roundtrip(self):
        src, dst = Parent(), Parent()
        src.extra.data[:] = 5.0
        src.leaf.set_buffer("stat", np.full(2, 7.0))
        dst.load_state_dict(src.state_dict())
        assert dst.extra.data[0] == 5.0
        np.testing.assert_allclose(dst.leaf.stat, [7.0, 7.0])

    def test_state_dict_is_a_copy(self):
        p = Parent()
        state = p.state_dict()
        state["extra"][:] = 99.0
        assert p.extra.data[0] == 0.0

    def test_strict_missing_key_raises(self):
        p = Parent()
        state = p.state_dict()
        del state["extra"]
        with pytest.raises(KeyError):
            p.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        p = Parent()
        state = p.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            p.load_state_dict(state)

    def test_non_strict_ignores_mismatch(self):
        p = Parent()
        state = p.state_dict()
        state["bogus"] = np.zeros(1)
        p.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        p = Parent()
        state = p.state_dict()
        state["extra"] = np.zeros(5)
        with pytest.raises(ShapeError):
            p.load_state_dict(state)

    def test_sequential_state_roundtrip(self, rng):
        a = Sequential(Linear(4, 3, rng=rng), Linear(3, 2, rng=rng))
        b = Sequential(Linear(4, 3), Linear(3, 2))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)
