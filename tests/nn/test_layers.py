"""Layer behaviour: Linear, Conv2d, BatchNorm2d, activations, pooling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sequential,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 4, rng=rng)
        assert layer(Tensor(np.zeros((3, 8), dtype=np.float32))).shape == (3, 4)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 8

    def test_deterministic_init_with_seed(self):
        a, b = Linear(4, 2, rng=42), Linear(4, 2, rng=42)
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_depthwise_param_count(self):
        conv = Conv2d(8, 8, 3, groups=8, bias=False)
        assert conv.num_parameters() == 8 * 9

    def test_rejects_bad_groups(self):
        with pytest.raises(ShapeError):
            Conv2d(3, 4, 3, groups=2)


class TestBatchNorm2d:
    def test_training_normalises_batch(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 4, 4)).astype(np.float32))
        bn(x)
        assert bn.running_mean.mean() > 1.0  # moved toward the batch mean of 5

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, 2.0], dtype=np.float32))
        bn.set_buffer("running_var", np.array([4.0, 9.0], dtype=np.float32))
        bn.eval()
        x = np.ones((1, 2, 2, 2), dtype=np.float32)
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], (1 - 1) / 2, atol=1e-3)
        np.testing.assert_allclose(out[0, 1], (1 - 2) / 3, atol=1e-3)

    def test_gradients_flow_to_affine_params(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 3, 4, 4)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Identity(), ReLU())
        out = seq(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_sequential_len_getitem_iter(self):
        seq = Sequential(ReLU(), ReLU6())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU6)
        assert len(list(iter(seq))) == 2

    def test_sequential_append(self):
        seq = Sequential(ReLU())
        seq.append(Identity())
        assert len(seq) == 2

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))
        assert out.shape == (2, 12)

    def test_dropout_eval_is_identity(self, rng):
        d = Dropout(0.5, rng=0)
        d.eval()
        x = rng.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_allclose(d(Tensor(x)).data, x)

    def test_dropout_train_zeroes_and_scales(self):
        d = Dropout(0.5, rng=0)
        x = np.ones((100, 100), dtype=np.float32)
        out = d(Tensor(x)).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 2.0, rtol=1e-5)

    def test_dropout_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestPoolingLayers:
    def test_shapes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert AvgPool2d(2)(x).shape == (2, 3, 4, 4)
        assert MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert GlobalAvgPool()(x).shape == (2, 3)
