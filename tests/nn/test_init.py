"""Initialisation schemes."""

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_conv_std(self):
        w = init.kaiming_normal((64, 32, 3, 3), rng=0)
        expected = np.sqrt(2.0 / (32 * 9))
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_linear_std(self):
        w = init.kaiming_normal((128, 256), rng=0)
        expected = np.sqrt(2.0 / 256)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_dtype_float32(self):
        assert init.kaiming_normal((4, 4), rng=0).dtype == np.float32

    def test_rejects_odd_shapes(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((3,))


class TestXavier:
    def test_bounds(self):
        w = init.xavier_uniform((100, 100), rng=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit + 1e-6

    def test_deterministic(self):
        a = init.xavier_uniform((5, 5), rng=3)
        b = init.xavier_uniform((5, 5), rng=3)
        np.testing.assert_allclose(a, b)


class TestConstant:
    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0.0
        assert init.ones((3,)).sum() == 3.0
