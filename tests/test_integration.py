"""End-to-end integration tests reproducing the paper's qualitative claims
at unit-test scale."""

import numpy as np
import pytest

from repro.approx import get_multiplier, network_energy
from repro.distill import clone_model
from repro.pipeline import approximation_stage
from repro.sim import attach_multiplier, count_macs, evaluate_accuracy
from repro.train import TrainConfig


class TestQuantizationClaims:
    def test_8a4w_with_ft_close_to_fp(self, trained_fp_model, quantized_model, tiny_dataset):
        """Table II: after fine-tuning, the 8A4W model is within a few points
        of the FP model."""
        fp = evaluate_accuracy(trained_fp_model, tiny_dataset.test_x, tiny_dataset.test_y)
        q = evaluate_accuracy(quantized_model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert q >= fp - 0.1


class TestApproximationClaims:
    def test_accuracy_degrades_with_mre(self, quantized_model, tiny_dataset):
        """Higher-MRE multipliers hurt more before fine-tuning."""
        accs = {}
        for name in ("exact", "truncated2", "truncated5", "evoapprox249"):
            model = clone_model(quantized_model)
            attach_multiplier(model, name)
            accs[name] = evaluate_accuracy(
                model, tiny_dataset.test_x, tiny_dataset.test_y
            )
        assert accs["exact"] >= accs["truncated5"]
        assert accs["truncated2"] >= accs["truncated5"] - 0.05
        assert accs["evoapprox249"] <= accs["exact"]
        assert accs["evoapprox249"] < 0.45

    def test_evoapprox249_cannot_recover(self, quantized_model, tiny_dataset):
        """Table V: at 48.8% MRE the network only does random guessing even
        after optimization."""
        cfg = TrainConfig(epochs=2, batch_size=64, lr=0.02, seed=0)
        _, result = approximation_stage(
            quantized_model, tiny_dataset, "evoapprox249", method="approxkd_ge",
            train_config=cfg, temperature=10.0,
        )
        assert result.accuracy_after < 0.5

    def test_finetuning_beats_no_finetuning(self, quantized_model, tiny_dataset):
        cfg = TrainConfig(epochs=3, batch_size=64, lr=0.02, seed=0)
        _, result = approximation_stage(
            quantized_model, tiny_dataset, "truncated5", method="approxkd_ge",
            train_config=cfg, temperature=5.0,
        )
        assert result.accuracy_after >= result.accuracy_before


class TestEnergyClaims:
    def test_truncated5_network_savings_38_percent(self, quantized_model, tiny_dataset):
        """The headline claim: 38% energy savings with truncated-5."""
        macs = count_macs(quantized_model, tiny_dataset.image_shape).total_macs
        report = network_energy(macs, get_multiplier("truncated5"))
        assert report.savings_percent == pytest.approx(38.0)

    def test_savings_ordering_follows_multiplier(self):
        savings = [
            network_energy(1000, get_multiplier(f"truncated{t}")).savings
            for t in range(1, 6)
        ]
        assert savings == sorted(savings)


class TestDeterminism:
    def test_full_stage_reproducible(self, quantized_model, tiny_dataset):
        cfg = TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=11)
        accs = []
        for _ in range(2):
            _, result = approximation_stage(
                quantized_model, tiny_dataset, "truncated4", method="approxkd",
                train_config=cfg, temperature=5.0,
            )
            accs.append(result.accuracy_after)
        assert accs[0] == accs[1]
