"""Cross-cutting edge cases not covered by module-specific suites."""

import numpy as np
import pytest

from repro.approx import EnergyReport, get_multiplier, network_energy
from repro.autograd import Tensor
from repro.distill import clone_model
from repro.errors import ConfigError
from repro.models import simplecnn
from repro.nn import Linear, Module, Parameter, Sequential
from repro.pipeline import run_algorithm1
from repro.sim import evaluate_accuracy
from repro.train import TrainConfig


class TestModuleExtras:
    def test_num_parameters_trainable_only(self):
        lin = Linear(4, 2)
        lin.weight.requires_grad = False
        assert lin.num_parameters() == 10
        assert lin.num_parameters(trainable_only=True) == 2

    def test_modules_iteration_includes_self(self):
        seq = Sequential(Linear(2, 2))
        mods = list(seq.modules())
        assert seq in mods and len(mods) == 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestEnergyReport:
    def test_fields_and_properties(self):
        report = network_energy(1000, get_multiplier("truncated3"), adder_fraction=0.2)
        assert isinstance(report, EnergyReport)
        assert report.macs == 1000
        assert report.multiplier_name == "truncated3"
        # 0.2 adder + 0.8 * (1 - 0.16) = 0.872
        assert report.total_relative_energy == pytest.approx(0.872)
        assert report.savings == pytest.approx(0.128)
        assert report.savings_percent == pytest.approx(12.8)


class TestRunAlgorithm1Variants:
    @pytest.mark.parametrize("method", ["normal", "approxkd_ge"])
    def test_methods_produce_models(self, trained_fp_model, tiny_dataset, method):
        fast = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)
        result = run_algorithm1(
            trained_fp_model,
            tiny_dataset,
            "truncated3",
            quant_config=fast,
            approx_config=fast,
            method=method,
        )
        acc = evaluate_accuracy(
            result.approximate_model, tiny_dataset.test_x, tiny_dataset.test_y
        )
        assert 0.0 <= acc <= 1.0
        assert result.quantization.history.train_loss
        assert result.approximation.history.train_loss


class TestParameterSemantics:
    def test_parameter_from_tensor(self):
        t = Tensor(np.ones(3))
        p = Parameter(t)
        assert p.requires_grad
        np.testing.assert_allclose(p.data, t.data)

    def test_parameter_requires_grad_default(self):
        assert Parameter(np.zeros(2)).requires_grad

    def test_clone_does_not_share_velocity_state(self, tiny_dataset):
        """Cloned models train independently (fresh optimizer state)."""
        from repro.train import SGD

        model = simplecnn(base_width=4, rng=0)
        clone = clone_model(model)
        opt = SGD(model.parameters(), lr=0.1)
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert not np.allclose(a.data, b.data)


class TestTrainConfigEdges:
    def test_frozen(self):
        cfg = TrainConfig()
        with pytest.raises(Exception):
            cfg.epochs = 5

    def test_lr_validation_happens_in_sgd(self):
        from repro.train import SGD

        with pytest.raises(ConfigError):
            SGD([Parameter(np.zeros(1))], lr=0.0)
