"""Algorithm 1 stage drivers."""

import numpy as np
import pytest

from repro.distill import clone_model
from repro.errors import ConfigError
from repro.pipeline import (
    METHODS,
    approximation_stage,
    quantization_stage,
    run_algorithm1,
)
from repro.quant import quant_layers
from repro.sim import evaluate_accuracy
from repro.train import TrainConfig


FAST = TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=0)


class TestQuantizationStage:
    def test_returns_quantized_trained_model(self, trained_fp_model, tiny_dataset):
        model, result = quantization_stage(
            trained_fp_model, tiny_dataset, train_config=FAST
        )
        assert list(quant_layers(model))
        assert 0.0 <= result.accuracy_before <= 1.0
        assert result.accuracy_after >= result.accuracy_before - 0.1

    def test_does_not_modify_teacher(self, trained_fp_model, tiny_dataset):
        before = {n: p.data.copy() for n, p in trained_fp_model.named_parameters()}
        quantization_stage(trained_fp_model, tiny_dataset, train_config=FAST)
        for n, p in trained_fp_model.named_parameters():
            np.testing.assert_array_equal(p.data, before[n])

    def test_without_kd(self, trained_fp_model, tiny_dataset):
        model, result = quantization_stage(
            trained_fp_model, tiny_dataset, train_config=FAST, use_kd=False
        )
        assert result.history.train_loss


class TestApproximationStage:
    @pytest.mark.parametrize("method", METHODS)
    def test_each_method_runs(self, quantized_model, tiny_dataset, method):
        model, result = approximation_stage(
            quantized_model,
            tiny_dataset,
            "truncated4",
            method=method,
            train_config=FAST,
        )
        assert 0.0 <= result.accuracy_after <= 1.0
        layer = next(iter(quant_layers(model)))
        assert layer.multiplier.name == "truncated4"

    def test_unknown_method_rejected(self, quantized_model, tiny_dataset):
        with pytest.raises(ConfigError):
            approximation_stage(
                quantized_model, tiny_dataset, "truncated4", method="magic"
            )

    def test_ge_attaches_error_model_only_for_ge_methods(
        self, quantized_model, tiny_dataset
    ):
        model_ge, _ = approximation_stage(
            quantized_model, tiny_dataset, "truncated5", method="ge", train_config=FAST
        )
        assert next(iter(quant_layers(model_ge))).error_model is not None

        model_normal, _ = approximation_stage(
            quantized_model, tiny_dataset, "truncated5", method="normal", train_config=FAST
        )
        assert next(iter(quant_layers(model_normal))).error_model is None

    def test_source_model_untouched(self, quantized_model, tiny_dataset):
        approximation_stage(
            quantized_model, tiny_dataset, "truncated5", method="normal", train_config=FAST
        )
        assert all(layer.multiplier is None for layer in quant_layers(quantized_model))

    def test_finetuning_recovers_accuracy(self, quantized_model, tiny_dataset):
        """The paper's core claim at unit scale: fine-tuning recovers most
        of the accuracy lost to an aggressive multiplier."""
        cfg = TrainConfig(epochs=3, batch_size=64, lr=0.02, seed=0)
        _, result = approximation_stage(
            quantized_model, tiny_dataset, "truncated5", method="approxkd_ge",
            train_config=cfg, temperature=5.0,
        )
        assert result.accuracy_after > result.accuracy_before

    def test_alpha_method_cleans_collectors(self, quantized_model, tiny_dataset):
        model, _ = approximation_stage(
            quantized_model, tiny_dataset, "truncated4", method="alpha", train_config=FAST
        )
        assert all(layer.output_collector is None for layer in quant_layers(model))


class TestRunAlgorithm1:
    def test_end_to_end(self, trained_fp_model, tiny_dataset):
        result = run_algorithm1(
            trained_fp_model,
            tiny_dataset,
            "truncated4",
            quant_config=FAST,
            approx_config=FAST,
        )
        assert result.quantization.accuracy_after > 0.15
        q_layers = list(quant_layers(result.approximate_model))
        assert q_layers and q_layers[0].multiplier.name == "truncated4"
