"""Finer-grained checks of the Algorithm 1 stage drivers."""

import numpy as np
import pytest

from repro.pipeline import approximation_stage, quantization_stage
from repro.quant import quant_layers
from repro.train import TrainConfig

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)


class TestQuantizationStageDetails:
    def test_calibration_batches_limit(self, trained_fp_model, tiny_dataset):
        model, _ = quantization_stage(
            trained_fp_model,
            tiny_dataset,
            train_config=FAST,
            calibration_batches=1,
        )
        assert all(layer.is_calibrated for layer in quant_layers(model))

    def test_history_present(self, trained_fp_model, tiny_dataset):
        _, result = quantization_stage(
            trained_fp_model, tiny_dataset, train_config=FAST
        )
        assert len(result.history.train_loss) == FAST.epochs
        assert result.history.wall_time > 0

    def test_temperature_affects_training(self, trained_fp_model, tiny_dataset):
        """Different T1 must change the loss values (the soft term scales)."""
        _, low = quantization_stage(
            trained_fp_model, tiny_dataset, train_config=FAST, temperature=1.0
        )
        _, high = quantization_stage(
            trained_fp_model, tiny_dataset, train_config=FAST, temperature=10.0
        )
        assert low.history.train_loss[0] != pytest.approx(
            high.history.train_loss[0], rel=1e-3
        )


class TestApproximationStageDetails:
    def test_weight_steps_refreshed(self, quantized_model, tiny_dataset):
        """The stage re-derives weight steps from the post-stage-1 weights."""
        model, _ = approximation_stage(
            quantized_model,
            tiny_dataset,
            "truncated3",
            method="normal",
            train_config=TrainConfig(epochs=0, batch_size=64, lr=0.005, seed=0),
        )
        for src, dst in zip(quant_layers(quantized_model), quant_layers(model)):
            assert dst.weight_step is not None
            assert dst.act_step == src.act_step  # activations kept

    def test_zero_epoch_stage_reports_initial_accuracy(self, quantized_model, tiny_dataset):
        _, result = approximation_stage(
            quantized_model,
            tiny_dataset,
            "truncated3",
            method="normal",
            train_config=TrainConfig(epochs=0, batch_size=64, lr=0.005, seed=0),
        )
        # With no training, before ≈ after (weight-step refresh may shift
        # the quantization grid slightly).
        assert result.accuracy_after == pytest.approx(result.accuracy_before, abs=0.1)

    def test_exact_multiplier_stage_runs(self, quantized_model, tiny_dataset):
        _, result = approximation_stage(
            quantized_model, tiny_dataset, "exact", method="normal", train_config=FAST
        )
        assert result.accuracy_before > 0.3  # exact execution: no collapse

    def test_kd_teacher_is_exact_quantized_model(self, quantized_model, tiny_dataset):
        """The stage-2 teacher must run exactly even while the student is
        approximate — verified indirectly: a collapsed student still gets a
        useful KD signal and improves."""
        cfg = TrainConfig(epochs=2, batch_size=32, lr=0.01, grad_clip=1.0, seed=0)
        _, result = approximation_stage(
            quantized_model,
            tiny_dataset,
            "truncated5",
            method="approxkd",
            train_config=cfg,
            temperature=5.0,
        )
        assert result.accuracy_after >= result.accuracy_before - 0.02
