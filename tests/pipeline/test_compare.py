"""Method-comparison harness."""

import pytest

from repro.pipeline import compare_methods
from repro.train import TrainConfig

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.01, seed=0)


class TestCompareMethods:
    def test_collects_all_requested_methods(self, quantized_model, tiny_dataset):
        cmp = compare_methods(
            quantized_model,
            tiny_dataset,
            "truncated4",
            methods=("normal", "approxkd"),
            train_config=FAST,
        )
        assert set(cmp.results) == {"normal", "approxkd"}
        assert cmp.multiplier_name == "truncated4"
        assert cmp.mre > 0
        assert cmp.energy_savings == pytest.approx(0.28)

    def test_initial_accuracy_shared(self, quantized_model, tiny_dataset):
        cmp = compare_methods(
            quantized_model,
            tiny_dataset,
            "truncated3",
            methods=("normal", "ge"),
            train_config=FAST,
        )
        assert cmp.results["normal"].accuracy_before == pytest.approx(
            cmp.results["ge"].accuracy_before
        )
        assert cmp.initial_accuracy == cmp.results["ge"].accuracy_before

    def test_best_method_and_final_accuracy(self, quantized_model, tiny_dataset):
        cmp = compare_methods(
            quantized_model,
            tiny_dataset,
            "truncated2",
            methods=("normal", "approxkd"),
            train_config=FAST,
        )
        best = cmp.best_method()
        assert cmp.final_accuracy(best) == max(
            r.accuracy_after for r in cmp.results.values()
        )

    def test_default_temperature_follows_policy(self, quantized_model, tiny_dataset):
        from repro.distill import recommended_t2

        cmp = compare_methods(
            quantized_model,
            tiny_dataset,
            "truncated5",
            methods=("normal",),
            train_config=FAST,
        )
        # Just confirm the MRE-based policy is well-defined for this MRE.
        assert recommended_t2(cmp.mre) in (2.0, 5.0, 10.0)
