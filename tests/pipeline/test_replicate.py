"""Seed replication utilities."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import ReplicateSummary, replicate_approximation_stage
from repro.train import TrainConfig

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)


@pytest.fixture(scope="module")
def summary(quantized_model, tiny_dataset):
    return replicate_approximation_stage(
        quantized_model,
        tiny_dataset,
        "truncated4",
        method="normal",
        train_config=FAST,
        seeds=(0, 1),
    )


class TestReplicate:
    def test_one_accuracy_per_seed(self, summary):
        assert len(summary.final_accuracies) == 2
        assert summary.seeds == (0, 1)

    def test_statistics_consistent(self, summary):
        accs = summary.final_accuracies
        assert summary.min == min(accs)
        assert summary.max == max(accs)
        assert summary.min <= summary.mean <= summary.max
        assert summary.std >= 0

    def test_requires_seeds(self, quantized_model, tiny_dataset):
        with pytest.raises(ConfigError):
            replicate_approximation_stage(
                quantized_model,
                tiny_dataset,
                "truncated4",
                method="normal",
                train_config=FAST,
                seeds=(),
            )


class TestOverlap:
    def _make(self, mean, std):
        return ReplicateSummary(
            method="m",
            multiplier="x",
            seeds=(0,),
            final_accuracies=(mean,),
            mean=mean,
            std=std,
            min=mean,
            max=mean,
        )

    def test_overlapping_intervals(self):
        assert self._make(0.5, 0.1).overlaps(self._make(0.55, 0.1))

    def test_separated_intervals(self):
        assert not self._make(0.3, 0.01).overlaps(self._make(0.6, 0.01))

    def test_sigma_widening(self):
        a, b = self._make(0.3, 0.1), self._make(0.6, 0.1)
        assert not a.overlaps(b, sigmas=1.0)
        assert a.overlaps(b, sigmas=2.0)
