"""The multiplier/method/temperature sweep harness."""

import json

import pytest

from repro.errors import ConfigError
from repro.pipeline import SweepResult, run_sweep
from repro.train import TrainConfig

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)


@pytest.fixture(scope="module")
def sweep(quantized_model, tiny_dataset):
    return run_sweep(
        quantized_model,
        tiny_dataset,
        ["truncated3", "evoapprox29"],
        methods=("normal", "approxkd"),
        train_config=FAST,
    )


class TestRunSweep:
    def test_grid_size(self, sweep):
        assert len(sweep.points) == 2 * 2  # multipliers x methods, auto temp

    def test_point_fields(self, sweep):
        point = sweep.points[0]
        assert point.multiplier == "truncated3"
        assert point.method in ("normal", "approxkd")
        assert point.mre > 0
        assert 0 <= point.final_accuracy <= 1
        assert point.wall_time > 0

    def test_auto_temperature_uses_policy(self, sweep):
        from repro.distill import recommended_t2

        for point in sweep.points:
            assert point.temperature == recommended_t2(point.mre)

    def test_temperature_grid(self, quantized_model, tiny_dataset):
        result = run_sweep(
            quantized_model,
            tiny_dataset,
            ["truncated4"],
            methods=("approxkd",),
            temperatures=(1.0, 5.0),
            train_config=FAST,
        )
        assert sorted(p.temperature for p in result.points) == [1.0, 5.0]

    def test_unknown_method_rejected(self, quantized_model, tiny_dataset):
        with pytest.raises(ConfigError):
            run_sweep(
                quantized_model, tiny_dataset, ["truncated3"], methods=("magic",)
            )


class TestSweepResult:
    def test_filter(self, sweep):
        subset = sweep.filter(multiplier="truncated3")
        assert len(subset) == 2
        subset = sweep.filter(method="normal")
        assert len(subset) == 2
        assert sweep.filter(multiplier="truncated3", method="normal")

    def test_best_point(self, sweep):
        best = sweep.best_point()
        assert best.final_accuracy == max(p.final_accuracy for p in sweep.points)

    def test_empty_best_raises(self):
        with pytest.raises(ConfigError):
            SweepResult().best_point()

    def test_json_export(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        sweep.to_json(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["points"]) == len(sweep.points)
        assert loaded["config"]["methods"] == ["normal", "approxkd"]


class TestPrefilter:
    def test_prefilter_drops_weak_candidates_before_training(
        self, quantized_model, tiny_dataset
    ):
        # 'exact' scores 0 analytically; truncated5 is the registry's
        # worst — the prefiltered grid must train only the keeper.
        result = run_sweep(
            quantized_model,
            tiny_dataset,
            ["truncated5", "exact"],
            methods=("normal",),
            train_config=FAST,
            prefilter=1,
        )
        assert [p.multiplier for p in result.points] == ["exact"]
        assert result.config["prefilter"] == 1

    def test_prefilter_keeps_unresolvable_names_as_failure_cells(
        self, quantized_model, tiny_dataset
    ):
        result = run_sweep(
            quantized_model,
            tiny_dataset,
            ["nosuchmult", "exact"],
            methods=("normal",),
            train_config=FAST,
            prefilter=1,
        )
        by_name = {p.multiplier: p for p in result.points}
        assert set(by_name) == {"nosuchmult", "exact"}
        assert not by_name["nosuchmult"].ok
        assert by_name["exact"].ok
