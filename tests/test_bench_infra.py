"""Benchmark-harness infrastructure (presets, table rendering)."""

import pytest

from benchmarks.conftest import PRESETS, BenchPreset, get_preset, print_table, _fmt


class TestPresets:
    def test_smoke_and_full_exist(self):
        assert set(PRESETS) >= {"smoke", "full"}

    def test_default_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PRESET", raising=False)
        assert get_preset().name == "smoke"

    def test_env_selects_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PRESET", "full")
        assert get_preset().name == "full"

    def test_unknown_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PRESET", "galactic")
        with pytest.raises(KeyError):
            get_preset()

    def test_full_is_larger_than_smoke(self):
        smoke, full = PRESETS["smoke"], PRESETS["full"]
        assert full.num_train > smoke.num_train
        assert full.approx_epochs > smoke.approx_epochs
        assert full.width_mult > smoke.width_mult

    def test_presets_are_frozen(self):
        with pytest.raises(Exception):
            PRESETS["smoke"].epochs = 1


class TestTableRendering:
    def test_fmt_floats_and_strings(self):
        assert _fmt(1.23456) == "1.23"
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_print_table_alignment(self, capsys):
        print_table("T", ["col", "x"], [["a", 1.0], ["long-name", 22.5]])
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("===")]
        # Header and rows share column offsets.
        header, sep, row1, row2 = lines[:4]
        assert header.index("x") == row1.index("1.00")

    def test_print_table_empty_rows(self, capsys):
        print_table("Empty", ["a", "b"], [])
        assert "Empty" in capsys.readouterr().out
