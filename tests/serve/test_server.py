"""Server integration: bitwise identity, weight swap, backpressure, faults.

The two load-bearing guarantees (ISSUE 9 / ``docs/SERVING.md``):

1. every served response is bitwise identical to evaluating the same
   sample alone under exactly one weight version — micro-batching and
   weight swapping change speed and freshness, never numbers, and no
   batch is ever torn across versions;
2. a submit past the queue-depth bound fails fast with
   :class:`~repro.errors.BackpressureError` — admission control rejects,
   it never hangs.
"""

from __future__ import annotations

import copy
import time

import numpy as np
import pytest

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.errors import BackpressureError, ServeError
from repro.serve import Client, ServeConfig, Server

pytestmark = pytest.mark.serve


def _single_eval(model, xs: np.ndarray) -> np.ndarray:
    """Reference: each sample evaluated alone (batch size 1)."""
    with no_grad():
        return np.concatenate([model(Tensor(xs[i : i + 1])).data for i in range(len(xs))])


@pytest.fixture()
def samples(tiny_dataset):
    return tiny_dataset.test_x[:24].astype(np.float32)


class TestServeConfig:
    def test_resolution_fills_defaults(self):
        resolved = ServeConfig().resolved()
        assert resolved.deadline_ms == 5.0
        assert resolved.max_batch == 32
        assert resolved.queue_depth == 256
        assert resolved.replicas >= 1

    def test_resolution_honours_config_scope(self):
        from repro import config

        with config.config_scope(serve_max_batch=4, serve_queue_depth=16):
            resolved = ServeConfig().resolved()
        assert resolved.max_batch == 4
        assert resolved.queue_depth == 16

    def test_explicit_fields_beat_ambient_config(self):
        from repro import config

        with config.config_scope(serve_max_batch=4):
            resolved = ServeConfig(max_batch=8, queue_depth=64).resolved()
        assert resolved.max_batch == 8

    def test_validation(self):
        with pytest.raises(ServeError):
            ServeConfig(max_batch=0, queue_depth=8).resolved()
        with pytest.raises(ServeError):
            ServeConfig(deadline_ms=-1.0).resolved()
        with pytest.raises(ServeError):
            ServeConfig(max_batch=16, queue_depth=8).resolved()
        with pytest.raises(ServeError):
            ServeConfig(replicas=0).resolved()


class TestBitwiseIdentity:
    def test_batched_responses_match_single_sample_eval(
        self, quantized_model, samples
    ):
        reference = _single_eval(quantized_model, samples)
        config = ServeConfig(deadline_ms=5.0, max_batch=8, queue_depth=64, replicas=2)
        with Server(quantized_model, config) as server:
            predictions = Client(server).map(list(samples))
        got = np.stack([p.logits for p in predictions])
        assert np.array_equal(reference, got)
        assert all(p.weights_version == 0 for p in predictions)

    def test_batch_submit_matches_and_is_single_version(
        self, quantized_model, samples
    ):
        reference = _single_eval(quantized_model, samples[:6])
        config = ServeConfig(deadline_ms=2.0, max_batch=4, queue_depth=64, replicas=1)
        with Server(quantized_model, config) as server:
            prediction = Client(server).predict_batch(samples[:6])  # oversize: solo
        assert np.array_equal(reference, prediction.logits)
        assert prediction.weights_version == 0


class TestWeightSwap:
    def test_responses_during_swap_are_bitwise_under_exactly_one_version(
        self, quantized_model, samples
    ):
        """ISSUE 9 satellite test (a): no torn batches across a swap.

        A stream of requests is submitted while the weights are swapped
        mid-flight. Every response must equal single-sample evaluation
        under the *one* weight version it reports — old or new, never a
        mixture — and late responses must be on the new version.
        """
        perturbed = copy.deepcopy(quantized_model)
        with no_grad():
            first = next(iter(perturbed.parameters()))
            first.data = (first.data * np.float32(0.75)).astype(np.float32)
        reference = {
            0: _single_eval(quantized_model, samples),
            1: _single_eval(perturbed, samples),
        }
        # The two versions must actually disagree or the test proves nothing.
        assert not np.array_equal(reference[0], reference[1])

        config = ServeConfig(deadline_ms=5.0, max_batch=4, queue_depth=256, replicas=2)
        with Server(quantized_model, config) as server:
            client = Client(server)
            futures = []
            for lap in range(6):
                futures.extend(
                    (i, client.submit(samples[i])) for i in range(len(samples))
                )
                if lap == 2:
                    assert server.swap_weights(perturbed) == 1
            results = [(i, f.result(timeout=30)) for i, f in futures]

        versions = {p.weights_version for _, p in results}
        assert versions <= {0, 1}
        assert 1 in versions  # the swap landed while serving
        for i, prediction in results:
            assert np.array_equal(
                reference[prediction.weights_version][i], prediction.logits
            ), f"response for sample {i} not bitwise under v{prediction.weights_version}"

    def test_swap_is_zero_downtime(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=64, replicas=1)
        with Server(quantized_model, config) as server:
            client = Client(server)
            client.predict(samples[0])
            server.swap_weights(quantized_model)  # same weights, new version
            prediction = client.predict(samples[0])
            assert prediction.weights_version == 1
            assert server.stats()["replica_versions"] == [1]

    def test_swap_accepts_state_arrays(self, quantized_model, samples):
        from repro.utils.serialization import model_state_arrays

        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=64, replicas=1)
        with Server(quantized_model, config) as server:
            version = server.swap_weights(model_state_arrays(quantized_model))
            assert version == 1
            prediction = Client(server).predict(samples[0])
        assert prediction.weights_version == 1
        assert np.array_equal(
            prediction.logits, _single_eval(quantized_model, samples[:1])[0]
        )


class TestBackpressure:
    def test_submit_past_depth_rejects_not_hangs(self, quantized_model, samples):
        """ISSUE 9 satellite test (b): bounded queue fails fast."""
        config = ServeConfig(deadline_ms=50.0, max_batch=4, queue_depth=4, replicas=1)
        server = Server(quantized_model, config)  # not started: nothing drains
        try:
            for i in range(4):
                server.submit(samples[i])
            start = time.perf_counter()
            with pytest.raises(BackpressureError) as excinfo:
                server.submit(samples[0])
            assert time.perf_counter() - start < 0.5
            assert excinfo.value.retry_after_s > 0
            assert server.stats()["rejected"] == 1
        finally:
            server.start()  # drain the four queued requests, then stop
            server.stop()

    def test_client_retry_absorbs_backpressure(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=4, replicas=1)
        with Server(quantized_model, config) as server:
            client = Client(server, retries=64, timeout_s=60)
            predictions = client.map([samples[i % 8] for i in range(32)])
        assert len(predictions) == 32

    def test_raw_submit_does_not_retry(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=50.0, max_batch=2, queue_depth=2, replicas=1)
        server = Server(quantized_model, config)
        try:
            server.submit(samples[0])
            server.submit(samples[1])
            with pytest.raises(BackpressureError):
                Client(server).submit(samples[2])
        finally:
            server.start()
            server.stop()


class TestLifecycleAndFaults:
    def test_stop_drains_queued_requests(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=50.0, max_batch=8, queue_depth=64, replicas=1)
        server = Server(quantized_model, config)
        futures = [server.submit(samples[i]) for i in range(6)]
        server.start()
        server.stop(drain=True)
        reference = _single_eval(quantized_model, samples[:6])
        for i, future in enumerate(futures):
            assert np.array_equal(future.result(timeout=5).logits, reference[i])

    def test_stop_without_drain_fails_queued(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=60_000.0, max_batch=64, queue_depth=64,
                             replicas=1)
        server = Server(quantized_model, config)
        future = server.submit(samples[0])
        server.stop(drain=False)
        with pytest.raises(ServeError):
            future.result(timeout=5)

    def test_submit_after_stop_raises(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=16, replicas=1)
        server = Server(quantized_model, config)
        server.start()
        server.stop()
        with pytest.raises(ServeError):
            server.submit(samples[0])

    def test_injected_fault_is_isolated_to_one_batch(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=64, replicas=1)
        with Server(quantized_model, config) as server:
            client = Client(server)
            server.inject_replica_fault(0)
            failed = served = 0
            for i in range(12):
                try:
                    client.predict(samples[i])
                    served += 1
                except ServeError:
                    failed += 1
            assert failed >= 1  # the armed fault fired...
            assert served >= 10  # ...and the replica kept serving afterwards
            assert server.stats()["replica_faults"] == 1

    def test_rejects_non_module(self):
        with pytest.raises(ServeError):
            Server(object())  # type: ignore[arg-type]

    def test_submit_batch_validates_shape(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=16, replicas=1)
        server = Server(quantized_model, config)
        with pytest.raises(ServeError):
            server.submit_batch(samples[0].ravel()[:4])  # 1-D: not a batch
        with pytest.raises(ServeError):
            server.submit_batch(samples[:0])  # empty batch
        server.stop(drain=False)

    def test_stats_shape(self, quantized_model, samples):
        config = ServeConfig(deadline_ms=1.0, max_batch=4, queue_depth=16, replicas=2)
        with Server(quantized_model, config) as server:
            Client(server).map(list(samples[:8]))
            stats = server.stats()
        assert stats["served_requests"] == 8
        assert stats["served_samples"] == 8
        assert stats["batches"] >= 1
        assert 0.0 < stats["batch_occupancy"] <= 1.0
        assert stats["replicas"] == 2


class TestObservability:
    def test_serve_spans_and_metrics_are_recorded(self, quantized_model, samples):
        from repro.obs import metrics as met
        from repro.obs import trace as tr

        config = ServeConfig(deadline_ms=2.0, max_batch=4, queue_depth=64, replicas=1)
        met.reset_metrics()
        met.enable_metrics()
        try:
            with tr.tracing() as recorder:
                with Server(quantized_model, config) as server:
                    Client(server).map(list(samples[:8]))
                    server.swap_weights(quantized_model)
                    Client(server).predict(samples[0])
            names = {span.name for span in recorder.spans()}
            assert "serve.batch" in names
            assert "serve.request" in names
            assert "serve.weight_swap" in names
            text = met.to_prometheus(met.get_metrics())
            assert "serve_batch_size" in text
            assert "serve_request_latency_s" in text
        finally:
            met.disable_metrics()
            met.reset_metrics()
