"""Load generator: open-loop (Poisson) arrivals and report plumbing.

The open-loop guarantee: the arrival process is driven by the offered
rate alone — the dispatcher issues requests on its pre-drawn exponential
schedule regardless of how fast the server answers, and the report's
``achieved_rps`` stays within sampling tolerance of ``offered_rps``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import Server, run_load

pytestmark = pytest.mark.serve


@pytest.fixture()
def server(quantized_model):
    srv = Server(quantized_model)
    srv.start()
    yield srv
    srv.stop()


class TestOpenLoop:
    def test_offered_rate_is_respected(self, server, tiny_dataset):
        offered = 300.0
        report = run_load(
            server, tiny_dataset, requests=150, mode="open", offered_rps=offered, seed=3
        )
        assert report.mode == "open"
        assert report.offered_rps == offered
        assert report.failed_requests == 0
        assert report.requests == 150
        # The dispatcher realizes one draw of the Poisson schedule; over
        # n arrivals the realized rate fluctuates by ~1/sqrt(n) (~8% at
        # n=150), so a 25% band is a real assertion, not a tautology.
        assert report.achieved_rps == pytest.approx(offered, rel=0.25)

    def test_slow_server_does_not_throttle_arrivals(self, server, tiny_dataset):
        """Unlike the closed loop, latency must not feed back into the
        offered rate: even when every request queues behind a batch, the
        dispatch rate tracks the schedule."""
        report = run_load(
            server,
            tiny_dataset,
            requests=80,
            mode="open",
            offered_rps=500.0,
            batch_fraction=0.5,
            batch_size=16,
            seed=7,
        )
        assert report.achieved_rps == pytest.approx(500.0, rel=0.3)
        assert report.requests == 80

    def test_open_loop_requires_positive_rate(self, server, tiny_dataset):
        with pytest.raises(ServeError):
            run_load(server, tiny_dataset, requests=4, mode="open")
        with pytest.raises(ServeError):
            run_load(server, tiny_dataset, requests=4, mode="open", offered_rps=0.0)

    def test_unknown_mode_rejected(self, server, tiny_dataset):
        with pytest.raises(ServeError):
            run_load(server, tiny_dataset, requests=4, mode="poisson")


class TestClosedLoopReport:
    def test_closed_loop_reports_no_rate_fields(self, server, tiny_dataset):
        report = run_load(server, tiny_dataset, requests=16, concurrency=4, seed=0)
        assert report.mode == "closed"
        assert report.offered_rps is None
        assert report.achieved_rps is None
        assert report.requests == 16
        payload = report.to_dict()
        assert payload["mode"] == "closed"
        assert np.isfinite(payload["latency_p95_ms"])
