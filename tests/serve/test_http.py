"""HTTP front end: predict/health/metrics/swap over a real socket."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.serve import HttpFrontend, ServeConfig, Server

pytestmark = pytest.mark.serve


@pytest.fixture()
def served(quantized_model):
    config = ServeConfig(deadline_ms=2.0, max_batch=8, queue_depth=64, replicas=1)
    server = Server(quantized_model, config).start()
    try:
        frontend = HttpFrontend(server, port=0)
    except OSError as exc:  # sandboxed environments may forbid binding
        server.stop()
        pytest.skip(f"cannot bind a local socket: {exc}")
    with frontend:
        yield frontend, server
    server.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def _post(url: str, payload: dict):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestHttpFrontend:
    def test_healthz_reports_running_and_stats(self, served):
        frontend, _ = served
        status, body = _get(frontend.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["ok"] is True
        assert payload["stats"]["replicas"] == 1

    def test_predict_single_is_bitwise(self, served, tiny_dataset, quantized_model):
        frontend, _ = served
        x = tiny_dataset.test_x[0].astype(np.float32)
        status, payload = _post(
            frontend.url + "/v1/predict", {"inputs": x.tolist(), "single": True}
        )
        assert status == 200
        with no_grad():
            expected = quantized_model(Tensor(x[None])).data[0]
        assert np.array_equal(np.asarray(payload["logits"], np.float32), expected)
        assert payload["weights_version"] == 0

    def test_predict_batch(self, served, tiny_dataset):
        frontend, _ = served
        xs = tiny_dataset.test_x[:3].astype(np.float32)
        status, payload = _post(frontend.url + "/v1/predict", {"inputs": xs.tolist()})
        assert status == 200
        assert np.asarray(payload["logits"]).shape[0] == 3

    def test_metrics_exposition(self, served, tiny_dataset):
        from repro.obs import metrics as met

        frontend, _ = served
        met.reset_metrics()
        met.enable_metrics()
        try:
            x = tiny_dataset.test_x[0].astype(np.float32)
            _post(frontend.url + "/v1/predict", {"inputs": x.tolist(), "single": True})
            status, body = _get(frontend.url + "/metrics")
        finally:
            met.disable_metrics()
            met.reset_metrics()
        assert status == 200
        assert b"repro_serve_batch_size" in body

    def test_swap_endpoint(self, served, quantized_model, tmp_path):
        from repro.utils.serialization import save_model

        frontend, server = served
        checkpoint = tmp_path / "weights.npz"
        save_model(quantized_model, checkpoint)
        status, payload = _post(
            frontend.url + "/v1/swap", {"checkpoint": str(checkpoint)}
        )
        assert status == 200
        assert payload["weights_version"] == 1
        assert server.weights_version == 1

    def test_bad_requests_are_4xx(self, served):
        frontend, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(frontend.url + "/v1/predict", {"nope": 1})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(frontend.url + "/v1/swap", {"checkpoint": "/no/such/file.npz"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(frontend.url + "/nope")
        assert excinfo.value.code == 404
