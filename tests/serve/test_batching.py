"""Request queue: coalescing, deadlines, admission control, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import BackpressureError, ServeError
from repro.serve.batching import Request, RequestQueue

pytestmark = pytest.mark.serve


def _req(samples: int = 1) -> Request:
    if samples == 1:
        return Request(np.zeros((1, 4), np.float32), single=True)
    return Request(np.zeros((samples, 4), np.float32), single=False)


class TestCoalescing:
    def test_batch_fills_to_max_batch(self):
        q = RequestQueue(64)
        for _ in range(6):
            q.put(_req())
        batch = q.next_batch(max_batch=4, deadline_s=0.5)
        assert len(batch) == 4
        assert q.depth_samples() == 2

    def test_deadline_releases_partial_batch(self):
        q = RequestQueue(64)
        q.put(_req())
        start = time.perf_counter()
        batch = q.next_batch(max_batch=32, deadline_s=0.05)
        waited = time.perf_counter() - start
        assert len(batch) == 1
        assert waited < 1.0  # released by deadline, not starvation

    def test_deadline_measured_from_oldest_request(self):
        q = RequestQueue(64)
        q.put(_req())
        time.sleep(0.08)
        # The oldest request is already past a 50ms deadline: the batch
        # must release immediately even though the queue is not full.
        start = time.perf_counter()
        batch = q.next_batch(max_batch=32, deadline_s=0.05)
        assert len(batch) == 1
        assert time.perf_counter() - start < 0.05

    def test_batch_requests_are_indivisible(self):
        q = RequestQueue(64)
        q.put(_req(3))
        q.put(_req(3))
        batch = q.next_batch(max_batch=4, deadline_s=0.01)
        # Second request would overflow max_batch: it must not be split.
        assert [r.samples for r in batch] == [3]

    def test_oversize_first_request_ships_alone(self):
        q = RequestQueue(64)
        q.put(_req(10))
        q.put(_req())
        batch = q.next_batch(max_batch=4, deadline_s=0.01)
        assert [r.samples for r in batch] == [10]

    def test_late_arrivals_join_before_deadline(self):
        q = RequestQueue(64)
        q.put(_req())

        def late_put():
            time.sleep(0.02)
            q.put(_req())

        thread = threading.Thread(target=late_put)
        thread.start()
        batch = q.next_batch(max_batch=4, deadline_s=0.3)
        thread.join()
        assert len(batch) == 2


class TestAdmissionControl:
    def test_rejects_past_depth_with_retry_hint(self):
        q = RequestQueue(2, retry_after_hint=lambda: 0.123)
        q.put(_req())
        q.put(_req())
        with pytest.raises(BackpressureError) as excinfo:
            q.put(_req())
        assert excinfo.value.retry_after_s == pytest.approx(0.123)

    def test_rejection_is_immediate_not_a_hang(self):
        q = RequestQueue(1)
        q.put(_req())
        start = time.perf_counter()
        with pytest.raises(BackpressureError):
            q.put(_req())
        assert time.perf_counter() - start < 0.1

    def test_depth_counts_samples_not_requests(self):
        q = RequestQueue(4)
        q.put(_req(3))
        with pytest.raises(BackpressureError):
            q.put(_req(2))
        q.put(_req(1))  # exactly fills the bound
        assert q.depth_samples() == 4

    def test_never_admittable_oversize_request_rejected(self):
        q = RequestQueue(2)
        with pytest.raises(BackpressureError):
            q.put(_req(3))


class TestShutdown:
    def test_put_after_close_raises_serve_error(self):
        q = RequestQueue(8)
        q.close()
        with pytest.raises(ServeError):
            q.put(_req())

    def test_next_batch_returns_none_when_closed_and_drained(self):
        q = RequestQueue(8)
        q.put(_req())
        q.close(drain=True)
        assert len(q.next_batch(4, 0.01)) == 1
        assert q.next_batch(4, 0.01) is None

    def test_close_without_drain_fails_queued_futures(self):
        q = RequestQueue(8)
        request = _req()
        q.put(request)
        q.close(drain=False)
        with pytest.raises(ServeError):
            request.future.result(timeout=1)
        assert q.next_batch(4, 0.01) is None

    def test_close_releases_blocked_consumer(self):
        q = RequestQueue(8)
        result = {}

        def consume():
            result["batch"] = q.next_batch(4, 0.5)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        q.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert result["batch"] is None

    def test_queue_depth_validation(self):
        with pytest.raises(ServeError):
            RequestQueue(0)
