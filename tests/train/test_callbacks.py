"""Trainer callbacks: early stopping and best-weights tracking."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import TinyMLP
from repro.train import (
    BestWeightsKeeper,
    Callback,
    EarlyStopping,
    History,
    TrainConfig,
    cross_entropy_loss,
    train_model,
)


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        cb = EarlyStopping(patience=2)
        history = History(test_accuracy=[0.5])
        assert not cb.on_epoch_end(0, history, None)
        history.test_accuracy.append(0.5)
        assert not cb.on_epoch_end(1, history, None)
        history.test_accuracy.append(0.5)
        assert cb.on_epoch_end(2, history, None)

    def test_improvement_resets_counter(self):
        cb = EarlyStopping(patience=2)
        history = History(test_accuracy=[0.5])
        cb.on_epoch_end(0, history, None)
        history.test_accuracy.append(0.4)
        cb.on_epoch_end(1, history, None)
        history.test_accuracy.append(0.6)  # improvement
        assert not cb.on_epoch_end(2, history, None)
        history.test_accuracy.append(0.6)
        assert not cb.on_epoch_end(3, history, None)

    def test_min_delta(self):
        cb = EarlyStopping(patience=1, min_delta=0.05)
        history = History(test_accuracy=[0.5])
        cb.on_epoch_end(0, history, None)
        history.test_accuracy.append(0.52)  # below min_delta -> stale
        assert cb.on_epoch_end(1, history, None)

    def test_validation(self):
        with pytest.raises(ConfigError):
            EarlyStopping(patience=0)

    def test_in_training_loop(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=20, batch_size=64, lr=1e-6, seed=0)  # no progress
        history = train_model(
            model, tiny_dataset, cross_entropy_loss(), cfg,
            callbacks=[EarlyStopping(patience=2, min_delta=0.5)],
        )
        assert len(history.train_loss) < 20  # stopped early


class TestBestWeightsKeeper:
    def test_restore_best(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        keeper = BestWeightsKeeper()
        cfg = TrainConfig(epochs=3, batch_size=64, lr=0.02, seed=0)
        history = train_model(
            model, tiny_dataset, cross_entropy_loss(), cfg, callbacks=[keeper]
        )
        keeper.restore(model)
        from repro.sim import evaluate_accuracy

        acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc == pytest.approx(keeper.best_accuracy, abs=1e-9)
        assert keeper.best_accuracy == max(history.test_accuracy)

    def test_restore_without_snapshot_raises(self):
        keeper = BestWeightsKeeper()
        with pytest.raises(ConfigError):
            keeper.restore(TinyMLP(12, hidden=4, rng=0))
        with pytest.raises(ConfigError):
            keeper.best_accuracy


class TestBaseCallback:
    def test_default_never_stops(self):
        assert not Callback().on_epoch_end(0, History(), None)
