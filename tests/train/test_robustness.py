"""Noisy-weight (active) retraining and gradient clipping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import TinyMLP
from repro.nn import Parameter
from repro.train import (
    TrainConfig,
    clip_grad_norm,
    cross_entropy_loss,
    noisy_weight_training,
)


class TestClipGradNorm:
    def test_no_clipping_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.3, 0.0, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.0, 0.4])

    def test_scales_down_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([a, b], max_norm=5.0)
        np.testing.assert_allclose(a.grad, [3.0])  # exactly at the limit

    def test_skips_missing_grads(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([10.0])
        clip_grad_norm([a, b], max_norm=1.0)
        assert b.grad is None

    def test_rejects_nonpositive_max(self):
        with pytest.raises(ConfigError):
            clip_grad_norm([], max_norm=0.0)


class TestNoisyWeightTraining:
    def test_trains_and_returns_history(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=2, batch_size=64, lr=0.02, seed=0)
        history = noisy_weight_training(
            model, tiny_dataset, cross_entropy_loss(), cfg, noise_sigma=0.05
        )
        assert len(history.train_loss) == 2
        assert history.train_loss[-1] <= history.train_loss[0] * 1.5
        assert np.isfinite(history.train_loss).all()

    def test_zero_sigma_matches_plain_training(self, tiny_dataset):
        from repro.train import train_model

        cfg = TrainConfig(epochs=1, batch_size=64, lr=0.02, seed=0)
        a = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        plain = train_model(a, tiny_dataset, cross_entropy_loss(), cfg)
        b = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        noisy = noisy_weight_training(
            b, tiny_dataset, cross_entropy_loss(), cfg, noise_sigma=0.0
        )
        assert noisy.train_loss[0] == pytest.approx(plain.train_loss[0], rel=1e-5)

    def test_weights_restored_each_step(self, tiny_dataset):
        """After training, weights must be finite and not noise-corrupted."""
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=1, batch_size=64, lr=0.0001, seed=0)
        noisy_weight_training(
            model, tiny_dataset, cross_entropy_loss(), cfg, noise_sigma=0.5
        )
        for p in model.parameters():
            assert np.isfinite(p.data).all()

    def test_rejects_negative_sigma(self, tiny_dataset):
        with pytest.raises(ConfigError):
            noisy_weight_training(
                TinyMLP(3 * 16 * 16, hidden=8, rng=0),
                tiny_dataset,
                cross_entropy_loss(),
                TrainConfig(epochs=1, batch_size=64, lr=0.01),
                noise_sigma=-0.1,
            )
