"""LR schedules and classification metrics."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import Parameter
from repro.train import (
    SGD,
    ConstantLR,
    CosineDecay,
    StepDecay,
    confusion_matrix,
    top1_accuracy,
    topk_accuracy,
)


class TestStepDecay:
    def test_paper_schedule(self):
        """Paper: decay 0.1 every 15 epochs."""
        sched = StepDecay(1e-4, decay=0.1, every=15)
        assert sched.lr_at(0) == pytest.approx(1e-4)
        assert sched.lr_at(14) == pytest.approx(1e-4)
        assert sched.lr_at(15) == pytest.approx(1e-5)
        assert sched.lr_at(29) == pytest.approx(1e-5)

    def test_apply_updates_optimizer(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        StepDecay(0.5, 0.1, 2).apply(opt, epoch=2)
        assert opt.lr == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StepDecay(-1.0)
        with pytest.raises(ConfigError):
            StepDecay(1.0, decay=0.0)
        with pytest.raises(ConfigError):
            StepDecay(1.0, every=0)


class TestOtherSchedules:
    def test_constant(self):
        sched = ConstantLR(0.01)
        assert sched.lr_at(0) == sched.lr_at(100) == 0.01

    def test_cosine_endpoints(self):
        sched = CosineDecay(1.0, total_epochs=10, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert 0.1 < sched.lr_at(5) < 1.0

    def test_cosine_monotone_decreasing(self):
        sched = CosineDecay(1.0, total_epochs=20)
        lrs = [sched.lr_at(e) for e in range(21)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestMetrics:
    def test_top1(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert top1_accuracy(logits, np.array([1, 0])) == 1.0
        assert top1_accuracy(logits, np.array([0, 0])) == 0.5

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, np.array([2]), k=3) == 1.0
        assert topk_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_topk_validation(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((1, 3)), np.zeros(1), k=5)

    def test_top1_validation(self):
        with pytest.raises(ShapeError):
            top1_accuracy(np.zeros((2, 3)), np.zeros(3))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])
        assert cm.sum() == 3
