"""Baseline fine-tuning losses: alpha regularization."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.distill import clone_model
from repro.errors import ConfigError
from repro.models import simplecnn
from repro.quant import quant_layers
from repro.train import alpha_regularization_loss, remove_alpha_regularization


class TestAlphaRegularization:
    def test_requires_quantized_model(self):
        with pytest.raises(ConfigError):
            alpha_regularization_loss(simplecnn(base_width=4, rng=0))

    def test_rejects_negative_alpha(self, quantized_model):
        with pytest.raises(ConfigError):
            alpha_regularization_loss(clone_model(quantized_model), alpha=-1.0)

    def test_penalty_added_to_loss(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        model.train()
        x = Tensor(tiny_dataset.train_x[:8])
        labels = tiny_dataset.train_y[:8]

        # Large alpha: penalty dominates.
        loss_fn = alpha_regularization_loss(model, alpha=1.0)
        logits = model(x)
        big = loss_fn(logits, labels, np.arange(8)).item()

        remove_alpha_regularization(model)
        loss_fn0 = alpha_regularization_loss(model, alpha=0.0)
        logits = model(x)
        base = loss_fn0(logits, labels, np.arange(8)).item()
        remove_alpha_regularization(model)
        assert big > base * 10

    def test_penalty_gradients_reach_weights(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        model.train()
        model.zero_grad()
        loss_fn = alpha_regularization_loss(model, alpha=1e-6)
        logits = model(Tensor(tiny_dataset.train_x[:8]))
        loss = loss_fn(logits, tiny_dataset.train_y[:8], np.arange(8))
        loss.backward()
        grads = [layer.weight.grad for layer in quant_layers(model)]
        assert all(g is not None for g in grads)
        remove_alpha_regularization(model)

    def test_collector_cleared_between_batches(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        model.train()
        loss_fn = alpha_regularization_loss(model, alpha=1e-9)
        x = Tensor(tiny_dataset.train_x[:4])
        labels = tiny_dataset.train_y[:4]
        first = loss_fn(model(x), labels, np.arange(4)).item()
        second = loss_fn(model(x), labels, np.arange(4)).item()
        assert first == pytest.approx(second, rel=1e-5)
        remove_alpha_regularization(model)

    def test_remove_detaches_collectors(self, quantized_model):
        model = clone_model(quantized_model)
        alpha_regularization_loss(model, alpha=1e-9)
        remove_alpha_regularization(model)
        assert all(layer.output_collector is None for layer in quant_layers(model))

    def test_eval_forward_does_not_pollute(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        loss_fn = alpha_regularization_loss(model, alpha=1e-9)
        model.eval()
        model(Tensor(tiny_dataset.test_x[:4]))  # eval pass: must not collect
        model.train()
        logits = model(Tensor(tiny_dataset.train_x[:4]))
        loss = loss_fn(logits, tiny_dataset.train_y[:4], np.arange(4))
        assert np.isfinite(loss.item())
        remove_alpha_regularization(model)
