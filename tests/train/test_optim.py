"""Optimizers: convergence on quadratics, momentum and weight decay."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import Parameter
from repro.train import SGD, Adam


def _quadratic_step(param, target=3.0):
    """Gradient of 0.5*(w - target)^2."""
    param.grad = param.data - target


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            _quadratic_step(w)
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            w = Parameter(np.zeros(1))
            opt = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                _quadratic_step(w)
                opt.step()
            return abs(w.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.full(1, 10.0))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 10.0

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.ones(1))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad set
        assert w.data[0] == 1.0

    def test_zero_grad(self):
        w = Parameter(np.ones(1))
        w.grad = np.ones(1)
        SGD([w], lr=0.1).zero_grad()
        assert w.grad is None

    def test_nesterov(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(100):
            _quadratic_step(w)
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=0.01)

    def test_validation(self):
        w = Parameter(np.ones(1))
        with pytest.raises(ConfigError):
            SGD([w], lr=-0.1)
        with pytest.raises(ConfigError):
            SGD([w], lr=0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            SGD([w], lr=0.1, nesterov=True)
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_lr_mutable_mid_training(self):
        w = Parameter(np.zeros(1))
        opt = SGD([w], lr=1.0)
        opt.lr = 0.5
        w.grad = np.ones(1)
        opt.step()
        assert w.data[0] == pytest.approx(-0.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            _quadratic_step(w)
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_handles_sparse_grad_scale(self):
        # Adam normalises per-coordinate: large and small gradient scales
        # should converge similarly fast.
        w = Parameter(np.zeros(2))
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            w.grad = np.array([1000.0, 0.001]) * (w.data - 1.0)
            opt.step()
        np.testing.assert_allclose(w.data, [1.0, 1.0], atol=0.05)
