"""The fine-tuning loop: convergence, history, reproducibility."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import TinyMLP, simplecnn
from repro.train import History, TrainConfig, cross_entropy_loss, train_model


class TestTrainConfig:
    def test_defaults_match_paper(self):
        cfg = TrainConfig()
        assert cfg.epochs == 30
        assert cfg.batch_size == 128
        assert cfg.lr_decay == 0.1
        assert cfg.lr_decay_every == 15

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainConfig(epochs=-1)

    def test_schedule_factory(self):
        sched = TrainConfig(lr=0.1, lr_decay=0.5, lr_decay_every=2).make_schedule()
        assert sched.lr_at(2) == pytest.approx(0.05)


class TestTraining:
    def test_loss_decreases(self, tiny_dataset):
        model = simplecnn(base_width=4, rng=0)
        cfg = TrainConfig(epochs=4, batch_size=64, lr=0.05, seed=0)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_accuracy_improves_over_random(self, tiny_dataset):
        model = simplecnn(base_width=4, rng=0)
        cfg = TrainConfig(epochs=5, batch_size=64, lr=0.05, seed=0)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert history.final_accuracy > 0.3  # 10 classes -> random = 0.1

    def test_history_lengths(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=3, batch_size=64, lr=0.01, seed=0)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert len(history.train_loss) == 3
        assert len(history.test_accuracy) == 3
        assert len(history.learning_rate) == 3
        assert history.wall_time > 0

    def test_eval_every(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=4, batch_size=64, lr=0.01, seed=0, eval_every=2)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert len(history.test_accuracy) == 2

    def test_reproducible_given_seed(self, tiny_dataset):
        results = []
        for _ in range(2):
            model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
            cfg = TrainConfig(epochs=2, batch_size=64, lr=0.01, seed=3)
            history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
            results.append(history.train_loss)
        np.testing.assert_allclose(results[0], results[1])

    def test_zero_epochs_still_evaluates(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=0, batch_size=64, lr=0.01)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert len(history.test_accuracy) == 1

    def test_augmentation_path(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(epochs=1, batch_size=64, lr=0.01, augment=True, seed=0)
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert np.isfinite(history.train_loss[0])

    def test_lr_schedule_applied(self, tiny_dataset):
        model = TinyMLP(3 * 16 * 16, hidden=16, rng=0)
        cfg = TrainConfig(
            epochs=4, batch_size=64, lr=0.1, lr_decay=0.1, lr_decay_every=2, seed=0
        )
        history = train_model(model, tiny_dataset, cross_entropy_loss(), cfg)
        assert history.learning_rate[0] == pytest.approx(0.1)
        assert history.learning_rate[3] == pytest.approx(0.01)


class TestHistory:
    def test_final_and_best(self):
        h = History(test_accuracy=[0.5, 0.9, 0.7])
        assert h.final_accuracy == 0.7
        assert h.best_accuracy == 0.9

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            History().final_accuracy
