"""MobileNetV2 internals: inverted residuals, channel rounding, config."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models.mobilenetv2 import (
    CIFAR_INVERTED_RESIDUAL_CONFIG,
    ConvBNReLU6,
    InvertedResidual,
    MobileNetV2,
    _make_divisible,
)


class TestMakeDivisible:
    def test_multiples_preserved(self):
        assert _make_divisible(32) == 32
        assert _make_divisible(64) == 64

    def test_rounds_to_divisor(self):
        assert _make_divisible(30) % 8 == 0

    def test_never_drops_more_than_ten_percent(self):
        for value in (17, 23, 35, 100, 250):
            assert _make_divisible(value) >= 0.9 * value

    def test_minimum(self):
        assert _make_divisible(1) == 8


class TestInvertedResidual:
    def test_residual_used_when_shapes_match(self):
        block = InvertedResidual(16, 16, stride=1, expand_ratio=6, rng=0)
        assert block.use_residual

    def test_no_residual_on_stride_two(self):
        block = InvertedResidual(16, 16, stride=2, expand_ratio=6, rng=0)
        assert not block.use_residual

    def test_no_residual_on_channel_change(self):
        block = InvertedResidual(16, 24, stride=1, expand_ratio=6, rng=0)
        assert not block.use_residual

    def test_expand_ratio_one_skips_expansion(self):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=1, rng=0)
        # Only the depthwise stage remains before projection.
        assert len(block.features) == 1

    def test_forward_shapes(self, rng):
        block = InvertedResidual(8, 16, stride=2, expand_ratio=6, rng=0)
        x = Tensor(rng.normal(size=(2, 8, 8, 8)).astype(np.float32))
        assert block(x).shape == (2, 16, 4, 4)

    def test_depthwise_stage_is_grouped(self):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=6, rng=0)
        depthwise = block.features[-1].conv
        assert depthwise.groups == depthwise.in_channels


class TestConvBNReLU6:
    def test_output_clipped_at_six(self, rng):
        layer = ConvBNReLU6(3, 4, 3, 1, rng=0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32) * 100)
        out = layer(x).data
        assert out.min() >= 0.0
        assert out.max() <= 6.0


class TestConfig:
    def test_default_config_downsamples_twice(self):
        strides = [s for _, _, _, s in CIFAR_INVERTED_RESIDUAL_CONFIG]
        assert strides.count(2) == 2  # reproduces Table I's 0.296 GMACs

    def test_custom_config(self, rng):
        config = ((1, 8, 1, 1), (6, 16, 1, 2))
        model = MobileNetV2(width_mult=1.0, inverted_residual_config=config, rng=0)
        x = Tensor(rng.normal(size=(1, 3, 8, 8)).astype(np.float32))
        assert model(x).shape == (1, 10)

    def test_width_mult_scales_head(self):
        small = MobileNetV2(width_mult=0.25, rng=0)
        assert small.classifier.in_features < 1280
