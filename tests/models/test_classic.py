"""LeNet-5 and VGG-small baselines."""

import numpy as np
import pytest

from repro.autograd import Tensor, softmax_cross_entropy
from repro.models import create_model, lenet5, vggsmall
from repro.quant import quantize_model, quant_layers


def _forward(model, size):
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, size, size)).astype(np.float32))
    return model(x)


class TestLeNet5:
    def test_forward_shape(self):
        assert _forward(lenet5(input_size=32, rng=0), 32).shape == (2, 10)

    def test_other_input_size(self):
        assert _forward(lenet5(input_size=16, rng=0), 16).shape == (2, 10)

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            lenet5(input_size=8)

    def test_gradients_flow(self):
        model = lenet5(input_size=16, rng=0)
        out = _forward(model, 16)
        softmax_cross_entropy(out, np.array([0, 1])).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_quantizable(self):
        model = quantize_model(lenet5(input_size=16, rng=0))
        assert len(list(quant_layers(model))) == 5  # 2 conv + 3 linear


class TestVGGSmall:
    def test_forward_shape(self):
        assert _forward(vggsmall(base_width=8, rng=0), 16).shape == (2, 10)

    def test_gradients_flow(self):
        model = vggsmall(base_width=8, rng=0)
        out = _forward(model, 16)
        softmax_cross_entropy(out, np.array([0, 1])).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_bn_folds_completely(self):
        from repro.nn import BatchNorm2d
        from repro.quant import fold_batchnorms

        model = vggsmall(base_width=8, rng=0)
        assert fold_batchnorms(model) == 6
        assert not [m for m in model.modules() if isinstance(m, BatchNorm2d)]

    def test_width_scaling(self):
        small = vggsmall(base_width=4, rng=0).num_parameters()
        large = vggsmall(base_width=16, rng=0).num_parameters()
        assert large > small * 8


class TestRegistry:
    def test_create_by_name(self):
        assert create_model("lenet5", input_size=16, rng=0) is not None
        assert create_model("vggsmall", base_width=4, rng=0) is not None
