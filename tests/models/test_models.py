"""Model zoo: shapes, parameter counts (paper Table I) and training modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, softmax_cross_entropy
from repro.models import (
    MODELS,
    MobileNetV2,
    SimpleCNN,
    TinyMLP,
    create_model,
    mobilenetv2,
    resnet20,
    resnet32,
    simplecnn,
)


def _forward(model, size=32, batch=2):
    x = Tensor(np.random.default_rng(0).normal(size=(batch, 3, size, size)).astype(np.float32))
    return model(x)


class TestParameterCounts:
    """Table I of the paper: 0.3M / 0.5M / 2.2M parameters."""

    def test_resnet20(self):
        assert resnet20(rng=0).num_parameters() == pytest.approx(0.3e6, rel=0.15)

    def test_resnet32(self):
        assert resnet32(rng=0).num_parameters() == pytest.approx(0.5e6, rel=0.1)

    def test_mobilenetv2(self):
        assert mobilenetv2(rng=0).num_parameters() == pytest.approx(2.2e6, rel=0.05)


class TestForwardShapes:
    def test_resnet20_output(self):
        model = resnet20(width_mult=0.25, rng=0)
        assert _forward(model, 32).shape == (2, 10)

    def test_resnet32_output(self):
        model = resnet32(width_mult=0.25, rng=0)
        assert _forward(model, 32).shape == (2, 10)

    def test_mobilenetv2_output(self):
        model = mobilenetv2(width_mult=0.25, rng=0)
        assert _forward(model, 32).shape == (2, 10)

    def test_simplecnn_output(self):
        model = simplecnn(base_width=4, rng=0)
        assert _forward(model, 16).shape == (2, 10)

    def test_tinymlp_output(self):
        model = TinyMLP(3 * 8 * 8, hidden=16, rng=0)
        assert _forward(model, 8).shape == (2, 10)

    def test_custom_num_classes(self):
        model = resnet20(num_classes=4, width_mult=0.25, rng=0)
        assert _forward(model, 16).shape == (2, 4)

    def test_smaller_input_size(self):
        model = resnet20(width_mult=0.25, rng=0)
        assert _forward(model, 16).shape == (2, 10)


class TestWidthMultiplier:
    def test_reduces_parameters(self):
        full = resnet20(rng=0).num_parameters()
        quarter = resnet20(width_mult=0.25, rng=0).num_parameters()
        assert quarter < full / 8

    def test_mobilenet_width(self):
        full = mobilenetv2(rng=0).num_parameters()
        half = mobilenetv2(width_mult=0.5, rng=0).num_parameters()
        assert half < full / 2.5


class TestBackward:
    @pytest.mark.parametrize(
        "factory", [lambda: resnet20(width_mult=0.25, rng=0),
                    lambda: mobilenetv2(width_mult=0.25, rng=0),
                    lambda: simplecnn(base_width=4, rng=0)],
        ids=["resnet20", "mobilenetv2", "simplecnn"],
    )
    def test_all_parameters_receive_gradients(self, factory):
        model = factory()
        out = _forward(model, 16)
        loss = softmax_cross_entropy(out, np.array([0, 1]))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"


class TestEvalMode:
    def test_eval_forward_is_deterministic(self):
        model = mobilenetv2(width_mult=0.25, rng=0)
        model.eval()
        a = _forward(model, 16).data
        b = _forward(model, 16).data
        np.testing.assert_allclose(a, b)


class TestRegistry:
    def test_known_names(self):
        for name in ["resnet20", "resnet32", "mobilenetv2", "simplecnn"]:
            assert name in MODELS

    def test_create_model(self):
        model = create_model("resnet20", width_mult=0.25, rng=0)
        assert model.num_parameters() > 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_model("vgg16")

    def test_case_insensitive(self):
        assert create_model("ResNet20", width_mult=0.25, rng=0) is not None
