"""Monte-Carlo error profiling (paper section IV-B, Figs. 2 and 3)."""

import numpy as np
import pytest

from repro.approx import ExactMultiplier, get_multiplier
from repro.ge import estimate_error_model, profile_multiplier_error


class TestProfiling:
    def test_profile_shapes(self):
        profile = profile_multiplier_error(
            get_multiplier("truncated3"), num_simulations=5, gemm_rows=8, out_dim=4, rng=0
        )
        assert profile.y.shape == profile.eps.shape
        assert profile.y.size == 5 * 8 * 4
        assert profile.multiplier_name == "truncated3"

    def test_exact_multiplier_has_zero_error(self):
        profile = profile_multiplier_error(ExactMultiplier(), num_simulations=3, rng=0)
        assert np.abs(profile.eps).max() == 0

    def test_deterministic_given_seed(self):
        a = profile_multiplier_error(get_multiplier("truncated4"), num_simulations=3, rng=5)
        b = profile_multiplier_error(get_multiplier("truncated4"), num_simulations=3, rng=5)
        np.testing.assert_array_equal(a.y, b.y)
        np.testing.assert_array_equal(a.eps, b.eps)

    def test_samples_respect_quantization_ranges(self):
        profile = profile_multiplier_error(
            get_multiplier("truncated1"), num_simulations=2, reduce_dim=16, rng=0
        )
        # With 16 products of magnitude <= 127*7 the output is bounded.
        assert np.abs(profile.y).max() <= 16 * 127 * 7


class TestFittedModels:
    def test_truncated_multipliers_get_negative_slope(self):
        """Fig. 2: the truncated-multiplier error has a negative slope."""
        for name in ("truncated3", "truncated4", "truncated5"):
            model = estimate_error_model(get_multiplier(name), rng=0)
            assert model.k < 0, name
            assert not model.is_constant

    def test_deeper_truncation_steeper_slope(self):
        k3 = estimate_error_model(get_multiplier("truncated3"), rng=0).k
        k5 = estimate_error_model(get_multiplier("truncated5"), rng=0).k
        assert k5 < k3 < 0

    def test_evoapprox_models_are_constant(self):
        """Fig. 3 / section IV-B: EvoApprox errors fit only as constants, so
        ∂f/∂y = 0 and GE degenerates to the STE."""
        for ident in (470, 29, 228, 145, 469, 111, 249):
            model = estimate_error_model(get_multiplier(f"evoapprox{ident}"), rng=0)
            assert model.is_constant, f"evoapprox{ident}"

    def test_profiling_is_fast(self):
        """Paper: estimating f takes under a second."""
        import time

        start = time.perf_counter()
        estimate_error_model(get_multiplier("truncated5"), rng=0)
        assert time.perf_counter() - start < 2.0


class TestLazyChunkDraws:
    """The profiler materializes one simulation's operands at a time.

    Peak memory is one (rows x K) + (K x out) pair per in-flight chunk
    instead of the whole simulation batch; the observable contract is
    that the *parent* generator's consumption is identical on every
    schedule — a caller's generator ends in the same state whether the
    profile ran serially or fanned out to workers.
    """

    def test_external_generator_state_is_schedule_independent(self):
        mult = get_multiplier("truncated3")
        rng_serial = np.random.default_rng(9)
        serial = profile_multiplier_error(mult, num_simulations=9, rng=rng_serial)
        rng_parallel = np.random.default_rng(9)
        parallel = profile_multiplier_error(
            mult, num_simulations=9, rng=rng_parallel, workers=3
        )
        np.testing.assert_array_equal(serial.eps, parallel.eps)
        assert rng_serial.random() == rng_parallel.random()

    def test_chunks_of_one_match_one_big_chunk(self):
        """Draw order is per-simulation, so chunking cannot change it."""
        from repro.ge.montecarlo import _ChunkSpec, _simulate_chunk

        mult = get_multiplier("truncated4")
        spec = dict(
            gemm_rows=8, reduce_dim=16, out_dim=4, act_bits=8, weight_bits=4,
            sigma_fraction=0.35,
        )
        whole = _simulate_chunk(
            mult, _ChunkSpec(rng_state=None, count=4, **spec),
            rng=np.random.default_rng(11),
        )
        rng = np.random.default_rng(11)
        pieces = [
            _simulate_chunk(mult, _ChunkSpec(rng_state=None, count=1, **spec), rng=rng)[0]
            for _ in range(4)
        ]
        assert len(whole) == 4
        for (y_whole, eps_whole), (y_piece, eps_piece) in zip(whole, pieces):
            np.testing.assert_array_equal(y_whole, y_piece)
            np.testing.assert_array_equal(eps_whole, eps_piece)
