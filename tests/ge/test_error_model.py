"""Piecewise-linear error model: evaluation, slopes and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ge import PiecewiseLinearErrorModel, fit_error_model


class TestEvaluation:
    def test_linear_region(self):
        m = PiecewiseLinearErrorModel(k=-0.5, c=1.0, lower=-10.0, upper=10.0)
        assert m(np.array([0.0]))[0] == pytest.approx(1.0)
        assert m(np.array([2.0]))[0] == pytest.approx(0.0)

    def test_saturation(self):
        m = PiecewiseLinearErrorModel(k=-1.0, c=0.0, lower=-5.0, upper=5.0)
        assert m(np.array([100.0]))[0] == -5.0
        assert m(np.array([-100.0]))[0] == 5.0

    def test_slope_in_regions(self):
        m = PiecewiseLinearErrorModel(k=-1.0, c=0.0, lower=-5.0, upper=5.0)
        np.testing.assert_allclose(m.slope(np.array([0.0, 100.0, -100.0])), [-1.0, 0.0, 0.0])

    def test_gradient_scale_eq12(self):
        m = PiecewiseLinearErrorModel(k=-0.25, c=0.0, lower=-1e9, upper=1e9)
        np.testing.assert_allclose(m.gradient_scale(np.array([3.0])), [0.75])

    def test_constant_model(self):
        m = PiecewiseLinearErrorModel(k=0.0, c=2.0, lower=-3.0, upper=3.0)
        assert m.is_constant
        np.testing.assert_allclose(m.slope(np.array([1.0, 2.0])), [0.0, 0.0])
        np.testing.assert_allclose(m.gradient_scale(np.array([1.0])), [1.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ReproError):
            PiecewiseLinearErrorModel(k=0.0, c=0.0, lower=5.0, upper=-5.0)


class TestFitting:
    def test_recovers_linear_relationship(self, rng):
        y = rng.uniform(-100, 100, 2000)
        eps = -0.3 * y + 2.0 + rng.normal(0, 1.0, 2000)
        m = fit_error_model(y, eps)
        assert m.k == pytest.approx(-0.3, abs=0.02)
        assert m.c == pytest.approx(2.0, abs=0.5)
        assert not m.is_constant

    def test_collapses_to_constant_for_unbiased_noise(self, rng):
        y = rng.uniform(-100, 100, 2000)
        eps = rng.normal(0.5, 3.0, 2000)  # no y-dependence
        m = fit_error_model(y, eps)
        assert m.is_constant
        assert m.c == pytest.approx(0.5, abs=0.3)

    def test_saturation_bounds_from_percentiles(self, rng):
        y = rng.uniform(-10, 10, 5000)
        eps = np.clip(-1.0 * y, -4.0, 4.0) + rng.normal(0, 0.1, 5000)
        m = fit_error_model(y, eps)
        assert m.lower == pytest.approx(-4.0, abs=0.5)
        assert m.upper == pytest.approx(4.0, abs=0.5)

    def test_degenerate_constant_y(self):
        m = fit_error_model(np.full(100, 5.0), np.full(100, -2.0))
        assert m.is_constant
        assert m.c == pytest.approx(-2.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            fit_error_model(np.zeros(3), np.zeros(4))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ReproError):
            fit_error_model(np.zeros(1), np.zeros(1))

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(-0.9, -0.1),
        st.floats(-5.0, 5.0),
        st.integers(0, 2**31 - 1),
    )
    def test_fit_properties_randomised(self, k, c, seed):
        """Fitted model is always evaluable and bounded by its saturations."""
        rng = np.random.default_rng(seed)
        y = rng.uniform(-50, 50, 500)
        eps = k * y + c + rng.normal(0, 0.5, 500)
        m = fit_error_model(y, eps)
        vals = m(np.linspace(-1000, 1000, 101))
        assert (vals >= m.lower - 1e-9).all()
        assert (vals <= m.upper + 1e-9).all()
        scales = m.gradient_scale(np.linspace(-1000, 1000, 101))
        assert np.isfinite(scales).all()


class TestSkewedConstantCollapse:
    def test_mean_outside_percentile_band_is_preserved(self, rng):
        # 999 samples at -1 plus one huge outlier: the mean (~999) lies
        # far outside the [p1, p99] band of the errors. The constant
        # model must still return exactly the mean, not a clipped value.
        y = rng.uniform(-1.0, 1.0, 1000)
        eps = np.full(1000, -1.0)
        eps[0] = 1e6
        m = fit_error_model(y, eps)
        assert m.is_constant
        mean = float(eps.mean())
        assert m.c == pytest.approx(mean)
        np.testing.assert_allclose(m(np.array([-50.0, 0.0, 50.0])), mean)

    def test_fit_emits_no_rank_warning(self):
        # Nearly-constant y makes polyfit's Vandermonde matrix rank
        # deficient; the fit must swallow the RankWarning.
        import warnings

        y = 1.0 + 1e-12 * np.arange(64)
        eps = np.linspace(-1.0, 1.0, 64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fit_error_model(y, eps)


class TestDegenerateSaturationBand:
    def test_few_distinct_errors_keep_a_significant_slope(self):
        # ε takes only two values at a 99.5/0.5 split, so the 1st *and*
        # 99th error percentiles both land on the common value and the
        # saturation band collapses to the single point [0, 0]. A
        # genuinely sloped fit must widen to the observed range instead
        # of being clipped flat to zero everywhere.
        y = np.linspace(-400.0, 400.0, 2000)
        eps = np.where(y > 396.0, -80.0, 0.0)  # strongly y-dependent
        assert np.percentile(eps, 1.0) == np.percentile(eps, 99.0) == 0.0
        m = fit_error_model(y, eps, slope_significance=0.25)
        assert not m.is_constant
        assert m.lower == -80.0 and m.upper == 0.0
        # The model still varies with y inside the widened band.
        assert m(np.array([400.0])) < m(np.array([-400.0]))

    def test_single_valued_error_still_collapses_to_constant(self, rng):
        y = rng.uniform(-100.0, 100.0, 512)
        eps = np.full(512, -3.0)
        m = fit_error_model(y, eps)
        assert m.is_constant and m.c == -3.0
