"""Closed-form error models: distributions, exact statistics, estimator seam.

The two load-bearing guarantees (ISSUE 10 / ``docs/PERFORMANCE.md``):

1. the analytic model agrees with the Monte-Carlo fit within tolerance on
   every registry multiplier — it is a drop-in for Algorithm 1, sweeps and
   GE training, not an approximation of one;
2. ``method="auto"`` never fails: whenever the analytic engine refuses
   (:class:`AnalyticModelError`), the estimator falls back to the
   Monte-Carlo ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.approx import ExactMultiplier, available_multipliers, get_multiplier
from repro.errors import ConfigError, MultiplierError, QuantizationError
from repro.ge import (
    AnalyticModelError,
    OperandDistribution,
    analytic_error_model,
    analytic_error_stats,
    cross_validate,
    estimate_error_model,
    montecarlo_error_model,
    prefilter_multipliers,
    rank_multipliers,
)
from repro.ge.montecarlo import _sample_codes
from repro.quant.observer import MinMaxObserver, MSEObserver
from repro.quant.quantizer import qrange
from repro.utils.rng import new_rng

pytestmark = pytest.mark.analytic


class TestOperandDistribution:
    def test_uniform_support_and_mass(self):
        dist = OperandDistribution.uniform(4)
        lo, hi = qrange(4)
        np.testing.assert_array_equal(dist.values, np.arange(lo, hi + 1))
        assert dist.pmf.sum() == pytest.approx(1.0)
        assert np.ptp(dist.pmf) == 0.0

    def test_clipped_normal_matches_profiler_draws(self):
        """The prior is the *exact* pmf of ``_sample_codes`` draws."""
        dist = OperandDistribution.clipped_normal(4, sigma_fraction=0.35)
        rng = new_rng(0)
        codes = _sample_codes(rng, (400_000,), bits=4, sigma_fraction=0.35)
        empirical = OperandDistribution.from_samples(codes, bits=4)
        # Total-variation distance shrinks as 1/sqrt(N); 400k draws over
        # 15 bins put it well under 1%.
        tv = 0.5 * np.abs(dist.pmf - empirical.pmf).sum()
        assert tv < 0.01

    def test_from_histogram_round_trips_observer_layout(self):
        counts = np.zeros(15)
        counts[7] = 3.0  # code 0
        counts[14] = 1.0  # code +7
        dist = OperandDistribution.from_histogram(counts, bits=4)
        assert dist.pmf[dist.values == 0] == pytest.approx(0.75)
        assert dist.pmf[dist.values == 7] == pytest.approx(0.25)

    def test_from_histogram_rejects_wrong_bin_count(self):
        with pytest.raises(AnalyticModelError):
            OperandDistribution.from_histogram(np.ones(10), bits=4)

    def test_degenerate_inputs_raise(self):
        with pytest.raises(AnalyticModelError):
            OperandDistribution(np.array([0, 2]), np.array([0.5, 0.5]))  # gap
        with pytest.raises(AnalyticModelError):
            OperandDistribution(np.array([0, 1]), np.array([0.0, 0.0]))  # no mass
        with pytest.raises(AnalyticModelError):
            OperandDistribution(np.array([0, 1]), np.array([-0.1, 1.1]))
        with pytest.raises(AnalyticModelError):
            OperandDistribution.from_samples(np.array([], dtype=np.int64), bits=4)
        with pytest.raises(AnalyticModelError):
            OperandDistribution.from_samples(np.array([99]), bits=4)


class TestExactStatistics:
    def test_exact_multiplier_has_zero_error(self):
        stats = analytic_error_stats(ExactMultiplier(), reduce_dim=8)
        assert stats.eps_mean == 0.0
        assert stats.eps_var == 0.0
        assert stats.normalized_error() == 0.0
        model = analytic_error_model(ExactMultiplier(), reduce_dim=8)
        assert model.is_constant and model.c == 0.0

    def test_moments_match_sampled_gemm(self):
        """E[ε], Var[ε] and Cov[ε,y] against a large Monte-Carlo draw."""
        from repro.ge import profile_multiplier_error

        stats = analytic_error_stats(get_multiplier("truncated4"))
        profile = profile_multiplier_error(
            get_multiplier("truncated4"), num_simulations=200, rng=0
        )
        eps = profile.eps.astype(np.float64)
        y = profile.y.astype(np.float64)
        n = eps.size  # 200 sims x 64 x 16 samples: ~1% standard error
        assert stats.eps_mean == pytest.approx(eps.mean(), abs=4 * eps.std() / np.sqrt(n))
        assert stats.eps_var == pytest.approx(eps.var(), rel=0.05)
        assert stats.y_var == pytest.approx(y.var(), rel=0.05)
        assert stats.cov == pytest.approx(float(np.cov(eps, y)[0, 1]), rel=0.05)

    def test_windowed_power_matches_direct_convolution(self):
        """The Chernoff-windowed FFT equals naive repeated convolution."""
        stats = analytic_error_stats(get_multiplier("truncated3"), reduce_dim=6)
        direct = stats.d0
        for _ in range(stats.reduce_dim - 1):
            direct = np.convolve(direct, stats.d0)
        full = np.zeros(direct.size)
        offset = stats.eps_values[0] - stats.reduce_dim * stats.d_lo
        full[offset : offset + stats.eps_pmf.size] += stats.eps_pmf
        np.testing.assert_allclose(full, direct, atol=1e-9)

    def test_pmf_means_match_moment_fields(self):
        stats = analytic_error_stats(get_multiplier("truncated4"))
        assert float(stats.eps_pmf @ stats.eps_values) == pytest.approx(
            stats.eps_mean, abs=1e-6
        )
        assert float(stats.y_pmf @ stats.y_values) == pytest.approx(
            stats.y_mean, abs=1e-6
        )

    def test_conditional_satisfies_total_expectation(self):
        """E[E[ε|y]] over the exact y pmf recovers E[ε]."""
        stats = analytic_error_stats(get_multiplier("truncated4"))
        cond = stats._conditional
        mask = np.isfinite(cond)
        recovered = float(stats.y_pmf[mask] @ cond[mask])
        assert recovered == pytest.approx(stats.eps_mean, abs=1e-4)

    def test_conditional_slope_matches_model_slope(self):
        """The P(y)-weighted regression of E[ε|y] on y has slope Cov/Var
        exactly — the population identity the fitted k comes from."""
        stats = analytic_error_stats(get_multiplier("truncated4"))
        y, cond = stats.conditional_error(min_mass=0.0)
        weights = stats.y_pmf[np.isin(stats.y_values, y)]
        finite = np.isfinite(cond)
        slope = np.polyfit(y[finite], cond[finite], deg=1, w=np.sqrt(weights[finite]))[0]
        assert slope == pytest.approx(stats.cov / stats.y_var, rel=1e-3)

    def test_out_of_domain_codes_raise(self):
        with pytest.raises(AnalyticModelError):
            analytic_error_stats(
                get_multiplier("truncated4"),
                act_dist=OperandDistribution.uniform(10),
            )

    def test_bad_reduce_dim_raises(self):
        with pytest.raises(AnalyticModelError):
            analytic_error_stats(get_multiplier("truncated4"), reduce_dim=0)


class TestCrossValidation:
    def test_every_registry_multiplier_agrees(self):
        """The acceptance harness: analytic vs MC on the whole registry."""
        for name in available_multipliers():
            validation = cross_validate(get_multiplier(name), rng=0)
            assert validation.agrees(0.25), (
                f"{name}: analytic and Monte-Carlo models disagree by "
                f"{validation.normalized_disagreement:.3f}·std(ε)"
            )

    def test_truncated_slope_sign_and_ste_degeneration(self):
        model = analytic_error_model(get_multiplier("truncated4"))
        assert model.k < 0  # Fig. 2: truncation biases errors downward with |y|
        ste = analytic_error_model(get_multiplier("evoapprox29"))
        assert ste.is_constant  # unbiased errors degenerate GE to the STE


class TestEstimatorSeam:
    def test_explicit_methods_dispatch(self):
        mult = get_multiplier("truncated3")
        analytic = estimate_error_model(mult, method="analytic")
        assert analytic == analytic_error_model(mult)
        mc = estimate_error_model(mult, method="montecarlo", rng=0)
        assert mc == montecarlo_error_model(mult, rng=0)

    def test_method_resolves_through_config(self):
        mult = get_multiplier("truncated3")
        with config.config_scope(error_model_method="montecarlo"):
            scoped = estimate_error_model(mult, rng=0)
        assert scoped == montecarlo_error_model(mult, rng=0)

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigError):
            estimate_error_model(get_multiplier("truncated3"), method="oracle")

    def test_auto_falls_back_to_montecarlo(self):
        """Out-of-domain operand histograms refuse analytically; auto
        silently delivers the Monte-Carlo ground truth instead."""
        mult = get_multiplier("truncated3")
        bad = OperandDistribution.uniform(10)
        with pytest.raises(AnalyticModelError):
            estimate_error_model(mult, method="analytic", act_dist=bad)
        fallback = estimate_error_model(mult, method="auto", act_dist=bad, rng=0)
        assert fallback == montecarlo_error_model(mult, rng=0)

    def test_custom_distribution_changes_the_model(self):
        mult = get_multiplier("truncated4")
        prior = estimate_error_model(mult, method="analytic")
        uniform = estimate_error_model(
            mult, method="analytic", act_dist=OperandDistribution.uniform(8)
        )
        assert prior != uniform


class TestZoo:
    def test_exact_ranks_first_with_zero_score(self):
        entries = rank_multipliers()
        assert entries[0].name == "exact"
        assert entries[0].score == 0.0
        assert [e.rank for e in entries] == list(range(1, len(entries) + 1))
        assert all(a.score <= b.score for a, b in zip(entries, entries[1:]))
        assert {e.name for e in entries} == set(available_multipliers())

    def test_unknown_name_raises(self):
        with pytest.raises(MultiplierError):
            rank_multipliers(["nosuchmult"])

    def test_prefilter_keeps_best_in_input_order(self):
        names = ["truncated5", "exact", "truncated1"]
        kept = prefilter_multipliers(names, keep=2)
        assert kept == ["exact", "truncated1"]  # input order, worst dropped

    def test_prefilter_passes_unresolvable_names_through(self):
        kept = prefilter_multipliers(["nosuchmult", "exact", "truncated5"], keep=1)
        assert kept == ["nosuchmult", "exact"]

    def test_prefilter_identity_when_keep_covers_all(self):
        names = ["truncated3", "truncated4"]
        assert prefilter_multipliers(names, keep=5) == names

    def test_prefilter_rejects_nonpositive_keep(self):
        with pytest.raises(MultiplierError):
            prefilter_multipliers(["exact"], keep=0)


class TestObserverHistograms:
    def test_mse_observer_histogram_feeds_analytic_model(self):
        rng = new_rng(0)
        observer = MSEObserver(bits=8)
        observer.observe(rng.normal(scale=0.4, size=4096).astype(np.float32))
        counts = observer.code_histogram()
        dist = OperandDistribution.from_histogram(counts, bits=8)
        assert counts.sum() == 4096
        model = estimate_error_model(
            get_multiplier("truncated4"), method="analytic", act_dist=dist
        )
        assert np.isfinite(model.c)

    def test_minmax_observer_cannot_export(self):
        observer = MinMaxObserver(bits=8)
        observer.observe(np.ones(4))
        with pytest.raises(QuantizationError):
            observer.code_histogram()
