"""Unified runtime configuration: precedence, scoping, validation."""

from __future__ import annotations

import threading

import pytest

from repro import config
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_config_state():
    """Each test starts and ends with empty configure()/CLI tiers."""
    previous_configured = config.configure(
        **{name: None for name in config.knob_names()}
    )
    previous_cli = config.set_cli_overrides(None)
    yield
    config.configure(**{name: None for name in config.knob_names()})
    config.configure(**{k: v for k, v in previous_configured.items() if v is not None})
    config.set_cli_overrides(previous_cli)


class TestPrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_MAX_BATCH", raising=False)
        assert config.resolve("serve_max_batch") == 32

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "8")
        assert config.resolve("serve_max_batch") == 8

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "8")
        config.set_cli_overrides({"serve_max_batch": 16})
        assert config.resolve("serve_max_batch") == 16

    def test_configure_beats_cli(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "8")
        config.set_cli_overrides({"serve_max_batch": 16})
        config.configure(serve_max_batch=24)
        assert config.resolve("serve_max_batch") == 24

    def test_scope_beats_configure(self):
        config.configure(serve_max_batch=24)
        with config.config_scope(serve_max_batch=48):
            assert config.resolve("serve_max_batch") == 48
        assert config.resolve("serve_max_batch") == 24

    def test_call_beats_scope(self):
        with config.config_scope(serve_max_batch=48):
            assert config.resolve("serve_max_batch", call=64) == 64

    def test_scopes_nest_innermost_wins(self):
        with config.config_scope(serve_max_batch=4):
            with config.config_scope(serve_max_batch=2):
                assert config.resolve("serve_max_batch") == 2
            assert config.resolve("serve_max_batch") == 4


class TestTiers:
    def test_configure_returns_previous_and_none_clears(self):
        previous = config.configure(serve_replicas=3)
        assert previous == {"serve_replicas": None}
        assert config.configured("serve_replicas") == 3
        config.configure(serve_replicas=None)
        assert config.configured("serve_replicas") is None

    def test_cli_overrides_replace_wholesale_and_drop_none(self):
        config.set_cli_overrides({"serve_replicas": 2, "serve_max_batch": None})
        assert config.resolve("serve_replicas") == 2
        assert config.resolve("serve_max_batch") == 32  # None was dropped
        previous = config.set_cli_overrides({"cpus": 1})
        assert previous == {"serve_replicas": 2}
        assert config.resolve("serve_replicas") is None

    def test_scope_is_thread_local(self):
        seen = {}

        def other_thread():
            seen["value"] = config.resolve("serve_max_batch")

        with config.config_scope(serve_max_batch=2):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
            assert config.resolve("serve_max_batch") == 2
        assert seen["value"] == 32  # the other thread never saw the scope


class TestValidation:
    def test_unknown_knob_raises_everywhere(self):
        with pytest.raises(ConfigError, match="unknown config knob"):
            config.resolve("no_such_knob")
        with pytest.raises(ConfigError, match="unknown config knob"):
            config.configure(no_such_knob=1)
        with pytest.raises(ConfigError, match="unknown config knob"):
            config.set_cli_overrides({"no_such_knob": 1})
        with pytest.raises(ConfigError, match="unknown config knob"):
            config.config_scope(no_such_knob=1)

    def test_malformed_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "not-a-number")
        with pytest.raises(ConfigError, match="REPRO_SERVE_MAX_BATCH"):
            config.resolve("serve_max_batch")

    def test_flag_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        assert config.resolve("force_parallel") is True
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "0")
        assert config.resolve("force_parallel") is False


class TestIntrospection:
    def test_perf_env_vars_cover_all_knobs(self):
        env_vars = config.perf_env_vars()
        assert len(env_vars) == len(config.knob_names())
        assert all(v.startswith("REPRO_") for v in env_vars)

    def test_describe_reports_effective_values(self):
        config.configure(serve_max_batch=7)
        rows = {row["knob"]: row for row in config.describe()}
        assert rows["serve_max_batch"]["effective"] == 7
        assert rows["serve_max_batch"]["env"] == "REPRO_SERVE_MAX_BATCH"

    def test_describe_survives_malformed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "banana")
        rows = {row["knob"]: row for row in config.describe()}
        assert "error" in str(rows["cpus"]["effective"])


class TestConsumersRouteThroughConfig:
    def test_cpu_parallelism_honours_scope(self):
        from repro.parallel import cpu_parallelism

        with config.config_scope(cpus=3):
            assert cpu_parallelism() == 3

    def test_force_parallel_honours_configure(self, monkeypatch):
        from repro.parallel import force_parallel

        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        assert force_parallel() is False
        config.configure(force_parallel=True)
        assert force_parallel() is True

    def test_gemm_backend_honours_scope(self):
        from repro.approx import backend as approx_backend

        with config.config_scope(gemm_backend="exact-blas"):
            assert approx_backend.default_backend().name == "exact-blas"
