"""Snapshot of the curated public API (:mod:`repro.api`).

Two contracts:

1. The supported surface — ``repro.api.PUBLIC_API`` — matches what
   ``import repro`` actually re-exports, name for name. Adding a name
   means updating the snapshot here (a reviewed, deliberate act);
   removing or renaming one fails this test and is a breaking change.
2. Runtime knobs resolve only through :mod:`repro.config`: no module
   under ``src/repro`` other than ``config.py`` reads ``REPRO_*``
   environment variables at runtime (:mod:`repro.obs.runmeta` may stamp
   their raw values into provenance records, nothing else).
"""

from __future__ import annotations

import re
from pathlib import Path

import repro
import repro.api

# The reviewed snapshot. Keep sorted.
EXPECTED_PUBLIC_API = (
    "Client",
    "Dataset",
    "DatasetProtocol",
    "Multiplier",
    "PlanCache",
    "ServeConfig",
    "Server",
    "TrainConfig",
    "approximation_stage",
    "config_scope",
    "configure",
    "create_model",
    "evaluate_accuracy",
    "get_multiplier",
    "make_synthetic_cifar",
    "quantization_stage",
    "run_algorithm1",
)


class TestPublicApiSnapshot:
    def test_snapshot_matches_declared_api(self):
        assert tuple(sorted(repro.api.PUBLIC_API)) == EXPECTED_PUBLIC_API

    def test_snapshot_matches_lazy_exports(self):
        assert tuple(sorted(repro._LAZY_EXPORTS)) == EXPECTED_PUBLIC_API

    def test_every_name_resolves_to_the_real_object(self):
        import importlib

        for name in EXPECTED_PUBLIC_API:
            module_name, attr = repro._LAZY_EXPORTS[name]
            assert getattr(repro, name) is getattr(
                importlib.import_module(module_name), attr
            )

    def test_dir_lists_public_names(self):
        listing = dir(repro)
        for name in EXPECTED_PUBLIC_API:
            assert name in listing


class TestKnobReadContainment:
    def test_runtime_env_reads_live_only_in_config(self):
        src = Path(repro.__file__).parent
        pattern = re.compile(r"os\.environ(?:\.get)?\(\s*[\"']REPRO_|os\.environ\[[\"']REPRO_")
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.name == "config.py" and path.parent == src:
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path.relative_to(src)))
        assert not offenders, (
            "REPRO_* environment reads outside repro.config — route them "
            f"through config.resolve(): {offenders}"
        )

    def test_every_knob_env_var_is_registered(self):
        from repro import config

        for name in config.knob_names():
            assert config.env_var(name).startswith("REPRO_")
