"""The formal dataset protocol and its reference implementation."""

from __future__ import annotations

import numpy as np

from repro.data import Dataset, DatasetProtocol, make_synthetic_cifar


class TestDatasetProtocol:
    def test_synthetic_dataset_satisfies_protocol(self):
        ds = make_synthetic_cifar(num_train=20, num_test=10, image_size=8)
        assert isinstance(ds, DatasetProtocol)

    def test_io_shape_matches_arrays(self):
        ds = make_synthetic_cifar(num_train=20, num_test=10, image_size=8)
        input_shape, num_classes = ds.io_shape
        assert input_shape == (3, 8, 8)
        assert num_classes == 10

    def test_test_batches_are_deterministic_and_ordered(self):
        ds = make_synthetic_cifar(num_train=20, num_test=10, image_size=8)
        xs = np.concatenate([x for x, _ in ds.test_batches(4)])
        assert np.array_equal(xs, ds.test_x)
        again = np.concatenate([x for x, _ in ds.test_batches(4)])
        assert np.array_equal(xs, again)

    def test_train_batches_shuffle_and_cover(self):
        ds = make_synthetic_cifar(num_train=24, num_test=10, image_size=8)
        rng = np.random.default_rng(0)
        batches = list(ds.train_batches(8, rng=rng))
        assert sum(len(y) for _, y in batches) == 24

    def test_duck_typed_implementation_passes(self):
        class Rows:
            """Minimal protocol implementation over flat vectors."""

            @property
            def io_shape(self):
                return (4,), 2

            def train_batches(self, batch_size, *, shuffle=True, rng=None,
                              drop_last=False):
                yield np.zeros((batch_size, 4), np.float32), np.zeros(batch_size, np.int64)

            def test_batches(self, batch_size):
                yield np.zeros((batch_size, 4), np.float32), np.zeros(batch_size, np.int64)

        assert isinstance(Rows(), DatasetProtocol)
        assert not isinstance(object(), DatasetProtocol)

    def test_dataset_is_a_dataclass_still(self):
        ds = make_synthetic_cifar(num_train=20, num_test=10, image_size=8)
        assert isinstance(ds, Dataset)
