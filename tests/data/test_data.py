"""Synthetic dataset generation, loaders and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, augment_batch, iterate_batches, make_synthetic_cifar
from repro.errors import DataError


class TestSyntheticCifar:
    def test_shapes(self):
        ds = make_synthetic_cifar(num_train=100, num_test=40, image_size=16, seed=0)
        assert ds.train_x.shape == (100, 3, 16, 16)
        assert ds.test_x.shape == (40, 3, 16, 16)
        assert ds.train_y.shape == (100,)
        assert ds.image_shape == (3, 16, 16)

    def test_default_matches_cifar_geometry(self):
        ds = make_synthetic_cifar(num_train=20, num_test=20, seed=0)
        assert ds.train_x.shape[1:] == (3, 32, 32)
        assert ds.num_classes == 10

    def test_deterministic(self):
        a = make_synthetic_cifar(num_train=30, num_test=10, image_size=8, seed=5)
        b = make_synthetic_cifar(num_train=30, num_test=10, image_size=8, seed=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_different_seeds_differ(self):
        a = make_synthetic_cifar(num_train=30, num_test=10, image_size=8, seed=1)
        b = make_synthetic_cifar(num_train=30, num_test=10, image_size=8, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_classes_balanced(self):
        ds = make_synthetic_cifar(num_train=200, num_test=50, image_size=8, seed=0)
        counts = np.bincount(ds.train_y, minlength=10)
        assert counts.min() >= 19 and counts.max() <= 21

    def test_normalised_with_train_stats(self):
        ds = make_synthetic_cifar(num_train=500, num_test=100, image_size=8, seed=0)
        np.testing.assert_allclose(ds.train_x.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(ds.train_x.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_classes_are_distinguishable(self):
        """A nearest-class-mean classifier must beat random guessing by a
        wide margin — the task carries real class signal."""
        ds = make_synthetic_cifar(num_train=400, num_test=200, image_size=16, seed=0)
        means = np.stack([ds.train_x[ds.train_y == k].mean(axis=0) for k in range(10)])
        flat_means = means.reshape(10, -1)
        flat_test = ds.test_x.reshape(len(ds.test_x), -1)
        d2 = ((flat_test[:, None, :] - flat_means[None]) ** 2).sum(axis=2)
        acc = (d2.argmin(axis=1) == ds.test_y).mean()
        assert acc > 0.5

    def test_validation(self):
        with pytest.raises(DataError):
            make_synthetic_cifar(num_train=5, num_test=50)
        with pytest.raises(DataError):
            make_synthetic_cifar(num_classes=1)
        with pytest.raises(DataError):
            make_synthetic_cifar(num_classes=99)

    def test_dataset_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((3, 1)), np.zeros(2), np.zeros((1, 1)), np.zeros(1), 2)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 10), st.integers(8, 24))
    def test_label_range_property(self, num_classes, image_size):
        ds = make_synthetic_cifar(
            num_train=num_classes * 3,
            num_test=num_classes * 2,
            image_size=image_size,
            num_classes=num_classes,
            seed=0,
        )
        assert ds.train_y.min() >= 0 and ds.train_y.max() < num_classes
        assert np.isfinite(ds.train_x).all()


class TestIterateBatches:
    def test_covers_all_samples(self, rng):
        x = np.arange(25, dtype=np.float32).reshape(25, 1)
        y = np.arange(25)
        seen = []
        for xb, yb in iterate_batches(x, y, 8, shuffle=False):
            seen.extend(yb.tolist())
        assert seen == list(range(25))

    def test_shuffle_permutes(self):
        x = np.arange(50, dtype=np.float32).reshape(50, 1)
        y = np.arange(50)
        order = [yb for _, yb in iterate_batches(x, y, 50, shuffle=True, rng=0)][0]
        assert not np.array_equal(order, np.arange(50))
        assert sorted(order.tolist()) == list(range(50))

    def test_labels_stay_aligned(self):
        x = np.arange(30, dtype=np.float32).reshape(30, 1)
        y = np.arange(30)
        for xb, yb in iterate_batches(x, y, 7, shuffle=True, rng=1):
            np.testing.assert_array_equal(xb[:, 0].astype(int), yb)

    def test_drop_last(self):
        x = np.zeros((10, 1), dtype=np.float32)
        y = np.zeros(10)
        batches = list(iterate_batches(x, y, 4, shuffle=False, drop_last=True))
        assert len(batches) == 2

    def test_validation(self):
        with pytest.raises(DataError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(2), 2))
        with pytest.raises(DataError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(3), 0))


class TestAugmentation:
    def test_preserves_shape_and_input(self, rng):
        x = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
        original = x.copy()
        out = augment_batch(x, rng=0)
        assert out.shape == x.shape
        np.testing.assert_array_equal(x, original)  # input untouched

    def test_flip_only(self, rng):
        x = rng.normal(size=(50, 1, 4, 4)).astype(np.float32)
        out = augment_batch(x, rng=0, flip_prob=1.0, max_shift=0)
        np.testing.assert_allclose(out, x[:, :, :, ::-1])

    def test_no_augmentation_is_identity(self, rng):
        x = rng.normal(size=(4, 1, 4, 4)).astype(np.float32)
        out = augment_batch(x, rng=0, flip_prob=0.0, max_shift=0)
        np.testing.assert_array_equal(out, x)
