"""Top-level package API: lazy exports and error hierarchy."""

import pytest

import repro
from repro.errors import (
    AutogradError,
    ConfigError,
    DataError,
    MultiplierError,
    QuantizationError,
    ReproError,
    ShapeError,
)


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        [
            "make_synthetic_cifar",
            "create_model",
            "get_multiplier",
            "quantization_stage",
            "approximation_stage",
            "run_algorithm1",
            "TrainConfig",
            "evaluate_accuracy",
        ],
    )
    def test_lazy_attribute_resolves(self, name):
        assert callable(getattr(repro, name)) or name == "TrainConfig"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_lists_lazy_names(self):
        assert "run_algorithm1" in dir(repro)

    def test_lazy_export_is_the_real_object(self):
        from repro.pipeline import run_algorithm1

        assert repro.run_algorithm1 is run_algorithm1


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [AutogradError, ConfigError, DataError, MultiplierError, QuantizationError, ShapeError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)
