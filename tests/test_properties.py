"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.approx import approx_matmul, exact_int_matmul, get_multiplier
from repro.autograd import Tensor
from repro.ge import PiecewiseLinearErrorModel
from repro.quant import fake_quantize_np, qrange, quantize


small_floats = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


class TestAutogradLinearity:
    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(np.float64, (3, 4), elements=small_floats),
        st.floats(-3.0, 3.0, allow_nan=False),
    )
    def test_gradient_scales_linearly_with_upstream(self, data, scale):
        """backward(s·g) == s · backward(g) for any op chain."""
        a = Tensor(data, requires_grad=True)
        out = (a * a).sum(axis=1)
        out.backward(np.full(3, 1.0))
        base = a.grad.copy()
        a.zero_grad()
        out2 = (a * a).sum(axis=1)
        out2.backward(np.full(3, scale))
        np.testing.assert_allclose(a.grad, scale * base, rtol=1e-9, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, (2, 3), elements=small_floats))
    def test_sum_gradient_is_ones(self, data):
        a = Tensor(data, requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(data))


class TestQuantizerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=small_floats),
        st.integers(2, 8),
        st.sampled_from([0.0625, 0.125, 0.25, 0.5, 1.0]),
    )
    def test_codes_within_symmetric_range(self, x, bits, step):
        lo, hi = qrange(bits)
        codes = quantize(x, step, bits)
        assert codes.min() >= lo and codes.max() <= hi

    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(1, 30), elements=small_floats),
        st.sampled_from([0.125, 0.25, 0.5]),
    )
    def test_fake_quant_monotone(self, x, step):
        """Quantization preserves ordering (monotone non-decreasing map)."""
        order = np.argsort(x)
        q = fake_quantize_np(x, step, 8)
        assert (np.diff(q[order]) >= -1e-9).all()


class TestGemmInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from(["truncated4", "evoapprox228", "mitchell"]))
    def test_row_additivity(self, seed, name):
        """GEMM over stacked inputs equals stacked GEMMs."""
        rng = np.random.default_rng(seed)
        mult = get_multiplier(name)
        a1 = rng.integers(-127, 128, size=(2, 6), dtype=np.int32)
        a2 = rng.integers(-127, 128, size=(3, 6), dtype=np.int32)
        b = rng.integers(-7, 8, size=(6, 4), dtype=np.int32)
        stacked = approx_matmul(np.vstack([a1, a2]), b, mult)
        np.testing.assert_array_equal(
            stacked, np.vstack([approx_matmul(a1, b, mult), approx_matmul(a2, b, mult)])
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_zero_inputs_give_zero(self, seed):
        rng = np.random.default_rng(seed)
        mult = get_multiplier("truncated5")
        b = rng.integers(-7, 8, size=(5, 3), dtype=np.int32)
        out = approx_matmul(np.zeros((2, 5), dtype=np.int32), b, mult)
        np.testing.assert_array_equal(out, np.zeros((2, 3), dtype=np.int64))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_exact_matmul_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-127, 128, size=(4, 7), dtype=np.int64)
        b = rng.integers(-7, 8, size=(7, 3), dtype=np.int64)
        np.testing.assert_array_equal(exact_int_matmul(a, b), a @ b)


class TestErrorModelInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(-1.0, 1.0, allow_nan=False),
        st.floats(-10.0, 10.0, allow_nan=False),
        st.floats(0.1, 100.0, allow_nan=False),
    )
    def test_model_bounded_by_saturations(self, k, c, half_width):
        model = PiecewiseLinearErrorModel(k=k, c=c, lower=-half_width, upper=half_width)
        y = np.linspace(-1e6, 1e6, 201)
        vals = model(y)
        assert (vals >= -half_width - 1e-9).all()
        assert (vals <= half_width + 1e-9).all()

    @settings(max_examples=30, deadline=None)
    @given(st.floats(-0.99, 0.99, allow_nan=False))
    def test_gradient_scale_positive_for_small_slopes(self, k):
        """|k| < 1 keeps (1 + K) positive — gradients never flip sign."""
        model = PiecewiseLinearErrorModel(k=k, c=0.0, lower=-1e9, upper=1e9)
        scales = model.gradient_scale(np.linspace(-1000, 1000, 101))
        assert (scales > 0).all()
