"""Size-based JSONL log rotation: segments, manifest, transparent reads."""

import io
import json

import pytest

from repro.errors import ReproError
from repro.obs import events as obs_events

pytestmark = pytest.mark.obs


def _fill(path, n, max_bytes=1024, payload_bytes=64):
    """Emit ``n`` records through a rotating sink; returns the records."""
    log = obs_events.EventLog(run_id="rotate")
    log.add_sink(obs_events.JsonlSink(path, max_bytes=max_bytes))
    records = []
    for i in range(n):
        records.append(log.emit("tick", i=i, pad="x" * payload_bytes))
    log.close()
    return records


class TestRotation:
    def test_live_file_stays_under_cap(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _fill(path, 40)
        assert path.stat().st_size <= 1024
        segments = obs_events.segment_paths(path)
        assert len(segments) > 1
        for segment in segments[:-1]:
            assert segment.stat().st_size <= 1024

    def test_segment_names_and_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _fill(path, 40)
        manifest = obs_events.manifest_path(path)
        assert manifest == tmp_path / "run.jsonl.manifest.json"
        payload = json.loads(manifest.read_text())
        assert payload["version"] == 1
        assert payload["segments"] == [
            f"run.{i + 1:04d}.jsonl" for i in range(len(payload["segments"]))
        ]
        for name in payload["segments"]:
            assert (tmp_path / name).exists()

    def test_read_events_reassembles_in_order(self, tmp_path):
        path = tmp_path / "run.jsonl"
        written = _fill(path, 60)
        back = obs_events.read_events(path)
        assert len(back) == 60
        assert [r["i"] for r in back] == [r["i"] for r in written]
        assert [r["seq"] for r in back] == list(range(60))

    def test_unrotated_log_reads_unchanged(self, tmp_path):
        path = tmp_path / "run.jsonl"
        written = _fill(path, 3, max_bytes=None)
        assert not obs_events.manifest_path(path).exists()
        assert obs_events.segment_paths(path) == [path]
        assert len(obs_events.read_events(path)) == len(written)

    def test_missing_segment_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _fill(path, 40)
        victim = obs_events.segment_paths(path)[0]
        victim.unlink()
        with pytest.raises(ReproError, match="segment not found"):
            obs_events.read_events(path)

    def test_invalid_manifest_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _fill(path, 40)
        obs_events.manifest_path(path).write_text('{"oops": true}')
        with pytest.raises(ReproError, match="invalid rotation manifest"):
            obs_events.read_events(path)

    def test_tiny_cap_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="max_bytes"):
            obs_events.JsonlSink(tmp_path / "run.jsonl", max_bytes=512)

    def test_stream_target_cannot_rotate(self):
        with pytest.raises(ReproError, match="path target"):
            obs_events.JsonlSink(io.StringIO(), max_bytes=4096)

    def test_logging_to_forwards_max_bytes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs_events.logging_to(path, max_bytes=1024) as log:
            for i in range(40):
                log.emit("tick", i=i, pad="x" * 64)
        assert obs_events.manifest_path(path).exists()
        assert len(obs_events.read_events(path)) == 40
