"""Profiling registry: timer nesting/aggregation, counters, saturation."""

import time

import pytest

from repro.obs import profiling as prof

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_registry():
    prof.reset_profiling()
    prof.disable_profiling()
    yield
    prof.reset_profiling()
    prof.disable_profiling()


class TestTimer:
    def test_disabled_timer_records_nothing(self):
        with prof.timer("idle"):
            pass
        assert prof.profile_report().timers == []

    def test_aggregation_by_name(self):
        prof.enable_profiling()
        for _ in range(3):
            with prof.timer("work", nbytes=100):
                pass
        report = prof.profile_report()
        stat = report.timer("work")
        assert stat.calls == 3
        assert stat.bytes == 300
        assert stat.total >= 0.0

    def test_nesting_parent_includes_child(self):
        prof.enable_profiling()
        with prof.timer("outer"):
            with prof.timer("inner"):
                time.sleep(0.02)
        report = prof.profile_report()
        outer, inner = report.timer("outer"), report.timer("inner")
        assert inner.total >= 0.02
        assert outer.total >= inner.total
        # self time excludes the directly nested child
        assert outer.self_time <= outer.total - inner.total + 1e-3

    def test_sibling_children_both_subtracted(self):
        prof.enable_profiling()
        with prof.timer("parent"):
            with prof.timer("child"):
                time.sleep(0.01)
            with prof.timer("child"):
                time.sleep(0.01)
        report = prof.profile_report()
        child = report.timer("child")
        parent = report.timer("parent")
        assert child.calls == 2
        assert parent.self_time <= parent.total - child.total + 1e-3

    def test_enable_mid_block_does_not_crash(self):
        t = prof.timer("late")
        with t:
            prof.enable_profiling()
        # the block started disabled, so nothing was recorded
        assert prof.profile_report().timer("late") is None


class TestCounters:
    def test_count_accumulates(self):
        prof.enable_profiling()
        prof.count("items", n=5, nbytes=10)
        prof.count("items", n=2, nbytes=20)
        stat = prof.profile_report().counter("items")
        assert stat.calls == 7
        assert stat.bytes == 30

    def test_disabled_count_is_noop(self):
        prof.count("items", n=5)
        assert prof.profile_report().counters == []

    def test_counter_saturates_instead_of_overflowing(self):
        prof.enable_profiling()
        prof.count("big", n=prof.COUNTER_MAX - 1)
        prof.count("big", n=12345)
        stat = prof.profile_report().counter("big")
        assert stat.calls == prof.COUNTER_MAX  # clamped to int64 max
        prof.count("big", nbytes=prof.COUNTER_MAX + 10**9)
        assert prof.profile_report().counter("big").bytes == prof.COUNTER_MAX

    def test_timer_call_saturation(self):
        stat = prof.TimerStat("x", calls=prof.COUNTER_MAX)
        stat.add(0.0, nbytes=prof.COUNTER_MAX, child_time=0.0)
        assert stat.calls == prof.COUNTER_MAX
        assert stat.bytes == prof.COUNTER_MAX


class TestReport:
    def test_top_orders_by_total(self):
        prof.enable_profiling()
        with prof.timer("slow"):
            time.sleep(0.02)
        with prof.timer("fast"):
            pass
        top = prof.profile_report().top(2)
        assert [s.name for s in top] == ["slow", "fast"]

    def test_to_table_and_dict(self):
        prof.enable_profiling()
        with prof.timer("t1", nbytes=1_000_000):
            pass
        prof.count("c1", n=3)
        report = prof.profile_report()
        table = report.to_table()
        assert "t1" in table and "c1" in table
        payload = report.to_dict()
        assert payload["timers"][0]["name"] == "t1"
        assert payload["counters"][0]["calls"] == 3

    def test_profiled_context_resets_and_fills_report(self):
        prof.enable_profiling()
        with prof.timer("stale"):
            pass
        with prof.profiled() as report:
            with prof.timer("fresh"):
                pass
        assert report.timer("stale") is None
        assert report.timer("fresh").calls == 1
        # profiling was not previously enabled inside this fixture-reset state?
        # it was, so it must still be enabled afterwards
        assert prof.enabled

    def test_profiled_restores_disabled_state(self):
        prof.disable_profiling()
        with prof.profiled() as report:
            with prof.timer("x"):
                pass
        assert not prof.enabled
        assert report.timer("x").calls == 1


class TestHotPathsAreInstrumented:
    def test_approx_matmul_hits_timers_and_counters(self):
        import numpy as np

        from repro.approx import get_multiplier
        from repro.approx.gemm import approx_matmul

        rng = np.random.default_rng(0)
        a = rng.integers(-100, 100, size=(8, 12)).astype(np.int32)
        b = rng.integers(-7, 8, size=(12, 4)).astype(np.int32)
        with prof.profiled() as report:
            approx_matmul(a, b, get_multiplier("truncated4"))
        assert report.timer("approx.lut_gather").calls == 1
        assert report.timer("approx.matmul_blas").calls == 1
        assert report.counter("approx.lut_gathered_values").calls >= 1

    def test_im2col_and_fake_quant_hit_timers(self):
        import numpy as np

        from repro.autograd.im2col import im2col
        from repro.quant.fake_quant import fake_quantize

        with prof.profiled() as report:
            im2col(np.zeros((1, 2, 6, 6), dtype=np.float32), (3, 3))
            fake_quantize(np.linspace(-1, 1, 16, dtype=np.float32), 0.1, 8)
        assert report.timer("autograd.im2col").calls == 1
        assert report.timer("quant.fake_quantize").calls == 1
        assert report.counter("quant.fake_quantized_elements").calls == 16

    def test_montecarlo_hits_timer(self):
        from repro.approx import get_multiplier
        from repro.ge.montecarlo import profile_multiplier_error

        with prof.profiled() as report:
            profile_multiplier_error(
                get_multiplier("truncated4"), num_simulations=2, gemm_rows=4,
                reduce_dim=6, out_dim=2,
            )
        assert report.timer("ge.montecarlo_profile").calls == 1
        assert report.counter("ge.montecarlo_simulations").calls == 2
        # nested exact/approx GEMM timers attribute into the MC profile
        assert report.timer("approx.exact_matmul").calls >= 2
