"""StatsHook: hand-computable activation stats, ε(y) deltas, grad norms."""

import math

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.approx.gemm import approx_matmul, exact_int_matmul
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.obs.stats import StatsHook, attach_stats_hooks, detach_stats_hooks
from repro.quant.qlayers import QuantLinear

pytestmark = pytest.mark.obs


class Doubler(Module):
    """Hand-computable layer: y = 2x."""

    def forward(self, x: Tensor) -> Tensor:
        return x * 2.0


class TestActivationStats:
    def test_hand_computed_values(self):
        layer = Doubler()
        hook = StatsHook(layer, name="double")
        x = np.array([[1.0, -2.0], [3.0, 0.0]], dtype=np.float32)
        layer(Tensor(x))
        stats = hook.snapshot()
        out = 2.0 * x
        assert stats.calls == 1
        assert stats.samples == 4
        assert stats.act_min == out.min()
        assert stats.act_max == out.max()
        assert stats.act_mean == pytest.approx(out.mean())
        assert stats.act_std == pytest.approx(out.std())
        hook.remove()

    def test_accumulates_across_forwards_and_resets(self):
        layer = Doubler()
        hook = StatsHook(layer, name="double")
        layer(Tensor(np.array([[1.0]], dtype=np.float32)))
        layer(Tensor(np.array([[5.0]], dtype=np.float32)))
        stats = hook.snapshot(reset=True)
        assert stats.calls == 2
        assert stats.samples == 2
        assert stats.act_min == 2.0 and stats.act_max == 10.0
        fresh = hook.snapshot()
        assert fresh.calls == 0 and fresh.samples == 0
        hook.remove()

    def test_removed_hook_stops_recording(self):
        layer = Doubler()
        hook = StatsHook(layer, name="double")
        hook.remove()
        layer(Tensor(np.array([[1.0]], dtype=np.float32)))
        assert hook.snapshot().calls == 0


def _calibrated_qlinear(weight: np.ndarray) -> QuantLinear:
    layer = QuantLinear(weight.shape[1], weight.shape[0], bias=False)
    layer.weight.data = weight.astype(np.float32)
    layer.act_step = 1.0
    layer.weight_step = 1.0
    return layer


class TestEpsilonStats:
    def test_matches_direct_gemm_difference(self):
        rng = np.random.default_rng(3)
        weight = rng.integers(-7, 8, size=(4, 10)).astype(np.float32)
        x = rng.integers(-100, 101, size=(6, 10)).astype(np.float32)
        layer = _calibrated_qlinear(weight)
        mult = get_multiplier("truncated4")
        layer.set_multiplier(mult)
        hook = StatsHook(layer, name="fc", track_error=True)
        layer.eval()
        layer(Tensor(x))
        stats = hook.snapshot()

        # Steps are 1.0, so the dequantized delta equals ε(y) = ỹ - y in
        # integer-code space, computable directly from the GEMM primitives.
        xq = x.astype(np.int32)
        wq = weight.astype(np.int32)
        eps = (approx_matmul(xq, wq.T, mult) - exact_int_matmul(xq, wq.T)).astype(np.float64)
        assert stats.eps_samples == eps.size
        assert stats.eps_mean == pytest.approx(eps.mean(), abs=1e-6)
        assert stats.eps_std == pytest.approx(eps.std(), abs=1e-6)
        assert stats.eps_absmax == pytest.approx(np.abs(eps).max(), abs=1e-6)
        # multiplier state restored after the exact re-run
        assert layer.multiplier is mult
        hook.remove()

    def test_no_eps_for_exact_execution(self):
        layer = _calibrated_qlinear(np.ones((2, 3), dtype=np.float32))
        hook = StatsHook(layer, name="fc")
        layer(Tensor(np.ones((1, 3), dtype=np.float32)))
        stats = hook.snapshot()
        assert stats.eps_samples == 0
        hook.remove()

    def test_track_error_false_skips_recompute(self):
        layer = _calibrated_qlinear(np.ones((2, 3), dtype=np.float32))
        layer.set_multiplier(get_multiplier("truncated4"))
        hook = StatsHook(layer, name="fc", track_error=False)
        layer(Tensor(np.full((1, 3), 5.0, dtype=np.float32)))
        stats = hook.snapshot()
        assert stats.eps_samples == 0
        assert stats.calls == 1
        hook.remove()


class TestGradNorms:
    def test_grad_norm_over_parameters(self):
        layer = Linear(3, 2, rng=0)
        hook = StatsHook(layer, name="fc")
        layer.weight.grad = np.full_like(layer.weight.data, 2.0)
        layer.bias.grad = np.zeros_like(layer.bias.data)
        expected = math.sqrt(float((layer.weight.grad**2).sum()))
        assert hook.observe_gradients() == pytest.approx(expected)
        assert hook.snapshot().grad_norm == pytest.approx(expected)
        hook.remove()

    def test_no_gradients_yields_none(self):
        layer = Linear(3, 2, rng=0)
        layer.zero_grad()
        hook = StatsHook(layer, name="fc")
        assert hook.observe_gradients() is None
        hook.remove()


class TestAttachHelpers:
    def test_attach_to_leaves_and_detach(self):
        from repro.models import simplecnn

        model = simplecnn(base_width=4, rng=0)
        hooks = attach_stats_hooks(model)
        assert hooks  # every leaf module got one
        assert all("." in name or name for name in hooks)
        x = np.zeros((1, 3, 12, 12), dtype=np.float32)
        model.eval()
        model(Tensor(x))
        snaps = [h.snapshot() for h in hooks.values()]
        assert any(s.calls for s in snaps)
        detach_stats_hooks(hooks)
        model(Tensor(x))
        assert all(h.snapshot().calls == 0 for h in hooks.values())

    def test_layer_type_filter(self):
        from repro.models import simplecnn
        from repro.nn.conv import Conv2d

        model = simplecnn(base_width=4, rng=0)
        hooks = attach_stats_hooks(model, layer_types=(Conv2d,))
        assert hooks
        assert all(isinstance(h.module, Conv2d) for h in hooks.values())
        detach_stats_hooks(hooks)

    def test_clone_model_drops_hooks(self):
        from repro.distill.teacher import clone_model
        from repro.models import simplecnn

        model = simplecnn(base_width=4, rng=0)
        hooks = attach_stats_hooks(model)
        clone = clone_model(model)
        assert all(not m._forward_hooks for m in clone.modules())
        # original still hooked
        assert any(m._forward_hooks for m in model.modules())
        detach_stats_hooks(hooks)


class TestForwardHookMechanism:
    def test_hook_can_replace_output(self):
        layer = Doubler()
        handle = layer.register_forward_hook(lambda mod, args, out: out * 3.0)
        out = layer(Tensor(np.array([[1.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(6.0)
        handle.remove()
        out = layer(Tensor(np.array([[1.0]], dtype=np.float32)))
        assert out.data[0, 0] == pytest.approx(2.0)

    def test_multiple_hooks_fire_in_order(self):
        layer = Doubler()
        seen = []
        h1 = layer.register_forward_hook(lambda m, a, o: seen.append("first"))
        h2 = layer.register_forward_hook(lambda m, a, o: seen.append("second"))
        layer(Tensor(np.ones((1, 1), dtype=np.float32)))
        assert seen == ["first", "second"]
        h1.remove()
        h2.remove()
