"""repro.obs.metrics: buckets, exact merge, quantile bounds, exporters."""

import json
import math

import numpy as np
import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as met

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_metrics():
    met.reset_metrics()
    yield
    met.disable_metrics()
    met.reset_metrics()


class TestBucketLayout:
    def test_underflow_bucket(self):
        for value in (0.0, -1.0, 2.0**met.MIN_EXP / 2, float("nan")):
            assert met.bucket_index(value) == 0

    def test_overflow_bucket(self):
        assert met.bucket_index(2.0**met.MAX_EXP) == met.NUM_BUCKETS - 1
        assert met.bucket_index(float("inf")) == met.NUM_BUCKETS - 1

    def test_value_falls_inside_its_bounds(self):
        rng = np.random.default_rng(0)
        for value in 10.0 ** rng.uniform(-8, 9, size=200):
            lo, hi = met.bucket_bounds(met.bucket_index(value))
            assert lo <= value < hi

    def test_bounds_ratio_matches_error_bound(self):
        lo, hi = met.bucket_bounds(met.bucket_index(1.0))
        # geometric midpoint of a bucket is within QUANTILE_REL_ERROR of
        # both edges: sqrt(hi/lo) == 1 + QUANTILE_REL_ERROR
        assert math.sqrt(hi / lo) == pytest.approx(1.0 + met.QUANTILE_REL_ERROR)


class TestSeriesKey:
    def test_round_trip(self):
        key = met._series_key("lat", {"layer": "conv1", "op": "gemm"})
        assert key == "lat{layer=conv1,op=gemm}"
        assert met.split_series_key(key) == ("lat", {"layer": "conv1", "op": "gemm"})

    def test_untagged(self):
        assert met._series_key("lat", {}) == "lat"
        assert met.split_series_key("lat") == ("lat", {})


class TestRegistry:
    def test_disabled_helpers_are_noops(self):
        met.inc("c")
        met.set_gauge("g", 1.0)
        met.observe("h", 1.0)
        snap = met.get_metrics().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_helpers_record(self):
        met.enable_metrics()
        met.inc("c", 2)
        met.inc("c")
        met.set_gauge("g", 1.5, layer="fc")
        met.observe("h", 0.25)
        snap = met.get_metrics().snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g{layer=fc}": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_histogram_exact_stats(self):
        hist = met.Histogram("h")
        for value in (0.5, 1.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(7.5)
        assert hist.mean == pytest.approx(7.5 / 4)
        assert hist.min == 0.5
        assert hist.max == 4.0

    def test_collecting_metrics_restores(self):
        assert not met.enabled
        with met.collecting_metrics() as registry:
            assert met.enabled
            met.observe("h", 1.0)
            assert registry.histogram("h").count == 1
        assert not met.enabled


class TestMerge:
    def test_merge_counters_add_gauges_overwrite(self):
        a, b = met.MetricsRegistry(), met.MetricsRegistry()
        a.inc("c", 2)
        a.set_gauge("g", 1.0)
        b.inc("c", 3)
        b.set_gauge("g", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 9.0

    def test_histogram_merge_is_exact(self):
        rng = np.random.default_rng(1)
        values = 10.0 ** rng.uniform(-4, 2, size=300)
        whole = met.Histogram("h")
        parts = [met.Histogram("h") for _ in range(3)]
        for i, value in enumerate(values):
            whole.observe(value)
            parts[i % 3].observe(value)
        merged = met.Histogram("h")
        for part in parts:
            merged.merge(part)
        assert merged.buckets() == whole.buckets()
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.min == whole.min and merged.max == whole.max

    def test_merge_rejects_foreign_layout(self):
        hist = met.Histogram("h")
        payload = met.Histogram("h").to_dict()
        payload["layout"] = {"subbuckets": 4, "min_exp": -10, "max_exp": 10}
        with pytest.raises(ValueError, match="incompatible bucket layout"):
            hist.merge(payload)

    def test_histogram_from_dict_round_trip(self):
        hist = met.Histogram("h")
        for value in (0.1, 0.2, 0.4):
            hist.observe(value)
        back = met.histogram_from_dict("h", hist.to_dict())
        assert back.buckets() == hist.buckets()
        assert back.quantile(0.5) == hist.quantile(0.5)


class TestQuantiles:
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_within_documented_bound_of_numpy(self, q):
        rng = np.random.default_rng(2)
        # lognormal latencies: the shape the streaming histogram targets
        samples = rng.lognormal(mean=-5.0, sigma=1.2, size=2000)
        hist = met.Histogram("h")
        for value in samples:
            hist.observe(value)
        exact = float(np.quantile(samples, q, method="inverted_cdf"))
        streamed = hist.quantile(q)
        assert abs(streamed - exact) / exact <= met.QUANTILE_REL_ERROR

    def test_empty_histogram_has_no_quantile(self):
        assert met.Histogram("h").quantile(0.5) is None

    def test_single_sample_is_exact(self):
        hist = met.Histogram("h")
        hist.observe(0.125)
        assert hist.quantile(0.5) == pytest.approx(0.125, rel=1e-12)

    def test_snapshot_quantiles_labels(self):
        hist = met.Histogram("h")
        for value in np.linspace(0.01, 1.0, 50):
            hist.observe(float(value))
        q = met.snapshot_quantiles(hist.to_dict())
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] <= q["p95"] <= q["p99"]


class TestEmitSnapshot:
    def test_emits_metrics_event(self):
        met.enable_metrics()
        met.inc("c")
        sink = obs_events.CollectingSink()
        log = obs_events.EventLog(run_id="synth")
        log.add_sink(sink)
        record = met.emit_snapshot(log, scope="epoch", epoch=3)
        assert record["type"] == obs_events.METRICS
        assert record["epoch"] == 3
        assert record["metrics"]["counters"] == {"c": 1}
        assert sink.records[-1] is record
        json.dumps(record)  # must stay JSONL-serializable

    def test_disabled_returns_none(self):
        assert met.emit_snapshot(obs_events.EventLog(run_id="synth")) is None


class TestPrometheus:
    def test_exposition_format(self):
        registry = met.MetricsRegistry()
        registry.inc("plan_cache.hit", 7)
        registry.set_gauge("eps_mean", 0.25, layer="conv1")
        for value in (0.1, 0.2, 0.4, 100.0):
            registry.observe("lat", value)
        text = met.to_prometheus(registry)
        assert "# TYPE repro_plan_cache_hit_total counter" in text
        assert "repro_plan_cache_hit_total 7" in text
        assert 'repro_eps_mean{layer="conv1"} 0.25' in text
        assert "# TYPE repro_lat histogram" in text
        assert "repro_lat_sum 100.7" in text
        assert "repro_lat_count 4" in text
        # exactly one +Inf bucket and it carries the full count
        inf_lines = [
            line for line in text.splitlines() if 'le="+Inf"' in line
        ]
        assert len(inf_lines) == 1
        assert inf_lines[0].endswith(" 4")

    def test_bucket_lines_are_cumulative(self):
        registry = met.MetricsRegistry()
        for value in (0.1, 0.1, 0.4):
            registry.observe("lat", value)
        counts = []
        for line in met.to_prometheus(registry).splitlines():
            if line.startswith("repro_lat_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 3
