"""End-to-end observability: CLI event streams, report parity, overhead."""

import time

import pytest

from repro.cli import main
from repro.models import simplecnn
from repro.obs import events as ev
from repro.train import TrainConfig, cross_entropy_loss, train_model

pytestmark = pytest.mark.obs

FAST_DATA = [
    "--num-train", "120", "--num-test", "60", "--image-size", "12",
    "--noise", "0.3", "--data-seed", "7",
]
FAST_TRAIN = ["--epochs", "1", "--batch-size", "64"]


@pytest.fixture(scope="module")
def cli_run(tmp_path_factory):
    """train -> quantize -> approximate, each with its own JSONL log."""
    root = tmp_path_factory.mktemp("obs_cli")
    fp, quant, approx = root / "fp.npz", root / "quant.npz", root / "approx.npz"
    logs = {name: root / f"{name}.jsonl" for name in ("train", "quantize", "approximate")}
    assert main([
        "train", "--model", "simplecnn", "--out", str(fp),
        "--log-json", str(logs["train"]), *FAST_DATA, *FAST_TRAIN,
    ]) == 0
    assert main([
        "quantize", "--checkpoint", str(fp), "--out", str(quant),
        "--log-json", str(logs["quantize"]), *FAST_DATA, *FAST_TRAIN,
    ]) == 0
    assert main([
        "approximate", "--checkpoint", str(quant), "--multiplier", "truncated4",
        "--out", str(approx), "--log-json", str(logs["approximate"]),
        *FAST_DATA, *FAST_TRAIN,
    ]) == 0
    return {"checkpoints": {"fp": fp, "quant": quant}, "logs": logs}


class TestEventStreamWellFormed:
    @pytest.mark.parametrize("command", ["train", "quantize", "approximate"])
    def test_envelope_and_ordering(self, cli_run, command):
        records = ev.read_events(cli_run["logs"][command])
        assert records[0]["type"] == ev.RUN_START
        assert records[0]["command"] == command
        assert records[-1]["type"] == ev.RUN_END
        assert records[-1]["status"] == "ok"
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [r["t"] for r in records]
        assert times == sorted(times)
        # one run id for the whole stream
        assert len({r["run"] for r in records}) == 1

    @pytest.mark.parametrize("command", ["quantize", "approximate"])
    def test_stage_events_are_balanced(self, cli_run, command):
        records = ev.read_events(cli_run["logs"][command])
        open_stages: list[str] = []
        for r in ev.iter_events(records, ev.STAGE):
            if r["phase"] == "start":
                open_stages.append(r["name"])
            else:
                assert open_stages.pop() == r["name"]
        assert not open_stages

    def test_train_log_has_epochs_and_final_eval(self, cli_run):
        records = ev.read_events(cli_run["logs"]["train"])
        epochs = list(ev.iter_events(records, ev.EPOCH))
        assert len(epochs) == 1
        assert epochs[0]["epoch"] == 1 and epochs[0]["epoch_time"] > 0
        evals = list(ev.iter_events(records, ev.EVAL))
        assert evals[-1]["name"] == "train/final"

    def test_approximate_log_has_before_after_evals(self, cli_run):
        records = ev.read_events(cli_run["logs"]["approximate"])
        names = [r["name"] for r in ev.iter_events(records, ev.EVAL)]
        assert "approximation/before_ft" in names
        assert names[-1] == "approximation/after_ft"
        (stage_start,) = [
            r for r in ev.iter_events(records, ev.STAGE) if r["phase"] == "start"
        ]
        assert stage_start["multiplier"] == "truncated4"

    def test_run_start_carries_config_and_meta(self, cli_run):
        records = ev.read_events(cli_run["logs"]["train"])
        start = records[0]
        assert start["config"]["model"] == "simplecnn"
        assert start["config"]["epochs"] == 1
        assert "python" in start["meta"] and "numpy" in start["meta"]


class TestReportParity:
    def test_report_reproduces_final_accuracy(self, cli_run, tmp_path, capsys):
        """`repro report RUN.jsonl` must echo the exact `final accuracy:`
        line that `repro approximate --log-json RUN.jsonl` printed."""
        logfile = tmp_path / "rerun.jsonl"
        assert main([
            "approximate", "--checkpoint", str(cli_run["checkpoints"]["quant"]),
            "--multiplier", "truncated4", "--log-json", str(logfile),
            *FAST_DATA, *FAST_TRAIN,
        ]) == 0
        approx_out = capsys.readouterr().out
        (approx_line,) = [
            line for line in approx_out.splitlines() if line.startswith("final accuracy:")
        ]

        assert main(["report", str(logfile)]) == 0
        report_out = capsys.readouterr().out
        report_lines = [
            line for line in report_out.splitlines() if line.startswith("final accuracy:")
        ]
        assert len(report_lines) == 1
        assert report_lines[0].startswith(approx_line)

    def test_report_on_train_log(self, cli_run, capsys):
        assert main(["report", str(cli_run["logs"]["train"])]) == 0
        out = capsys.readouterr().out
        assert "run " in out and "train" in out
        assert "epoch wall time" in out

    def test_report_missing_file_errors_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        captured = capsys.readouterr()
        assert "not found" in captured.err
        assert "Traceback" not in captured.err


class TestConsoleFlags:
    def test_quiet_keeps_results_drops_info(self, cli_run, capsys):
        assert main([
            "evaluate", "--checkpoint", str(cli_run["checkpoints"]["fp"]),
            "--quiet", *FAST_DATA,
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out  # scripting-facing result line survives

        assert main([
            "quantize", "--checkpoint", str(cli_run["checkpoints"]["fp"]),
            "--out", str(cli_run["checkpoints"]["fp"].parent / "q2.npz"),
            "--quiet", *FAST_DATA, *FAST_TRAIN,
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy before FT" not in out  # info line silenced
        assert "accuracy after FT" in out

    def test_profile_flag_prints_hot_timers(self, cli_run, tmp_path, capsys):
        logfile = tmp_path / "prof.jsonl"
        assert main([
            "evaluate", "--checkpoint", str(cli_run["checkpoints"]["quant"]),
            "--multiplier", "truncated4", "--profile", "--log-json", str(logfile),
            *FAST_DATA,
        ]) == 0
        out = capsys.readouterr().out
        assert "approx.lut_gather" in out
        (profile_event,) = ev.iter_events(ev.read_events(logfile), ev.PROFILE)
        assert any(t["name"] == "approx.lut_gather" for t in profile_event["timers"])


class TestOverhead:
    def test_event_log_overhead_within_budget(self, tiny_dataset, tmp_path):
        """Acceptance bound: trainer with the event log on (stats hooks off)
        stays within 5% wall time of an uninstrumented run."""
        config = TrainConfig(epochs=2, batch_size=64, eval_every=1, seed=0)

        def run_once(log: ev.EventLog) -> float:
            model = simplecnn(base_width=4, rng=0)
            previous = ev.set_event_log(log)
            try:
                start = time.perf_counter()
                train_model(model, tiny_dataset, cross_entropy_loss(), config)
                return time.perf_counter() - start
            finally:
                ev.set_event_log(previous)

        plain_times, logged_times = [], []
        for i in range(3):  # interleave to share any thermal/load drift
            plain_times.append(run_once(ev.EventLog()))
            logged = ev.EventLog()
            logged.add_sink(ev.JsonlSink(tmp_path / f"bench{i}.jsonl"))
            logged_times.append(run_once(logged))
            logged.close()

        plain, logged = min(plain_times), min(logged_times)
        # 5% budget plus a small absolute allowance for timer jitter on
        # runs this short (a full epoch here is well under a second).
        assert logged <= plain * 1.05 + 0.05, (
            f"event log overhead too high: {logged:.3f}s vs {plain:.3f}s"
        )
        # the instrumented runs actually produced epoch events
        records = ev.read_events(tmp_path / "bench0.jsonl")
        assert len(list(ev.iter_events(records, ev.EPOCH))) == config.epochs
