"""Event log: JSONL round-trip, envelope stamping, sinks, validation."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import events as ev

pytestmark = pytest.mark.obs


class TestEmission:
    def test_disabled_log_is_a_noop(self):
        log = ev.EventLog()
        assert not log.enabled
        assert log.emit("epoch", epoch=1) is None

    def test_envelope_keys_and_sequence(self):
        log = ev.EventLog(run_id="test-run")
        sink = log.add_sink(ev.CollectingSink())
        log.emit("stage", name="s", phase="start")
        log.emit("epoch", epoch=1, epochs=2)
        assert [r["seq"] for r in sink.records] == [0, 1]
        first = sink.records[0]
        assert first["type"] == "stage"
        assert first["run"] == "test-run"
        assert first["level"] == "info"
        assert first["t"] >= 0.0

    def test_monotonic_timestamps(self):
        ticks = iter([0.0, 1.5, 2.25])
        log = ev.EventLog(clock=lambda: next(ticks))
        sink = log.add_sink(ev.CollectingSink())
        log.emit("a")
        log.emit("b")
        assert [r["t"] for r in sink.records] == [1.5, 2.25]

    def test_numpy_payloads_are_normalised(self):
        log = ev.EventLog()
        sink = log.add_sink(ev.CollectingSink())
        log.emit(
            "eval",
            accuracy=np.float32(0.5),
            counts=np.array([1, 2]),
            nested={"k": np.int64(3)},
        )
        record = sink.records[0]
        assert record["accuracy"] == 0.5 and isinstance(record["accuracy"], float)
        assert record["counts"] == [1, 2]
        assert record["nested"] == {"k": 3}
        json.dumps(record)  # fully serialisable

    def test_typed_emitters(self):
        log = ev.EventLog()
        sink = log.add_sink(ev.CollectingSink())
        log.run_start(command="train", config={"epochs": 3})
        log.epoch(epoch=1, epochs=3, loss=0.5)
        log.eval("final", 0.9)
        log.stage("quantization", "start")
        log.run_end(status="ok")
        assert [r["type"] for r in sink.records] == [
            ev.RUN_START,
            ev.EPOCH,
            ev.EVAL,
            ev.STAGE,
            ev.RUN_END,
        ]


class TestJsonlRoundTrip:
    def test_write_then_read_preserves_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = ev.EventLog(run_id="rt")
        log.add_sink(ev.JsonlSink(path))
        log.run_start(command="x", config={"lr": 0.1})
        log.epoch(epoch=1, epochs=1, loss=1.25, accuracy=0.5)
        log.run_end(status="ok")
        log.close()

        records = ev.read_events(path)
        assert len(records) == 3
        assert [r["type"] for r in records] == [ev.RUN_START, ev.EPOCH, ev.RUN_END]
        assert records[1]["loss"] == 1.25
        assert records[1]["accuracy"] == 0.5
        assert all(r["run"] == "rt" for r in records)
        # sequence and time are monotone
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[0]["t"] <= records[1]["t"] <= records[2]["t"]

    def test_logging_to_routes_the_default_log(self, tmp_path):
        path = tmp_path / "scoped.jsonl"
        before = ev.get_event_log()
        with ev.logging_to(path) as log:
            assert ev.get_event_log() is log
            log.emit("custom", value=1)
        assert ev.get_event_log() is before
        records = ev.read_events(path)
        assert len(records) == 1 and records[0]["value"] == 1

    def test_iter_events_filters_by_type(self, tmp_path):
        path = tmp_path / "f.jsonl"
        with ev.logging_to(path) as log:
            log.epoch(epoch=1, epochs=2)
            log.eval("a", 0.1)
            log.epoch(epoch=2, epochs=2)
        records = ev.read_events(path)
        epochs = list(ev.iter_events(records, ev.EPOCH))
        assert [r["epoch"] for r in epochs] == [1, 2]


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            ev.read_events(tmp_path / "nope.jsonl")

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "a", "run": "r", "seq": 0, "t": 0}\nnot json\n')
        with pytest.raises(ReproError, match="invalid JSON"):
            ev.read_events(path)

    def test_missing_envelope_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "a"}\n')
        with pytest.raises(ReproError, match="envelope"):
            ev.read_events(path)

    def test_non_object_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ReproError, match="not an object"):
            ev.read_events(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('\n{"type": "a", "run": "r", "seq": 0, "t": 0}\n\n')
        assert len(ev.read_events(path)) == 1


class TestLevels:
    def test_level_names(self):
        assert ev.level_name(ev.DEBUG) == "debug"
        assert ev.level_name(ev.INFO) == "info"
        assert ev.level_name(25) == "info"  # nearest below
        assert ev.level_name(5) == "debug"  # below the scale
