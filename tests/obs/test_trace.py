"""repro.obs.trace: spans, parentage, export, self-time summaries."""

import os
import threading

import pytest

from repro.errors import ReproError
from repro.obs import profiling as prof
from repro.obs import trace as tr

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_tracing():
    tr.reset_tracing()
    yield
    tr.disable_tracing()
    tr.reset_tracing()


class TestSpanBasics:
    def test_disabled_span_records_nothing(self):
        with tr.span("a"):
            pass
        assert len(tr.get_trace_recorder()) == 0

    def test_enabled_span_records(self):
        tr.enable_tracing()
        with tr.span("a", layer="conv1"):
            pass
        spans = tr.get_trace_recorder().spans()
        assert [s.name for s in spans] == ["a"]
        assert spans[0].attrs == {"layer": "conv1"}
        assert spans[0].parent_id is None
        assert spans[0].pid == os.getpid()
        assert spans[0].dur_ns >= 0

    def test_nesting_sets_parent(self):
        tr.enable_tracing()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.get_trace_recorder().spans()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # child is contained within the parent's interval
        assert inner.start_ns >= outer.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_current_span_id_tracks_stack(self):
        tr.enable_tracing()
        assert tr.current_span_id() is None
        with tr.span("a") as a:
            assert tr.current_span_id() == a._id
        assert tr.current_span_id() is None

    def test_span_ids_unique(self):
        tr.enable_tracing()
        for _ in range(10):
            with tr.span("x"):
                pass
        ids = [s.span_id for s in tr.get_trace_recorder().spans()]
        assert len(set(ids)) == 10

    def test_reset_inside_block_drops_sample(self):
        tr.enable_tracing()
        with tr.span("outer"):
            tr.reset_tracing()
            tr.enable_tracing()
        assert len(tr.get_trace_recorder()) == 0

    def test_tracing_context_manager_restores(self):
        assert not tr.enabled
        with tr.tracing() as recorder:
            assert tr.enabled
            with tr.span("a"):
                pass
            assert len(recorder) == 1
        assert not tr.enabled

    def test_exception_still_closes_span(self):
        tr.enable_tracing()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert [s.name for s in tr.get_trace_recorder().spans()] == ["boom"]


class TestThreads:
    def test_threads_get_independent_stacks(self):
        tr.enable_tracing()
        seen = []

        def worker():
            with tr.span("thread_root"):
                seen.append(tr.current_span_id())

        with tr.span("main_root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        spans = {s.name: s for s in tr.get_trace_recorder().spans()}
        # the thread's root has no parent unless call_with_parent is used
        assert spans["thread_root"].parent_id is None
        assert spans["thread_root"].tid != spans["main_root"].tid

    def test_call_with_parent_links_and_restores(self):
        tr.enable_tracing()
        with tr.span("dispatch") as d:
            result = tr.call_with_parent(d._id, lambda v: v + 1, 41)
        assert result == 42
        spans = {s.name: s for s in tr.get_trace_recorder().spans()}
        assert spans["parallel.task"].parent_id == spans["dispatch"].span_id


class TestProfilingBridge:
    def test_timer_opens_matching_span(self):
        tr.enable_tracing()
        with prof.timer("approx.lut_gather"):
            pass
        assert [s.name for s in tr.get_trace_recorder().spans()] == [
            "approx.lut_gather"
        ]

    def test_timer_without_tracing_opens_nothing(self):
        with prof.timer("approx.lut_gather"):
            pass
        assert len(tr.get_trace_recorder()) == 0


class TestContextPropagation:
    def test_trace_context_captures_parent(self):
        tr.enable_tracing()
        with tr.span("root") as r:
            ctx = tr.trace_context()
        assert ctx.enabled
        assert ctx.parent_id == r._id
        assert ctx.trace_id == tr.get_trace_recorder().trace_id

    def test_adopt_and_drain(self):
        tr.enable_tracing()
        with tr.span("root"):
            ctx = tr.trace_context()
        parent_recorder = tr.get_trace_recorder()
        root = parent_recorder.spans()[0]

        tr.adopt_context(ctx)  # simulates the forked worker
        with tr.span("work"):
            pass
        shipped = tr.drain_spans()
        assert [s.name for s in shipped] == ["work"]
        assert shipped[0].parent_id == root.span_id
        assert tr.get_trace_recorder().trace_id == ctx.trace_id


class TestExport:
    def _sample_spans(self):
        tr.enable_tracing()
        with tr.span("outer", epoch=1):
            with tr.span("inner"):
                pass
            with tr.span("inner"):
                pass
        tr.disable_tracing()
        return tr.get_trace_recorder().spans()

    def test_chrome_round_trip(self, tmp_path):
        spans = self._sample_spans()
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(path, spans)
        doc = __import__("json").loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == 3
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        reread = tr.read_chrome_trace(path)
        assert {s.span_id for s in reread} == {s.span_id for s in spans}
        by_id = {s.span_id: s for s in reread}
        for original in spans:
            back = by_id[original.span_id]
            assert back.name == original.name
            assert back.parent_id == original.parent_id
            assert back.start_ns == original.start_ns
            assert back.dur_ns == original.dur_ns

    def test_read_chrome_trace_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            tr.read_chrome_trace(tmp_path / "absent.json")

    def test_read_chrome_trace_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ReproError):
            tr.read_chrome_trace(bad)

    def test_self_time_subtracts_direct_children(self):
        # Synthetic whole-microsecond durations: the summary rounds its
        # seconds to 6 decimals, so measured (sub-µs) spans would make
        # "self == total - children" hold only when the roundings happen
        # to commute. Fixed durations keep the arithmetic exact.
        pid, tid = 1234, 1
        spans = [
            tr.SpanRecord("outer", "1234-1", None, 0, 5_000_000, pid, tid),
            tr.SpanRecord("inner", "1234-2", "1234-1", 1_000, 1_000_000, pid, tid),
            tr.SpanRecord("inner", "1234-3", "1234-1", 2_000_000, 2_000_000, pid, tid),
        ]
        rows = {r["name"]: r for r in tr.self_time_summary(spans)}
        assert rows["inner"]["calls"] == 2
        assert rows["outer"]["calls"] == 1
        assert rows["inner"]["total_s"] == pytest.approx(0.003, abs=1e-9)
        assert rows["outer"]["total_s"] == pytest.approx(0.005, abs=1e-9)
        assert rows["outer"]["self_s"] == pytest.approx(0.002, abs=1e-9)

    def test_render_flame_summary(self):
        spans = self._sample_spans()
        text = tr.render_flame_summary(spans, top=5)
        assert "outer" in text and "inner" in text
        assert "3 span(s)" in text
