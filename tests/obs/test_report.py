"""`repro report`: summarising a synthetic JSONL event stream."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import events as ev
from repro.obs import metrics as met
from repro.obs.report import render_summary, summarize_run

pytestmark = pytest.mark.obs


@pytest.fixture
def run_log(tmp_path):
    """A synthetic but fully representative pipeline run."""
    path = tmp_path / "run.jsonl"
    ticks = iter([float(i) for i in range(100)])
    log = ev.EventLog(run_id="synth", clock=lambda: next(ticks))
    log.add_sink(ev.JsonlSink(path))
    log.run_start(command="approximate", config={"multiplier": "truncated4"})
    log.stage("quantization", "start")
    log.epoch(epoch=1, epochs=2, loss=2.0, accuracy=0.50, epoch_time=1.5)
    log.epoch(epoch=2, epochs=2, loss=1.0, accuracy=0.60, epoch_time=2.5)
    log.eval("quantization/after_ft", 0.60)
    log.stage("quantization", "end", accuracy_before=0.40, accuracy_after=0.60,
              duration=12.5)
    log.stage("approximation", "start")
    log.eval("approximation/after_ft", 0.5833)
    log.stage("approximation", "end", accuracy_before=0.10, accuracy_after=0.5833)
    log.emit(
        ev.PROFILE,
        timers=[{"name": "approx.lut_gather", "calls": 7, "total": 0.25}],
        counters=[
            {"name": "approx.plan_cache_hit", "calls": 30, "bytes": 0},
            {"name": "approx.plan_cache_miss", "calls": 10, "bytes": 0},
            {"name": "approx.plan_built", "calls": 10, "bytes": 4096},
            {"name": "approx.plan_workspace_alloc", "calls": 2, "bytes": 8192},
            {"name": "ge.montecarlo_simulations", "calls": 50, "bytes": 0},
        ],
    )
    log.run_end(status="ok", exit_code=0)
    log.close()
    return path


class TestSummarize:
    def test_core_fields(self, run_log):
        summary = summarize_run(run_log)
        assert summary.run_id == "synth"
        assert summary.command == "approximate"
        assert summary.status == "ok"
        assert summary.num_events == 11
        assert summary.wall_time == 11.0  # t of the last record

    def test_accuracy_and_epoch_times(self, run_log):
        summary = summarize_run(run_log)
        assert summary.accuracy_trajectory == [0.50, 0.60]
        assert summary.epoch_times == [1.5, 2.5]
        assert summary.train_loss == [2.0, 1.0]

    def test_final_accuracy_is_last_eval(self, run_log):
        summary = summarize_run(run_log)
        assert summary.final_accuracy == 0.5833
        assert summary.final_accuracy_name == "approximation/after_ft"
        assert summary.evals == [
            ("quantization/after_ft", 0.60),
            ("approximation/after_ft", 0.5833),
        ]

    def test_stage_durations(self, run_log):
        summary = summarize_run(run_log)
        by_name = {s.name: s for s in summary.stages}
        # explicit duration wins over the timestamp difference
        assert by_name["quantization"].duration == 12.5
        # no explicit duration -> end.t - start.t (events at t=7..9 -> 2.0)
        assert by_name["approximation"].duration == 2.0
        assert by_name["approximation"].accuracy_after == 0.5833

    def test_profile_rows(self, run_log):
        summary = summarize_run(run_log)
        assert summary.hottest[0]["name"] == "approx.lut_gather"

    def test_fallback_to_epoch_accuracy(self, tmp_path):
        path = tmp_path / "train.jsonl"
        with ev.logging_to(path) as log:
            log.run_start(command="train", config={})
            log.epoch(epoch=1, epochs=1, loss=0.1, accuracy=0.75)
            log.run_end(status="ok")
        summary = summarize_run(path)
        assert summary.final_accuracy == 0.75
        assert summary.final_accuracy_name == "last epoch"

    def test_empty_log_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            summarize_run(path)


class TestTruncatedLog:
    """A crashed run leaves a half-written final line; see docs/RESILIENCE.md."""

    @pytest.fixture
    def truncated_log(self, run_log):
        text = run_log.read_text()
        run_log.write_text(text + '{"type": "epoch", "run": "synth", "se')
        return run_log

    def test_tolerant_mode_skips_final_line(self, truncated_log):
        with pytest.warns(UserWarning, match="truncated final record"):
            summary = summarize_run(truncated_log)
        assert summary.skipped_records == 1
        assert summary.num_events == 11  # the complete records still count

    def test_strict_mode_raises(self, truncated_log):
        with pytest.raises(ReproError, match="invalid JSON"):
            summarize_run(truncated_log, strict=True)

    def test_mid_file_corruption_always_raises(self, run_log):
        lines = run_log.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # corrupt a middle record
        run_log.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError):
            summarize_run(run_log)

    def test_render_mentions_skipped_records(self, truncated_log):
        with pytest.warns(UserWarning):
            text = render_summary(summarize_run(truncated_log))
        assert "skipped 1 truncated record" in text

    def test_read_events_collects_skipped_lines(self, truncated_log):
        skipped = []
        with pytest.warns(UserWarning):
            records = ev.read_events(truncated_log, strict=False, skipped=skipped)
        assert len(records) == 11
        assert skipped == ['{"type": "epoch", "run": "synth", "se']


class TestRender:
    def test_mentions_every_section(self, run_log):
        text = render_summary(summarize_run(run_log))
        assert "run synth: approximate" in text
        assert "status: ok" in text
        assert "quantization/after_ft" in text
        assert "accuracy by epoch [%]: 50.00  60.00" in text
        assert "epoch wall time [s]: 1.50  2.50  (total 4.00, mean 2.00)" in text
        assert "approx.lut_gather" in text
        # identical formatting to the `repro approximate` result line
        assert "final accuracy:   58.33% (approximation/after_ft)" in text

    def test_minimal_log_renders(self, tmp_path):
        path = tmp_path / "min.jsonl"
        with ev.logging_to(path) as log:
            log.emit("custom")
        text = render_summary(summarize_run(path))
        assert "(no run_end event)" in text


class TestPlanCacheCounters:
    def test_counters_are_parsed_from_the_profile_event(self, run_log):
        summary = summarize_run(run_log)
        assert len(summary.counters) == 5
        cache = summary.plan_cache
        assert cache["cache_hit"] == 30
        assert cache["cache_miss"] == 10
        assert cache["built"] == 10
        assert cache["built_bytes"] == 4096
        assert cache["workspace_alloc_bytes"] == 8192
        # non-plan counters are kept out of the plan-cache view
        assert "montecarlo_simulations" not in cache

    def test_render_includes_plan_cache_section(self, run_log):
        text = render_summary(summarize_run(run_log))
        assert "plan cache:" in text
        assert "hits 30  misses 10" in text
        assert "(75.0% hit)" in text

    def test_render_omits_section_without_plan_counters(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        log = ev.EventLog(run_id="bare")
        log.add_sink(ev.JsonlSink(path))
        log.run_start(command="x")
        log.run_end(status="ok", exit_code=0)
        log.close()
        text = render_summary(summarize_run(path))
        assert "plan cache:" not in text


def _histogram_payload(values):
    hist = met.Histogram("h")
    for value in values:
        hist.observe(value)
    return hist.to_dict()


@pytest.fixture
def metrics_log(tmp_path):
    """A run whose log carries metrics snapshots and a trace event."""
    path = tmp_path / "metrics.jsonl"
    ticks = iter([float(i) for i in range(100)])
    log = ev.EventLog(run_id="synth", clock=lambda: next(ticks))
    log.add_sink(ev.JsonlSink(path))
    log.run_start(command="approximate", config={})
    log.emit(
        ev.METRICS,
        scope="epoch",
        metrics={
            "counters": {"plan_cache.hit": 10, "plan_cache.miss": 10},
            "gauges": {},
            "histograms": {},
        },
    )
    log.emit(
        ev.METRICS,
        scope="final",
        metrics={
            "counters": {"plan_cache.hit": 90, "plan_cache.miss": 10},
            "gauges": {"layer.eps_mean{layer=conv1}": 0.25},
            "histograms": {
                "eval.batch_seconds": _histogram_payload(
                    [0.010, 0.011, 0.012, 0.013, 0.050]
                )
            },
        },
    )
    log.emit(
        ev.TRACE,
        path="trace.json",
        spans=42,
        top_self_time=[
            {"name": "approx.matmul", "calls": 12, "total_s": 0.5, "self_s": 0.4}
        ],
    )
    log.run_end(status="ok", exit_code=0)
    log.close()
    return path


class TestMetricsSections:
    def test_last_snapshot_wins(self, metrics_log):
        summary = summarize_run(metrics_log)
        assert summary.metrics_snapshots == 2
        assert summary.metrics["counters"]["plan_cache.hit"] == 90

    def test_latency_quantiles_match_numpy_bound(self, metrics_log):
        import numpy as np

        summary = summarize_run(metrics_log)
        quantiles = summary.latency_quantiles()["eval.batch_seconds"]
        samples = [0.010, 0.011, 0.012, 0.013, 0.050]
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            exact = float(np.quantile(samples, q, method="inverted_cdf"))
            assert abs(quantiles[label] - exact) / exact <= met.QUANTILE_REL_ERROR

    def test_hit_rate_series(self, metrics_log):
        summary = summarize_run(metrics_log)
        series = summary.plan_cache_hit_rate()
        assert [rate for _, rate in series] == [0.5, 0.9]

    def test_trace_event_is_summarized(self, metrics_log):
        summary = summarize_run(metrics_log)
        assert summary.trace["path"] == "trace.json"
        assert summary.trace["spans"] == 42

    def test_render_sections(self, metrics_log):
        text = render_summary(summarize_run(metrics_log))
        assert "metrics (2 snapshot(s), quantile error <= 4.4%):" in text
        assert "eval.batch_seconds" in text
        assert "layer.eps_mean{layer=conv1}" in text
        assert "plan cache hit rate over time [%]: 50.0  90.0" in text
        assert "chrome trace: trace.json (42 span(s))" in text
        assert "approx.matmul" in text

    def test_to_dict_is_json_complete(self, metrics_log):
        summary = summarize_run(metrics_log)
        payload = summary.to_dict()
        json.dumps(payload)  # the --format json path must serialize
        assert "_hit_rate_series" not in payload
        assert payload["quantile_rel_error"] == met.QUANTILE_REL_ERROR
        assert "p95" in payload["latency_quantiles"]["eval.batch_seconds"]
        assert payload["plan_cache_hit_rate"][-1][1] == 0.9
        assert payload["metrics_snapshots"] == 2
        assert {e["name"] for e in payload["evals"]} == set()

    def test_render_omits_metrics_without_events(self, run_log):
        text = render_summary(summarize_run(run_log))
        assert "quantile error" not in text
        assert "hit rate over time" not in text
