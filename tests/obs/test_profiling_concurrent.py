"""Concurrency safety of the profiling registry.

These tests fail on the pre-PR-3 profiler (module-global timer stack,
unlocked registries): the stress test loses counter/timer increments under
thread contention, and the reset test dies with an IndexError in
``timer.__exit__``.
"""

import sys
import threading

import pytest

from repro.obs import profiling as prof

pytestmark = [pytest.mark.obs, pytest.mark.parallel]


@pytest.fixture(autouse=True)
def clean_registry():
    prof.reset_profiling()
    prof.disable_profiling()
    yield
    prof.reset_profiling()
    prof.disable_profiling()


@pytest.fixture
def fast_thread_switching():
    """Force frequent GIL handoffs so races surface deterministically."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


class TestConcurrentStress:
    def test_no_lost_or_corrupt_stats_under_contention(self, fast_thread_switching):
        """N threads x nested timers x counters: every sample lands exactly once."""
        prof.enable_profiling()
        num_threads, iterations = 8, 2000
        failures: list[BaseException] = []

        def work():
            try:
                for _ in range(iterations):
                    with prof.timer("stress.outer", nbytes=10):
                        with prof.timer("stress.inner"):
                            pass
                    prof.count("stress.items", n=2, nbytes=5)
            except BaseException as exc:  # noqa: BLE001 — recorded for the assert
                failures.append(exc)

        threads = [threading.Thread(target=work) for _ in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not failures, failures
        expected = num_threads * iterations
        report = prof.profile_report()
        outer, inner = report.timer("stress.outer"), report.timer("stress.inner")
        counter = report.counter("stress.items")
        assert outer.calls == expected
        assert outer.bytes == 10 * expected
        assert inner.calls == expected
        assert counter.calls == 2 * expected
        assert counter.bytes == 5 * expected
        # nesting attribution stays sane: child time never exceeds the parent
        assert 0.0 <= outer.self_time <= outer.total + 1e-6
        assert inner.total <= outer.total + 1e-6

    def test_per_thread_nesting_attribution(self):
        """A child on one thread never attributes into a parent on another."""
        prof.enable_profiling()
        barrier = threading.Barrier(2)

        def outer_only():
            barrier.wait()
            with prof.timer("attr.parent"):
                barrier.wait()  # hold the parent open while the peer times

        def inner_only():
            barrier.wait()
            with prof.timer("attr.unrelated"):
                pass
            barrier.wait()

        threads = [threading.Thread(target=outer_only), threading.Thread(target=inner_only)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        parent = prof.profile_report().timer("attr.parent")
        # with a shared stack the unrelated timer would subtract from the
        # parent's self time; per-thread stacks keep it untouched
        assert parent.self_time == pytest.approx(parent.total)


class TestResetDuringTimer:
    def test_reset_inside_open_block_does_not_crash(self):
        prof.enable_profiling()
        with prof.timer("stale"):
            prof.reset_profiling()
        # the open block's sample belonged to the discarded epoch
        assert prof.profile_report().timer("stale") is None

    def test_reset_inside_nested_blocks(self):
        prof.enable_profiling()
        with prof.timer("outer"):
            with prof.timer("inner"):
                prof.reset_profiling()
        report = prof.profile_report()
        assert report.timer("outer") is None
        assert report.timer("inner") is None

    def test_fresh_timers_after_mid_block_reset_record_normally(self):
        prof.enable_profiling()
        with prof.timer("old"):
            prof.reset_profiling()
            with prof.timer("new"):
                pass
        report = prof.profile_report()
        assert report.timer("new").calls == 1
        assert report.timer("old") is None


class TestMergeReport:
    def test_merge_aggregates_same_names(self):
        prof.enable_profiling()
        with prof.timer("m.t", nbytes=4):
            pass
        prof.count("m.c", n=3)
        snapshot = prof.profile_report()
        prof.merge_report(snapshot)
        report = prof.profile_report()
        assert report.timer("m.t").calls == 2
        assert report.timer("m.t").bytes == 8
        assert report.counter("m.c").calls == 6

    def test_merge_creates_missing_names(self):
        snapshot = prof.ProfileReport(
            timers=[prof.TimerStat("w.only", calls=5, total=1.0, self_time=0.5, bytes=7)],
            counters=[prof.TimerStat("w.count", calls=9)],
        )
        prof.merge_report(snapshot)
        report = prof.profile_report()
        assert report.timer("w.only").calls == 5
        assert report.timer("w.only").total == pytest.approx(1.0)
        assert report.counter("w.count").calls == 9

    def test_merge_saturates(self):
        snapshot = prof.ProfileReport(
            timers=[], counters=[prof.TimerStat("sat", calls=prof.COUNTER_MAX)]
        )
        prof.merge_report(snapshot)
        prof.merge_report(snapshot)
        assert prof.profile_report().counter("sat").calls == prof.COUNTER_MAX
