"""Utilities: registry and RNG helpers."""

import numpy as np
import pytest

from repro.utils import Registry, new_rng, spawn_rngs


class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")
        reg.register("a", lambda **kw: ("a", kw))
        name, kwargs = reg.create("a", x=1)
        assert name == "a" and kwargs == {"x": 1}

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("b")
        def make_b():
            return "b"

        assert reg.create("b") == "b"

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("a", lambda: None)
        with pytest.raises(KeyError):
            reg.register("A", lambda: None)  # case-insensitive collision

    def test_unknown_lists_known(self):
        reg = Registry("widget")
        reg.register("only", lambda: None)
        with pytest.raises(KeyError, match="only"):
            reg.create("missing")

    def test_contains_and_iter(self):
        reg = Registry("widget")
        reg.register("z", lambda: None)
        reg.register("a", lambda: None)
        assert "Z" in reg
        assert list(reg) == ["a", "z"]
        assert reg.names() == ["a", "z"]


class TestRng:
    def test_accepts_int_seed(self):
        assert new_rng(0).integers(10) == new_rng(0).integers(10)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert new_rng(gen) is gen

    def test_none_gives_fresh_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(1000) != b.integers(1000) or a.integers(1000) != b.integers(1000)

    def test_spawn_deterministic(self):
        xs = [g.integers(1000) for g in spawn_rngs(7, 3)]
        ys = [g.integers(1000) for g in spawn_rngs(7, 3)]
        assert xs == ys

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
