"""KD losses (Eqs. 1-3): values, temperature scaling, gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, log_softmax_np, softmax_np
from repro.distill import distillation_loss, hard_loss, soft_loss
from repro.errors import ConfigError


def t64(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestHardLoss:
    def test_equals_cross_entropy(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        manual = -log_softmax_np(logits)[np.arange(4), labels].mean()
        assert hard_loss(Tensor(logits), labels).item() == pytest.approx(manual, rel=1e-5)


class TestSoftLoss:
    def test_t1_equals_plain_soft_cross_entropy(self, rng):
        student = rng.normal(size=(3, 5))
        teacher = rng.normal(size=(3, 5))
        loss = soft_loss(Tensor(student), teacher, temperature=1.0)
        manual = -(softmax_np(teacher) * log_softmax_np(student)).sum(axis=1).mean()
        assert loss.item() == pytest.approx(manual, rel=1e-5)

    def test_minimised_when_student_matches_teacher(self, rng):
        teacher = rng.normal(size=(4, 6))
        student = Tensor(teacher.copy(), requires_grad=True)
        loss = soft_loss(student, teacher, temperature=3.0)
        loss.backward()
        np.testing.assert_allclose(student.grad, np.zeros_like(teacher), atol=1e-6)

    def test_t_squared_compensation(self, rng):
        """Gradient magnitude should stay O(1) across temperatures thanks to
        the T² factor (the reason the paper multiplies C_soft by T²)."""
        teacher = rng.normal(size=(8, 10)) * 4
        grads = {}
        for t in (1.0, 5.0, 10.0):
            student = Tensor(rng.normal(size=(8, 10)), requires_grad=True)
            soft_loss(student, teacher, temperature=t).backward()
            grads[t] = np.abs(student.grad).mean()
        # Without T² the ratio would be ~T²=100; with it, same order.
        assert grads[10.0] > grads[1.0] / 10
        assert grads[10.0] < grads[1.0] * 10

    def test_high_temperature_flattens_targets(self, rng):
        """Higher T must push the implicit teacher distribution toward
        uniform — the mechanism behind the paper's T2 > T1 rule."""
        teacher = np.array([[10.0, 0.0, 0.0]])
        student = Tensor(np.zeros((1, 3)), requires_grad=True)
        # At high T the loss approaches CE against ~uniform targets.
        lo = soft_loss(student, teacher, temperature=1.0).item()
        hi = soft_loss(student, teacher, temperature=100.0).item()
        uniform_ce = -np.log(1.0 / 3.0) * 100.0**2  # T² scaling
        assert hi / (100.0**2) == pytest.approx(uniform_ce / 100.0**2, rel=0.05)
        assert lo != hi

    def test_gradient_check(self, rng):
        teacher = rng.normal(size=(3, 4))
        student = t64(rng.normal(size=(3, 4)))
        check_gradients(lambda s: soft_loss(s, teacher, 2.5), [student])

    def test_rejects_nonpositive_temperature(self, rng):
        with pytest.raises(ConfigError):
            soft_loss(Tensor(np.zeros((1, 3))), np.zeros((1, 3)), temperature=0.0)


class TestDistillationLoss:
    def test_is_sum_of_parts(self, rng):
        student_logits = rng.normal(size=(4, 5))
        teacher = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        total = distillation_loss(Tensor(student_logits), teacher, labels, 4.0).item()
        parts = (
            soft_loss(Tensor(student_logits), teacher, 4.0).item()
            + hard_loss(Tensor(student_logits), labels).item()
        )
        assert total == pytest.approx(parts, rel=1e-5)

    def test_gradient_check(self, rng):
        teacher = rng.normal(size=(3, 4))
        labels = rng.integers(0, 4, size=3)
        student = t64(rng.normal(size=(3, 4)))
        check_gradients(lambda s: distillation_loss(s, teacher, labels, 3.0), [student])
