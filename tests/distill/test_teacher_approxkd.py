"""Teacher utilities and ApproxKD configuration."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.distill import (
    TEMPERATURE_GRID,
    ApproxKDConfig,
    clone_model,
    kd_batch_loss,
    precompute_teacher_logits,
    recommended_t2,
)
from repro.errors import ConfigError
from repro.models import simplecnn


class TestCloneModel:
    def test_parameters_equal_but_independent(self):
        model = simplecnn(base_width=4, rng=0)
        clone = clone_model(model)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)
        clone.classifier.weight.data[:] = 0.0
        assert model.classifier.weight.data.any()

    def test_clone_preserves_quant_state(self, quantized_model):
        clone = clone_model(quantized_model)
        from repro.quant import quant_layers

        for a, b in zip(quant_layers(quantized_model), quant_layers(clone)):
            assert a.act_step == b.act_step
            assert a.weight_step == b.weight_step


class TestPrecomputeLogits:
    def test_matches_direct_forward(self, trained_fp_model, tiny_dataset):
        x = tiny_dataset.test_x[:40]
        logits = precompute_teacher_logits(trained_fp_model, x, batch_size=16)
        with no_grad():
            direct = trained_fp_model(Tensor(x)).data
        np.testing.assert_allclose(logits, direct, atol=1e-5)

    def test_shape(self, trained_fp_model, tiny_dataset):
        logits = precompute_teacher_logits(trained_fp_model, tiny_dataset.test_x[:10])
        assert logits.shape == (10, 10)

    def test_restores_training_mode(self, tiny_dataset):
        model = simplecnn(base_width=4, rng=0)
        model.train()
        precompute_teacher_logits(model, tiny_dataset.test_x[:8])
        assert model.training


class TestKDBatchLoss:
    def test_indexes_precomputed_logits(self, rng):
        teacher_logits = rng.normal(size=(20, 10))
        loss_fn = kd_batch_loss(teacher_logits, temperature=2.0)
        indices = np.array([3, 7, 11])
        student = Tensor(teacher_logits[indices].copy(), requires_grad=True)
        labels = rng.integers(0, 10, size=3)
        loss = loss_fn(student, labels, indices)
        # With student == teacher the soft term is minimal; check finiteness
        # and gradient flow.
        loss.backward()
        assert np.isfinite(loss.item())
        assert student.grad is not None


class TestApproxKDConfig:
    def test_defaults(self):
        cfg = ApproxKDConfig()
        assert cfg.t1 == 1.0 and cfg.t2 > cfg.t1

    def test_validation(self):
        with pytest.raises(ConfigError):
            ApproxKDConfig(t1=0.0)
        with pytest.raises(ConfigError):
            ApproxKDConfig(quantization_epochs=-1)

    def test_temperature_grid_matches_paper(self):
        assert TEMPERATURE_GRID == (1.0, 2.0, 5.0, 10.0)


class TestRecommendedT2:
    def test_policy_monotone_in_mre(self):
        assert recommended_t2(0.02) <= recommended_t2(0.10) <= recommended_t2(0.20)

    def test_paper_anchors(self):
        # Table III: truncated3 (5.5%) best at T=2; truncated5 best at 5-10;
        # EvoA 104/469/228/145 (19-21%) best at 10.
        assert recommended_t2(0.055) == 2.0
        assert recommended_t2(0.20) == 10.0
