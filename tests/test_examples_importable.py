"""Every example script must at least import cleanly (bitrot guard).

Examples guard execution behind ``if __name__ == "__main__"``, so importing
them exercises their imports and top-level constants without the runtime
cost of a full run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.name} must define main()"
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "the deliverable requires >= 3 examples"
