"""CLI: full pipeline through the command-line entry points."""

import pytest

from repro.cli import main

FAST_DATA = [
    "--num-train", "120", "--num-test", "60", "--image-size", "12",
    "--noise", "0.3", "--data-seed", "7",
]
FAST_TRAIN = ["--epochs", "1", "--batch-size", "64"]


@pytest.fixture(scope="module")
def fp_checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fp.npz"
    code = main(
        ["train", "--model", "simplecnn", "--out", str(path), *FAST_DATA, *FAST_TRAIN]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def quant_checkpoint(fp_checkpoint, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "quant.npz"
    code = main(
        [
            "quantize",
            "--checkpoint", str(fp_checkpoint),
            "--out", str(path),
            *FAST_DATA,
            *FAST_TRAIN,
        ]
    )
    assert code == 0
    return path


class TestTrain:
    def test_creates_checkpoint_and_meta(self, fp_checkpoint):
        assert fp_checkpoint.exists()
        assert fp_checkpoint.with_suffix(".npz.meta.json").exists()


class TestQuantize:
    def test_creates_quantized_checkpoint(self, quant_checkpoint):
        import json

        meta = json.loads(quant_checkpoint.with_suffix(".npz.meta.json").read_text())
        assert meta["quantized"] is True

    def test_no_kd_flag(self, fp_checkpoint, tmp_path):
        out = tmp_path / "quant_nokd.npz"
        code = main(
            [
                "quantize", "--checkpoint", str(fp_checkpoint), "--out", str(out),
                "--no-kd", *FAST_DATA, *FAST_TRAIN,
            ]
        )
        assert code == 0 and out.exists()


class TestApproximate:
    def test_runs_and_saves(self, quant_checkpoint, tmp_path, capsys):
        out = tmp_path / "approx.npz"
        code = main(
            [
                "approximate",
                "--checkpoint", str(quant_checkpoint),
                "--multiplier", "truncated4",
                "--method", "approxkd_ge",
                "--out", str(out),
                *FAST_DATA,
                *FAST_TRAIN,
            ]
        )
        assert code == 0 and out.exists()
        assert "energy savings" in capsys.readouterr().out

    def test_rejects_fp_checkpoint(self, fp_checkpoint, capsys):
        code = main(
            [
                "approximate",
                "--checkpoint", str(fp_checkpoint),
                "--multiplier", "truncated4",
                *FAST_DATA,
                *FAST_TRAIN,
            ]
        )
        assert code == 1
        assert "quantized" in capsys.readouterr().err


class TestEvaluate:
    def test_fp_checkpoint(self, fp_checkpoint, capsys):
        assert main(["evaluate", "--checkpoint", str(fp_checkpoint), *FAST_DATA]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_with_multiplier(self, quant_checkpoint, capsys):
        code = main(
            [
                "evaluate", "--checkpoint", str(quant_checkpoint),
                "--multiplier", "truncated5", *FAST_DATA,
            ]
        )
        assert code == 0

    def test_multiplier_on_fp_checkpoint_fails(self, fp_checkpoint, capsys):
        code = main(
            [
                "evaluate", "--checkpoint", str(fp_checkpoint),
                "--multiplier", "truncated5", *FAST_DATA,
            ]
        )
        assert code == 1


class TestSweepAndResiliency:
    def test_sweep_prints_grid_and_saves(self, quant_checkpoint, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--checkpoint", str(quant_checkpoint),
                "--multipliers", "truncated3",
                "--methods", "normal",
                "--out", str(out),
                *FAST_DATA,
                *FAST_TRAIN,
            ]
        )
        assert code == 0 and out.exists()
        assert "truncated3" in capsys.readouterr().out

    def test_sweep_requires_quantized(self, fp_checkpoint, capsys):
        code = main(
            [
                "sweep", "--checkpoint", str(fp_checkpoint),
                "--multipliers", "truncated3", *FAST_DATA, *FAST_TRAIN,
            ]
        )
        assert code == 1

    def test_resiliency_lists_layers(self, quant_checkpoint, capsys):
        code = main(
            [
                "resiliency",
                "--checkpoint", str(quant_checkpoint),
                "--multiplier", "truncated5",
                *FAST_DATA,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "classifier" in out


class TestInspection:
    def test_multipliers_listing(self, capsys):
        assert main(["multipliers"]) == 0
        out = capsys.readouterr().out
        assert "truncated5" in out and "evoapprox249" in out

    def test_multipliers_extended(self, capsys):
        assert main(["multipliers", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "mitchell" in out and "drum3" in out

    def test_profile_biased(self, capsys):
        assert main(["profile", "--multiplier", "truncated5"]) == 0
        assert "f(y)" in capsys.readouterr().out

    def test_profile_unbiased(self, capsys):
        assert main(["profile", "--multiplier", "evoapprox228"]) == 0
        assert "STE" in capsys.readouterr().out

    def test_profile_method_flag_reaches_estimator(self, capsys):
        assert main(
            ["profile", "--multiplier", "truncated5", "--error-model-method", "montecarlo"]
        ) == 0
        assert "method montecarlo" in capsys.readouterr().out

    def test_zoo_ranks_registry(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "zoo.json"
        assert main(["zoo", "--top", "3", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "exact" in out  # the exact design always ranks first
        payload = json.loads(out_json.read_text())
        assert payload["entries"][0]["name"] == "exact"
        assert payload["entries"][0]["rank"] == 1

    def test_zoo_subset(self, capsys):
        assert main(["zoo", "--multipliers", "truncated3", "truncated5"]) == 0
        out = capsys.readouterr().out
        assert "truncated3" in out and "truncated5" in out
        assert "evoapprox249" not in out

    def test_missing_checkpoint_errors_cleanly(self, tmp_path, capsys):
        code = main(["evaluate", "--checkpoint", str(tmp_path / "none.npz"), *FAST_DATA])
        assert code == 1


class TestObservabilityFlags:
    def test_trace_metrics_and_reports(self, fp_checkpoint, tmp_path, capsys):
        import json

        log = tmp_path / "run.jsonl"
        trace = tmp_path / "trace.json"
        code = main(
            [
                "evaluate",
                "--checkpoint", str(fp_checkpoint),
                "--log-json", str(log),
                "--trace", str(trace),
                "--metrics",
                *FAST_DATA,
            ]
        )
        assert code == 0
        assert log.exists() and trace.exists()
        capsys.readouterr()

        # text report renders the metrics + trace sections
        assert main(["report", str(log)]) == 0
        text = capsys.readouterr().out
        assert "eval.batch_seconds" in text
        assert "quantile error" in text

        # --format json emits the full machine-readable RunSummary
        assert main(["report", str(log), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics_snapshots"] >= 1
        assert "eval.batch_seconds" in payload["latency_quantiles"]
        assert payload["trace"]["path"] == str(trace)

        # the trace subcommand summarises the exported file
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out and "eval" in out

    def test_log_rotation_flag(self, fp_checkpoint, tmp_path, capsys):
        from repro.obs import events as ev

        log = tmp_path / "rotated.jsonl"
        code = main(
            [
                "evaluate",
                "--checkpoint", str(fp_checkpoint),
                "--log-json", str(log),
                "--log-rotate-mb", "0.001",
                "--metrics",
                *FAST_DATA,
            ]
        )
        assert code == 0
        # 0.001 MB ≈ 1 KB: the run_start config alone forces a rotation,
        # and read_events reassembles the stream transparently
        records = ev.read_events(log)
        assert [r["type"] for r in records][0] == ev.RUN_START
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        assert "run " in capsys.readouterr().out
