"""Cross-process observability: span merge with parentage, exact metrics."""

import os

import pytest

from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.parallel import ParallelConfig, fork_available, map_workers

pytestmark = [pytest.mark.obs, pytest.mark.parallel]

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backend needs fork"
)


@pytest.fixture(autouse=True)
def clean_obs():
    tr.reset_tracing()
    met.reset_metrics()
    yield
    tr.disable_tracing()
    tr.reset_tracing()
    met.disable_metrics()
    met.reset_metrics()


def traced_work(i: int) -> int:
    """Worker body (module-level: process-picklable)."""
    with tr.span("work.item", item=i):
        met.observe("work.seconds", 0.001 * (i + 1))
        met.inc("work.items")
    return i * i


class TestProcessBackendSpans:
    @needs_fork
    def test_worker_spans_merge_with_correct_parentage(self):
        tr.enable_tracing()
        met.enable_metrics()
        with tr.span("dispatch"):
            results = map_workers(
                traced_work,
                list(range(4)),
                ParallelConfig(workers=2, backend="process"),
            )
        assert results == [0, 1, 4, 9]

        spans = tr.get_trace_recorder().spans()
        by_id = {s.span_id: s for s in spans}
        dispatch = next(s for s in spans if s.name == "dispatch")
        tasks = [s for s in spans if s.name == "parallel.task"]
        items = [s for s in spans if s.name == "work.item"]
        assert len(tasks) == 4 and len(items) == 4

        # every worker task parents onto the dispatch-site span, and every
        # work.item onto its surrounding parallel.task
        assert all(t.parent_id == dispatch.span_id for t in tasks)
        task_ids = {t.span_id for t in tasks}
        assert all(s.parent_id in task_ids for s in items)
        # no parent_id dangles outside the merged trace
        assert all(
            s.parent_id is None or s.parent_id in by_id for s in spans
        )
        # worker spans carry worker pids, not the parent's
        assert {s.pid for s in items} - {os.getpid()}
        assert sorted(s.attrs["item"] for s in items) == [0, 1, 2, 3]

    @needs_fork
    def test_worker_timestamps_are_wall_anchored(self):
        tr.enable_tracing()
        with tr.span("dispatch"):
            map_workers(
                traced_work,
                list(range(2)),
                ParallelConfig(workers=2, backend="process"),
            )
        spans = tr.get_trace_recorder().spans()
        dispatch = next(s for s in spans if s.name == "dispatch")
        for task in (s for s in spans if s.name == "parallel.task"):
            # worker clocks share the wall anchor: tasks start after the
            # dispatch span opened and end before it closed
            assert task.start_ns >= dispatch.start_ns
            assert task.end_ns <= dispatch.end_ns

    @needs_fork
    def test_capture_obs_false_ships_no_spans(self):
        tr.enable_tracing()
        with tr.span("dispatch"):
            map_workers(
                traced_work,
                list(range(2)),
                ParallelConfig(workers=2, backend="process", capture_obs=False),
            )
        names = [s.name for s in tr.get_trace_recorder().spans()]
        assert "work.item" not in names


class TestProcessBackendMetrics:
    @needs_fork
    def test_histogram_merge_matches_serial_exactly(self):
        met.enable_metrics()
        map_workers(
            traced_work,
            list(range(6)),
            ParallelConfig(workers=2, backend="process"),
        )
        merged = met.get_metrics().snapshot()

        met.reset_metrics()
        map_workers(traced_work, list(range(6)), ParallelConfig(workers=1))
        serial = met.get_metrics().snapshot()

        assert merged["counters"]["work.items"] == 6
        assert merged["counters"] == serial["counters"]
        m_hist, s_hist = (
            snap["histograms"]["work.seconds"] for snap in (merged, serial)
        )
        assert m_hist["buckets"] == s_hist["buckets"]
        assert m_hist["count"] == s_hist["count"] == 6
        assert m_hist["sum"] == pytest.approx(s_hist["sum"])
        assert m_hist["min"] == s_hist["min"]
        assert m_hist["max"] == s_hist["max"]

    @needs_fork
    def test_metrics_disabled_ships_nothing(self):
        map_workers(
            traced_work,
            list(range(2)),
            ParallelConfig(workers=2, backend="process"),
        )
        assert met.get_metrics().snapshot()["counters"] == {}


class TestThreadBackend:
    def test_thread_spans_parent_on_dispatch(self):
        tr.enable_tracing()
        with tr.span("dispatch"):
            map_workers(
                traced_work,
                list(range(3)),
                ParallelConfig(workers=2, backend="thread"),
            )
        spans = tr.get_trace_recorder().spans()
        dispatch = next(s for s in spans if s.name == "dispatch")
        tasks = [s for s in spans if s.name == "parallel.task"]
        assert len(tasks) == 3
        assert all(t.parent_id == dispatch.span_id for t in tasks)
        # threads share the process: every span carries the parent pid
        assert {s.pid for s in spans} == {os.getpid()}

    def test_thread_metrics_record_directly(self):
        met.enable_metrics()
        map_workers(
            traced_work,
            list(range(5)),
            ParallelConfig(workers=2, backend="thread"),
        )
        snap = met.get_metrics().snapshot()
        assert snap["counters"]["work.items"] == 5
        assert snap["histograms"]["work.seconds"]["count"] == 5
