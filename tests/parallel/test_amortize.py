"""The small-work amortization guard: fan-out only when it can win.

BENCH_pr3.json measured the paper-default Monte-Carlo profile running
~3.5x *slower* on 4 workers than serially on a one-core container —
dispatch and fork cost swamped the work. ``amortized_workers`` is the
fix; these tests pin its policy and the call sites that honour it.
"""

import numpy as np
import pytest

from repro import parallel as par
from repro.errors import ConfigError
from repro.ge import montecarlo

pytestmark = pytest.mark.parallel


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_CPUS", raising=False)
    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)


class TestCpuParallelism:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "6")
        assert par.cpu_parallelism() == 6

    def test_override_is_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "0")
        assert par.cpu_parallelism() == 1

    def test_bad_override_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "many")
        with pytest.raises(ConfigError):
            par.cpu_parallelism()

    def test_default_is_positive(self):
        assert par.cpu_parallelism() >= 1


class TestAmortizedWorkers:
    def test_single_worker_requests_stay_serial(self):
        assert par.amortized_workers(1, tasks=100) == 1
        assert par.amortized_workers(None, tasks=100) == 1

    def test_one_core_machines_stay_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "1")
        assert par.amortized_workers(4, tasks=100) == 1

    def test_too_few_tasks_stay_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "8")
        assert par.amortized_workers(4, tasks=1) == 1
        assert par.amortized_workers(4, tasks=2) == 4

    def test_small_work_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "8")
        assert par.amortized_workers(4, tasks=50, work=1000.0, min_work=2**25) == 1
        assert par.amortized_workers(4, tasks=50, work=2.0**26, min_work=2**25) == 4

    def test_force_parallel_bypasses_every_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "1")
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        assert par.amortized_workers(4, tasks=1, work=0.0, min_work=1e9) == 4

    def test_force_parallel_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "1")
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "0")
        assert par.amortized_workers(4, tasks=100) == 1


class TestMonteCarloFallback:
    def test_default_profile_runs_serially_even_with_workers(self, monkeypatch):
        # The paper-default profile (50 sims of 64x72x16 MACs) is below the
        # amortization threshold: workers=4 must not touch the pool.
        monkeypatch.setenv("REPRO_CPUS", "8")

        def _no_pool(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("map_workers must not run for small MC profiles")

        monkeypatch.setattr(montecarlo, "map_workers", _no_pool)
        profile = montecarlo.profile_multiplier_error(
            _mult(), num_simulations=50, rng=0, workers=4
        )
        assert profile.y.size == 50 * 64 * 16

    def test_large_profiles_still_fan_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "8")
        calls = []
        real = montecarlo.map_workers

        def _spy(fn, items, config, **kwargs):
            calls.append(config.workers)
            return real(fn, items, config, **kwargs)

        monkeypatch.setattr(montecarlo, "map_workers", _spy)
        montecarlo.profile_multiplier_error(
            _mult(), num_simulations=8, gemm_rows=512, reduce_dim=144, out_dim=64,
            rng=0, workers=2,
        )
        assert calls == [2]

    def test_serial_and_guarded_results_are_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPUS", "1")
        serial = montecarlo.profile_multiplier_error(_mult(), num_simulations=7, rng=5)
        guarded = montecarlo.profile_multiplier_error(
            _mult(), num_simulations=7, rng=5, workers=4
        )
        np.testing.assert_array_equal(serial.y, guarded.y)
        np.testing.assert_array_equal(serial.eps, guarded.eps)


def _mult():
    from repro.approx import get_multiplier

    return get_multiplier("truncated4")
