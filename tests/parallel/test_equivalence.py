"""Parallel execution must not change results — only wall time.

Every parallelised hot path is checked against its serial twin on a fixed
seed: the sweep point-for-point, Monte-Carlo profiling bit-for-bit, and
the chunked GEMM bitwise.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.approx.gemm import ROW_BLOCK, approx_matmul
from repro.ge import estimate_error_model, profile_multiplier_error
from repro.parallel import fork_available
from repro.pipeline import run_sweep
from repro.train import TrainConfig

pytestmark = pytest.mark.parallel

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)


@pytest.fixture(autouse=True)
def _force_parallel(monkeypatch):
    """Bypass the small-work amortization guard (repro.parallel).

    These tests assert parallel-vs-serial equivalence; on a single-core CI
    runner the guard would silently serialise every 'parallel' run and the
    assertions would compare the serial path against itself.
    """
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


def _comparable(point) -> dict:
    """A SweepPoint as a dict minus fields that legitimately vary per run."""
    payload = asdict(point)
    payload.pop("wall_time")  # timing is the one thing parallelism changes
    return payload


@pytest.mark.skipif(not fork_available(), reason="parallel sweep needs fork")
class TestSweepEquivalence:
    def test_parallel_sweep_matches_serial_point_for_point(
        self, quantized_model, tiny_dataset
    ):
        kwargs = dict(
            multipliers=["truncated3", "truncated4"],
            methods=("normal",),
            train_config=FAST,
        )
        serial = run_sweep(quantized_model, tiny_dataset, **kwargs)
        parallel = run_sweep(quantized_model, tiny_dataset, workers=4, **kwargs)
        assert len(parallel.points) == len(serial.points) == 2
        for expected, got in zip(serial.points, parallel.points):
            assert _comparable(got) == _comparable(expected)

    def test_parallel_sweep_persists_and_resumes(
        self, quantized_model, tiny_dataset, tmp_path
    ):
        state = tmp_path / "sweep.partial.json"
        first = run_sweep(
            quantized_model,
            tiny_dataset,
            ["truncated3"],
            methods=("normal",),
            train_config=FAST,
            state_path=state,
            workers=2,
        )
        assert state.exists()
        resumed = run_sweep(
            quantized_model,
            tiny_dataset,
            ["truncated3", "truncated4"],
            methods=("normal",),
            train_config=FAST,
            state_path=state,
            resume=True,
            workers=2,
        )
        assert len(resumed.points) == 2
        # the already-completed cell was reloaded, not re-run
        assert _comparable(resumed.points[0]) == _comparable(first.points[0])


class TestMonteCarloEquivalence:
    def test_parallel_profile_is_bit_for_bit_serial(self):
        mult = get_multiplier("truncated4")
        serial = profile_multiplier_error(mult, num_simulations=11, rng=3)
        parallel = profile_multiplier_error(mult, num_simulations=11, rng=3, workers=4)
        np.testing.assert_array_equal(serial.y, parallel.y)
        np.testing.assert_array_equal(serial.eps, parallel.eps)

    def test_fitted_error_model_is_unchanged(self):
        mult = get_multiplier("truncated5")
        serial = estimate_error_model(mult, rng=0)
        parallel = estimate_error_model(mult, rng=0, workers=3)
        assert parallel.k == serial.k
        assert parallel.c == serial.c
        assert parallel.lower == serial.lower
        assert parallel.upper == serial.upper

    def test_generator_input_also_supported(self):
        # parent-side sampling means an externally-owned generator stream
        # still parallelises deterministically
        mult = get_multiplier("truncated3")
        serial = profile_multiplier_error(
            mult, num_simulations=6, rng=np.random.default_rng(9)
        )
        parallel = profile_multiplier_error(
            mult, num_simulations=6, rng=np.random.default_rng(9), workers=2
        )
        np.testing.assert_array_equal(serial.y, parallel.y)
        np.testing.assert_array_equal(serial.eps, parallel.eps)


class TestGemmEquivalence:
    def test_chunked_gemm_bitwise_identical(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-127, 128, size=(3 * ROW_BLOCK + 17, 72)).astype(np.int32)
        b = rng.integers(-7, 8, size=(72, 24)).astype(np.int32)
        mult = get_multiplier("truncated4")
        serial = approx_matmul(a, b, mult, workers=1)
        for workers in (2, 4, 7):
            np.testing.assert_array_equal(
                approx_matmul(a, b, mult, workers=workers), serial
            )

    def test_small_inputs_stay_on_the_serial_path(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-127, 128, size=(ROW_BLOCK // 2, 16)).astype(np.int32)
        b = rng.integers(-7, 8, size=(16, 8)).astype(np.int32)
        mult = get_multiplier("truncated3")
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, workers=8), approx_matmul(a, b, mult)
        )

    def test_exact_multiplier_unaffected(self):
        from repro.approx import ExactMultiplier

        rng = np.random.default_rng(2)
        a = rng.integers(-127, 128, size=(2 * ROW_BLOCK, 12)).astype(np.int32)
        b = rng.integers(-7, 8, size=(12, 6)).astype(np.int32)
        expected = (a.astype(np.int64) @ b.astype(np.int64))
        np.testing.assert_array_equal(
            approx_matmul(a, b, ExactMultiplier(), workers=4), expected
        )
