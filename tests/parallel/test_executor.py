"""The repro.parallel executor layer: ordering, determinism, capture."""

import pytest

from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs import profiling as prof
from repro.parallel import (
    BACKENDS,
    ParallelConfig,
    chunked,
    effective_workers,
    fork_available,
    get_default_config,
    map_workers,
    resolve_backend,
    set_default_config,
)

pytestmark = pytest.mark.parallel

ALL_BACKENDS = pytest.mark.parametrize(
    "backend", ["serial", "thread", "process"] if fork_available() else ["serial", "thread"]
)


# module-level so the process backend can pickle them
def _square(x):
    return x * x


def _draw(x, rng):
    return (x, float(rng.normal()))


def _emit_and_time(x):
    obs_events.get_event_log().eval(f"task{x}", 0.25)
    with prof.timer("executor.task"):
        pass
    return x


def _maybe_boom(x):
    if x == 2:
        raise ValueError("injected")
    return x


@pytest.fixture
def events():
    log = obs_events.EventLog(run_id="test")
    sink = log.add_sink(obs_events.CollectingSink())
    previous = obs_events.set_event_log(log)
    yield sink
    obs_events.set_event_log(previous)


class TestConfig:
    def test_defaults_are_serial(self):
        assert get_default_config().workers == 1
        assert resolve_backend(get_default_config()) == "serial"
        assert effective_workers() == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParallelConfig(workers=0)
        with pytest.raises(ConfigError):
            ParallelConfig(backend="gpu")
        assert set(BACKENDS) >= {"auto", "process", "thread", "serial"}

    def test_with_workers(self):
        config = ParallelConfig(workers=1, backend="thread")
        assert config.with_workers(None) is config
        assert config.with_workers(3).workers == 3
        assert config.with_workers(3).backend == "thread"

    def test_serial_backend_wins_over_workers(self):
        assert resolve_backend(ParallelConfig(workers=8, backend="serial")) == "serial"

    def test_set_default_round_trips(self):
        previous = set_default_config(ParallelConfig(workers=5))
        try:
            assert effective_workers() == 5
            assert effective_workers(2) == 2
        finally:
            set_default_config(previous)
        assert effective_workers() == 1


class TestMapWorkers:
    @ALL_BACKENDS
    def test_results_in_item_order(self, backend):
        config = ParallelConfig(workers=4, backend=backend)
        assert map_workers(_square, range(9), config) == [x * x for x in range(9)]

    @ALL_BACKENDS
    def test_rng_spawning_is_schedule_independent(self, backend):
        config = ParallelConfig(workers=4, backend=backend)
        serial = map_workers(_draw, range(8), ParallelConfig(workers=1), rng=7)
        assert map_workers(_draw, range(8), config, rng=7) == serial
        # per-task streams are distinct
        assert len({value for _, value in serial}) == 8

    def test_on_result_sees_every_index(self):
        seen = {}
        map_workers(
            _square,
            range(6),
            ParallelConfig(workers=3, backend="thread"),
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {i: i * i for i in range(6)}

    @ALL_BACKENDS
    def test_exceptions_propagate(self, backend):
        with pytest.raises(ValueError, match="injected"):
            map_workers(_maybe_boom, range(4), ParallelConfig(workers=2, backend=backend))

    def test_empty_items(self):
        assert map_workers(_square, [], ParallelConfig(workers=4, backend="thread")) == []


@pytest.mark.skipif(not fork_available(), reason="process backend needs fork")
class TestWorkerCapture:
    def test_worker_events_merge_into_parent_log(self, events):
        map_workers(_emit_and_time, range(5), ParallelConfig(workers=2, backend="process"))
        evals = [r for r in events.records if r["type"] == "eval"]
        assert {r["name"] for r in evals} == {f"task{i}" for i in range(5)}
        assert all("worker" in r for r in evals)
        # the parent restamps the envelope with its own run id and seq
        assert {r["run"] for r in evals} == {"test"}

    def test_worker_profile_merges_into_parent(self, events):
        prof.reset_profiling()
        prof.enable_profiling()
        try:
            map_workers(
                _emit_and_time, range(4), ParallelConfig(workers=2, backend="process")
            )
            stat = prof.profile_report().timer("executor.task")
            assert stat is not None and stat.calls == 4
        finally:
            prof.disable_profiling()
            prof.reset_profiling()

    def test_capture_disabled_skips_merge(self, events):
        config = ParallelConfig(workers=2, backend="process", capture_obs=False)
        out = map_workers(_emit_and_time, range(3), config)
        assert out == [0, 1, 2]
        assert [r for r in events.records if r["type"] == "eval"] == []


class TestChunked:
    def test_partitions_preserve_order(self):
        assert chunked(list(range(10)), 3) == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert sum(chunked(list(range(17)), 4), []) == list(range(17))

    def test_no_empty_chunks(self):
        assert chunked([1, 2], 8) == [[1], [2]]
        assert chunked([], 4) == []
