"""Weight-stationary kernel plans: bitwise equivalence, pooling, caching.

The plan path (``repro.approx.plan``) must be bitwise identical to the
uncached reference GEMM in every precision regime — its whole correctness
argument is that reordering exact integer sums cannot change them.
"""

import copy
import pickle

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.approx.gemm import ROW_BLOCK, approx_matmul
from repro.approx.plan import (
    GemmPlan,
    PlanCache,
    WorkspacePool,
    build_plan,
    cache_stats,
    plan_cache_disabled,
    plan_caching_enabled,
    repair_plan,
    workspace_pool,
)
from repro.errors import MultiplierError, ShapeError
from repro.obs import profiling as prof


def _random_operands(rng, multiplier, m=37, k=29, n=11):
    xhi = 2 ** (multiplier.x_bits - 1) - 1
    whi = 2 ** (multiplier.w_bits - 1) - 1
    a = rng.integers(-xhi, xhi + 1, size=(m, k), dtype=np.int32)
    b = rng.integers(-whi, whi + 1, size=(k, n), dtype=np.int32)
    return a, b


class TestPlanBitwiseEquivalence:
    @pytest.mark.parametrize(
        "name", ["truncated1", "truncated3", "truncated5", "evoapprox29", "evoapprox470"]
    )
    def test_plan_matches_uncached_path(self, name):
        rng = np.random.default_rng(0)
        mult = get_multiplier(name)
        a, b = _random_operands(rng, mult)
        plan = build_plan(b, mult)
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, plan=plan), approx_matmul(a, b, mult)
        )

    def test_float64_regime_matches(self):
        # K large enough that max|product|*K crosses 2^23, forcing the
        # float64 BLAS tier in both paths.
        mult = get_multiplier("truncated1")
        k = int(2.0**23 / float(np.abs(mult.lut).max())) + 10
        rng = np.random.default_rng(1)
        a, b = _random_operands(rng, mult, m=3, k=k, n=2)
        plan = build_plan(b, mult)
        assert not plan.use_f32
        assert plan.dtype == np.dtype(np.float64)
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, plan=plan), approx_matmul(a, b, mult)
        )

    def test_sparse_weights_skip_inactive_values(self):
        # Only two active magnitudes -> the plan gathers 2 LUT columns.
        mult = get_multiplier("truncated4")
        rng = np.random.default_rng(2)
        b = rng.choice(np.array([-5, 0, 0, 3], dtype=np.int32), size=(20, 6))
        a = rng.integers(-127, 128, size=(9, 20), dtype=np.int32)
        plan = build_plan(b, mult)
        assert plan.num_values == 2
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, plan=plan), approx_matmul(a, b, mult)
        )

    def test_all_zero_weights_yield_zeros(self):
        mult = get_multiplier("truncated3")
        b = np.zeros((12, 5), dtype=np.int32)
        a = np.arange(-10, 14, dtype=np.int32).reshape(2, 12)
        plan = build_plan(b, mult)
        assert plan.num_values == 0
        out = approx_matmul(a, b, mult, plan=plan)
        np.testing.assert_array_equal(out, np.zeros((2, 5), dtype=np.int64))
        assert out.dtype == np.int64

    def test_chunked_execution_with_plan_is_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        mult = get_multiplier("truncated4")
        rng = np.random.default_rng(3)
        a, b = _random_operands(rng, mult, m=2 * ROW_BLOCK + 13, k=24, n=8)
        plan = build_plan(b, mult)
        serial = approx_matmul(a, b, mult, plan=plan, workers=1)
        np.testing.assert_array_equal(serial, approx_matmul(a, b, mult))
        for workers in (2, 3):
            np.testing.assert_array_equal(
                approx_matmul(a, b, mult, plan=plan, workers=workers), serial
            )

    def test_plan_execution_is_instrumented(self):
        mult = get_multiplier("truncated4")
        rng = np.random.default_rng(4)
        a, b = _random_operands(rng, mult, m=8, k=12, n=4)
        with prof.profiled() as report:
            plan = build_plan(b, mult)
            approx_matmul(a, b, mult, plan=plan)
        assert report.timer("approx.plan_build").calls == 1
        assert report.counter("approx.plan_built").calls == 1
        assert report.timer("approx.lut_gather").calls == 1
        assert report.timer("approx.matmul_blas").calls == 1
        gathered = report.counter("approx.lut_gathered_values")
        assert gathered.calls == plan.num_values
        # bytes reflect the plan dtype, not a hardcoded 8 bytes/element
        assert gathered.bytes == 8 * 12 * plan.num_values * plan.dtype.itemsize


class TestPlanValidation:
    def test_shape_mismatch_is_rejected(self):
        mult = get_multiplier("truncated3")
        rng = np.random.default_rng(0)
        a, b = _random_operands(rng, mult)
        plan = build_plan(b, mult)
        other = np.zeros((b.shape[0], b.shape[1] + 1), dtype=np.int32)
        with pytest.raises(ShapeError):
            approx_matmul(a, other, mult, plan=plan)

    def test_build_rejects_float_weights(self):
        with pytest.raises(MultiplierError):
            build_plan(np.zeros((4, 4), dtype=np.float32), get_multiplier("truncated3"))

    def test_build_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            build_plan(np.zeros((4,), dtype=np.int32), get_multiplier("truncated3"))

    def test_build_rejects_out_of_range_magnitudes(self):
        mult = get_multiplier("truncated3")
        whi = 2 ** (mult.w_bits - 1) - 1
        b = np.full((3, 3), whi + 1, dtype=np.int32)
        with pytest.raises(MultiplierError):
            build_plan(b, mult)

    def test_execute_rejects_wrong_reduce_dim(self):
        mult = get_multiplier("truncated3")
        plan = build_plan(np.ones((6, 2), dtype=np.int32), mult)
        with pytest.raises(ShapeError):
            plan.execute(np.zeros((3, 7), dtype=np.int32))


class TestWorkspacePool:
    def test_round_trip_reuses_buffer(self):
        pool = WorkspacePool()
        buf = pool.take(100, np.float32)
        assert buf.size >= 100
        pool.give(buf)
        again = pool.take(80, np.float32)
        assert again is buf
        assert pool.stats()["pooled_buffers"] == 0

    def test_sizes_round_to_powers_of_two(self):
        pool = WorkspacePool()
        assert pool.take(100, np.float64).size == 128
        assert pool.take(1, np.float64).size == 1

    def test_dtypes_are_segregated(self):
        pool = WorkspacePool()
        f32 = pool.take(64, np.float32)
        pool.give(f32)
        f64 = pool.take(64, np.float64)
        assert f64 is not f32
        assert f64.dtype == np.float64

    def test_capacity_cap_drops_excess_buffers(self):
        pool = WorkspacePool(max_buffers=2)
        bufs = [pool.take(2 ** (4 + i), np.float32) for i in range(4)]
        for buf in bufs:
            pool.give(buf)
        assert pool.stats()["pooled_buffers"] == 2

    def test_clear_resets_accounting(self):
        pool = WorkspacePool()
        pool.give(pool.take(32, np.float32))
        pool.clear()
        stats = pool.stats()
        assert stats == {"pooled_buffers": 0, "allocated_bytes": 0}

    def test_process_pool_is_exercised_by_plans(self):
        pool = workspace_pool()
        mult = get_multiplier("truncated4")
        rng = np.random.default_rng(5)
        a, b = _random_operands(rng, mult, m=6, k=10, n=3)
        plan = build_plan(b, mult)
        plan.execute(a)
        before = pool.stats()["allocated_bytes"]
        for _ in range(5):  # repeated batches must not grow the pool
            plan.execute(a)
        assert pool.stats()["allocated_bytes"] == before


class TestPlanCache:
    def test_hit_requires_same_key_and_multiplier(self):
        mult = get_multiplier("truncated3")
        other = get_multiplier("truncated4")
        cache = PlanCache()
        builds = []

        def build():
            builds.append(1)
            return object()

        first = cache.get("linear", (0, 0), mult, build)
        assert cache.get("linear", (0, 0), mult, build) is first
        assert len(builds) == 1
        # key change -> rebuild
        second = cache.get("linear", (1, 0), mult, build)
        assert second is not first
        # multiplier swap -> rebuild even with an equal key
        cache.get("linear", (1, 0), other, build)
        assert len(builds) == 3
        assert len(cache) == 1

    def test_disabled_caching_bypasses_storage(self):
        cache = PlanCache()
        builds = []
        with plan_cache_disabled():
            assert not plan_caching_enabled()
            cache.get("t", (0,), None, lambda: builds.append(1))
            cache.get("t", (0,), None, lambda: builds.append(1))
        assert plan_caching_enabled()
        assert len(builds) == 2
        assert len(cache) == 0

    def test_counters_track_hits_misses_and_bypasses(self):
        cache = PlanCache()
        with prof.profiled():
            cache.get("t", (0,), None, object)
            cache.get("t", (0,), None, object)
            cache.get("t", (1,), None, object)
            with plan_cache_disabled():
                cache.get("t", (1,), None, object)
            stats = cache_stats()
        assert stats["plan_cache_miss"] == 2
        assert stats["plan_cache_hit"] == 1
        assert stats["plan_cache_bypass"] == 1

    def test_clones_and_pickles_start_empty(self):
        cache = PlanCache()
        cache.get("t", (0,), None, object)
        assert len(copy.deepcopy(cache)) == 0
        assert len(pickle.loads(pickle.dumps(cache))) == 0
        assert len(cache) == 1

    def test_plan_payload_survives_round_trips(self):
        # GemmPlan itself is never pickled (the cache drops), but its
        # arrays must be reusable after the owning layer is deep-copied.
        mult = get_multiplier("truncated3")
        rng = np.random.default_rng(6)
        a, b = _random_operands(rng, mult, m=4, k=8, n=3)
        plan = build_plan(b, mult)
        expected = plan.execute(a)
        np.testing.assert_array_equal(plan.execute(a), expected)
        assert isinstance(plan, GemmPlan)


class TestRepairPlan:
    """In-place plan repair after sparse weight-code drift.

    A successful repair must leave the plan bitwise-equivalent to a fresh
    build for the new operand; anything the repair cannot express returns
    False and leaves the caller to rebuild.
    """

    def _check_repaired(self, rng, mult, plan, old_b, new_b):
        assert repair_plan(plan, old_b, new_b)
        xhi = 2 ** (mult.x_bits - 1) - 1
        a = rng.integers(-xhi, xhi + 1, size=(9, old_b.shape[0]), dtype=np.int32)
        np.testing.assert_array_equal(plan.execute(a), approx_matmul(a, new_b, mult))
        np.testing.assert_array_equal(
            plan.execute(a), build_plan(new_b, mult).execute(a)
        )

    def test_sign_flip_same_magnitude(self, rng):
        mult = get_multiplier("truncated3")
        _, b = _random_operands(rng, mult, k=8, n=5)
        plan = build_plan(b, mult)
        new_b = b.copy()
        nz = np.argwhere(new_b != 0)[0]
        new_b[tuple(nz)] = -new_b[tuple(nz)]
        self._check_repaired(rng, mult, plan, b, new_b)

    def test_magnitude_change_to_known_value(self, rng):
        mult = get_multiplier("truncated4")
        b = np.array([[1, -2], [3, 4], [-5, 6]], dtype=np.int32)
        plan = build_plan(b, mult)
        new_b = b.copy()
        new_b[0, 0] = 4  # 4 is already an active value
        self._check_repaired(rng, mult, plan, b, new_b)

    def test_entry_vanishing_to_zero(self, rng):
        mult = get_multiplier("truncated4")
        b = np.array([[1, -2], [3, 4], [-5, 6]], dtype=np.int32)
        plan = build_plan(b, mult)
        new_b = b.copy()
        new_b[1, 1] = 0  # the slot row goes all-zero, contributing 0.0
        self._check_repaired(rng, mult, plan, b, new_b)

    def test_unchanged_operand_is_trivially_repaired(self, rng):
        mult = get_multiplier("truncated3")
        _, b = _random_operands(rng, mult, k=6, n=4)
        plan = build_plan(b, mult)
        h_before = plan.big_h.copy()
        assert repair_plan(plan, b, b.copy())
        np.testing.assert_array_equal(plan.big_h, h_before)

    def test_new_magnitude_declines(self):
        mult = get_multiplier("truncated4")
        b = np.array([[1, 2], [2, 1]], dtype=np.int32)
        plan = build_plan(b, mult)
        new_b = b.copy()
        new_b[0, 0] = 7  # magnitude 7 has no slot in this plan
        assert not repair_plan(plan, b, new_b)

    def test_shape_mismatch_declines(self, rng):
        mult = get_multiplier("truncated3")
        _, b = _random_operands(rng, mult, k=6, n=4)
        plan = build_plan(b, mult)
        assert not repair_plan(plan, b[:4], b[:4].copy())

    def test_all_zero_plan_declines(self):
        mult = get_multiplier("truncated4")
        b = np.zeros((3, 2), dtype=np.int32)
        plan = build_plan(b, mult)
        new_b = b.copy()
        new_b[0, 0] = 1
        assert not repair_plan(plan, b, new_b)

    def test_precomputed_changed_indices_match_full_diff(self, rng):
        mult = get_multiplier("truncated4")
        _, b = _random_operands(rng, mult, k=10, n=6)
        while not (b != 0).any():  # pragma: no cover - astronomically unlikely
            _, b = _random_operands(rng, mult, k=10, n=6)
        new_b = b.copy()
        nz = np.argwhere(new_b != 0)[:3]
        for idx in nz:
            new_b[tuple(idx)] = -new_b[tuple(idx)]
        plan_full = build_plan(b, mult)
        plan_pre = build_plan(b, mult)
        assert repair_plan(plan_full, b, new_b)
        assert repair_plan(plan_pre, b, new_b, changed=np.nonzero(b != new_b))
        np.testing.assert_array_equal(plan_full.big_h, plan_pre.big_h)
