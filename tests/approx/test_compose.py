"""Composed approximation: multiplier + truncated accumulation."""

import numpy as np
import pytest

from repro.approx import (
    ExactMultiplier,
    compose_truncated_accumulation,
    get_multiplier,
    mean_relative_error,
)
from repro.errors import MultiplierError


class TestCompose:
    def test_zero_depth_is_identity(self):
        mult = get_multiplier("truncated3")
        assert compose_truncated_accumulation(mult, 0) is mult

    def test_composed_lut_is_multiple_of_2t(self):
        composed = compose_truncated_accumulation(ExactMultiplier(), 3)
        assert (composed.lut % 8 == 0).all()

    def test_name_records_composition(self):
        composed = compose_truncated_accumulation(get_multiplier("evoapprox29"), 2)
        assert composed.name == "evoapprox29+acc2"

    def test_error_increases_with_composition(self):
        base = get_multiplier("evoapprox29")
        composed = compose_truncated_accumulation(base, 4)
        assert mean_relative_error(composed) > mean_relative_error(base)

    def test_savings_increase(self):
        base = get_multiplier("truncated3")
        composed = compose_truncated_accumulation(base, 2)
        assert composed.energy_savings > base.energy_savings

    def test_exact_plus_accumulator_equals_result_truncation(self):
        """Exact multiplier + t-LSB accumulator == masking product LSBs."""
        composed = compose_truncated_accumulation(ExactMultiplier(), 2)
        a = np.arange(256)[:, None]
        b = np.arange(16)[None, :]
        np.testing.assert_array_equal(composed.lut, (a * b) & ~3)

    def test_out_of_range_depth_rejected(self):
        with pytest.raises(MultiplierError):
            compose_truncated_accumulation(ExactMultiplier(), 12)

    def test_composed_works_in_gemm(self, rng):
        from repro.approx import approx_matmul

        composed = compose_truncated_accumulation(get_multiplier("truncated2"), 2)
        a = rng.integers(-127, 128, size=(5, 8)).astype(np.int32)
        b = rng.integers(-7, 8, size=(8, 3)).astype(np.int32)
        out = approx_matmul(a, b, composed)
        assert out.shape == (5, 3)
