"""MRE metric (Eq. 14), energy model and the multiplier registry."""

import numpy as np
import pytest

from repro.approx import (
    PAPER_MRE,
    ExactMultiplier,
    Multiplier,
    available_multipliers,
    error_bias_ratio,
    exact_lut,
    get_multiplier,
    max_absolute_error,
    mean_error,
    mean_relative_error,
    network_energy,
    paper_mre,
)
from repro.errors import MultiplierError


class TestMRE:
    def test_exact_is_zero(self):
        assert mean_relative_error(ExactMultiplier()) == 0.0

    def test_manual_small_case(self):
        """Verify Eq. 14 on a hand-computable 2x2-bit multiplier."""
        lut = np.array([[0, 0, 0, 0], [0, 1, 2, 3], [0, 2, 4, 6], [0, 3, 6, 8]], dtype=np.int32)
        # Only (3,3) wrong: |9-8|/9. Mean over 16 pairs.
        m = Multiplier("toy", lut, x_bits=2, w_bits=2)
        assert mean_relative_error(m) == pytest.approx((1 / 9) / 16)

    def test_constant_offset_error(self):
        lut = exact_lut() + 1
        m = Multiplier("offset", lut.astype(np.int32))
        assert mean_error(m) == pytest.approx(1.0)
        assert max_absolute_error(m) == 1

    def test_bias_ratio_extremes(self):
        one_sided = Multiplier("low", np.maximum(exact_lut() - 2, 0).astype(np.int32))
        assert error_bias_ratio(one_sided) > 0.9


class TestEnergy:
    def test_exact_network_has_no_savings(self):
        report = network_energy(1_000_000, ExactMultiplier())
        assert report.savings == 0.0
        assert report.total_relative_energy == 1.0

    def test_savings_equal_multiplier_savings_without_adders(self):
        m = get_multiplier("truncated5")
        report = network_energy(41_000_000, m)
        assert report.savings_percent == pytest.approx(38.0)

    def test_adder_fraction_dilutes_savings(self):
        m = get_multiplier("truncated5")
        diluted = network_energy(1000, m, adder_fraction=0.5)
        assert diluted.savings == pytest.approx(0.19)

    def test_validation(self):
        with pytest.raises(ValueError):
            network_energy(100, ExactMultiplier(), adder_fraction=1.5)
        with pytest.raises(ValueError):
            network_energy(-1, ExactMultiplier())


class TestRegistry:
    def test_all_paper_multipliers_available(self):
        names = available_multipliers()
        assert "exact" in names
        for t in range(1, 6):
            assert f"truncated{t}" in names
        for ident in (470, 29, 111, 104, 469, 228, 145, 249):
            assert f"evoapprox{ident}" in names

    def test_get_multiplier_cached(self):
        assert get_multiplier("truncated3") is get_multiplier("truncated3")

    def test_case_insensitive(self):
        assert get_multiplier("Truncated3").name == "truncated3"

    def test_unknown_rejected(self):
        with pytest.raises(MultiplierError):
            get_multiplier("booth16")
        with pytest.raises(MultiplierError):
            get_multiplier("truncatedX")

    def test_paper_mre_lookup(self):
        assert paper_mre("truncated5") == pytest.approx(0.198)
        assert paper_mre("exact") is None
        assert set(PAPER_MRE) >= {"truncated1", "evoapprox249"}

    def test_every_registered_multiplier_instantiates(self):
        for name in available_multipliers():
            m = get_multiplier(name)
            assert m.lut.shape == (256, 16)
