"""Bias-corrected truncated multipliers (ablation of the paper's
"without bias correction" choice)."""

import numpy as np
import pytest

from repro.approx import (
    BiasCorrectedTruncatedMultiplier,
    TruncatedMultiplier,
    error_bias_ratio,
    get_multiplier,
    mean_error,
)
from repro.ge import estimate_error_model


class TestBiasCorrection:
    @pytest.mark.parametrize("t", [3, 4, 5])
    def test_correction_removes_bias(self, t):
        plain = TruncatedMultiplier(t)
        corrected = BiasCorrectedTruncatedMultiplier(t)
        assert error_bias_ratio(corrected) < 0.2
        assert error_bias_ratio(plain) == pytest.approx(1.0)
        assert abs(mean_error(corrected)) < abs(mean_error(plain))

    def test_zero_operands_stay_zero(self):
        m = BiasCorrectedTruncatedMultiplier(5)
        assert (m.lut[0, :] == 0).all()
        assert (m.lut[:, 0] == 0).all()

    def test_registry_name(self):
        assert get_multiplier("truncated4bc").name == "truncated4bc"
        assert get_multiplier("truncated4bc") is get_multiplier("TRUNCATED4BC")

    def test_corrected_error_model_near_constant_slope(self):
        """Removing the bias flattens the fitted error slope relative to the
        uncorrected multiplier (the mechanism GE exploits disappears)."""
        plain = estimate_error_model(get_multiplier("truncated5"), rng=0)
        corrected = estimate_error_model(get_multiplier("truncated5bc"), rng=0)
        assert abs(corrected.k) < abs(plain.k)

    def test_savings_slightly_below_plain(self):
        assert (
            BiasCorrectedTruncatedMultiplier(5).energy_savings
            < TruncatedMultiplier(5).energy_savings
        )
