"""GEMM backend dispatch: registry, selection precedence, bitwise contract.

Backends may only change *how* a result is computed, never the result:
every backend either produces the bitwise-identical answer or declines
and the caller falls back to the tiered reference.
"""

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.approx.backend import (
    GemmBackend,
    available_backends,
    default_backend,
    gemm_backend,
    get_backend,
    int8_scaled_matmul,
    quantize_per_axis,
    set_default_backend,
    tiered_exact_int_matmul,
)
from repro.approx.gemm import approx_matmul, exact_int_matmul
from repro.approx.plan import build_plan
from repro.errors import MultiplierError


@pytest.fixture(autouse=True)
def _reset_backend():
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


class TestRegistry:
    def test_three_backends_registered(self):
        assert available_backends() == ["exact-blas", "int8-accumulate", "plan-lut"]

    def test_default_is_plan_lut(self):
        assert default_backend().name == "plan-lut"

    def test_get_backend_resolves_names_instances_and_default(self):
        assert get_backend("exact-blas").name == "exact-blas"
        custom = GemmBackend()
        assert get_backend(custom) is custom
        assert get_backend(None) is default_backend()

    def test_unknown_backend_raises(self):
        with pytest.raises(MultiplierError, match="unknown GEMM backend"):
            get_backend("does-not-exist")


class TestSelection:
    def test_env_variable_seeds_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_BACKEND", "int8-accumulate")
        set_default_backend(None)  # force re-resolution from the environment
        assert default_backend().name == "int8-accumulate"

    def test_set_default_returns_previous_name(self):
        assert set_default_backend("exact-blas") is None  # unresolved before
        assert set_default_backend("plan-lut") == "exact-blas"

    def test_context_manager_scopes_and_restores(self):
        set_default_backend("plan-lut")
        with gemm_backend("exact-blas") as active:
            assert active.name == "exact-blas"
            assert default_backend().name == "exact-blas"
        assert default_backend().name == "plan-lut"

    def test_context_manager_restores_after_exception(self):
        set_default_backend("plan-lut")
        with pytest.raises(RuntimeError):
            with gemm_backend("int8-accumulate"):
                raise RuntimeError("boom")
        assert default_backend().name == "plan-lut"


class TestExactBitwiseContract:
    def _operands(self, rng, lo, hi):
        a = rng.integers(lo, hi + 1, size=(7, 9)).astype(np.int64)
        b = rng.integers(lo, hi + 1, size=(9, 5)).astype(np.int64)
        return a, b

    def test_all_backends_agree_on_int8_ranged_codes(self, rng):
        a, b = self._operands(rng, -7, 7)
        reference = tiered_exact_int_matmul(a, b)
        for name in available_backends():
            with gemm_backend(name):
                np.testing.assert_array_equal(exact_int_matmul(a, b), reference)

    def test_int8_backend_falls_back_on_wide_codes(self, rng):
        # |codes| > 127: int8-accumulate declines and the tiered reference
        # answers, so the result is still bitwise identical.
        a, b = self._operands(rng, -1000, 1000)
        backend = get_backend("int8-accumulate")
        assert backend.exact_int(a, b) is None
        with gemm_backend("int8-accumulate"):
            np.testing.assert_array_equal(
                exact_int_matmul(a, b), tiered_exact_int_matmul(a, b)
            )

    def test_int8_backend_handles_boundary_magnitude(self):
        a = np.full((2, 3), 127, dtype=np.int64)
        b = np.full((3, 2), -127, dtype=np.int64)
        out = get_backend("int8-accumulate").exact_int(a, b)
        np.testing.assert_array_equal(out, tiered_exact_int_matmul(a, b))
        assert out.dtype == np.int64

    def test_approx_matmul_identical_across_backends(self, rng):
        mult = get_multiplier("truncated4")
        a = rng.integers(-7, 8, size=(6, 10)).astype(np.int64)
        b = rng.integers(-7, 8, size=(10, 4)).astype(np.int64)
        plan = build_plan(b, mult)
        reference = approx_matmul(a, b, mult)
        # per-call selection beats the ambient default; exact-blas forces
        # the unplanned scan even when a plan is supplied
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, plan=plan, backend="exact-blas"), reference
        )
        np.testing.assert_array_equal(
            approx_matmul(a, b, mult, plan=plan, backend="plan-lut"), reference
        )
        for name in available_backends():
            with gemm_backend(name):
                np.testing.assert_array_equal(
                    approx_matmul(a, b, mult, plan=plan), reference
                )


class TestTieredReference:
    def test_float32_tier_for_small_codes(self, rng):
        a = rng.integers(-127, 128, size=(5, 8)).astype(np.int64)
        b = rng.integers(-127, 128, size=(8, 3)).astype(np.int64)
        expected = a @ b
        np.testing.assert_array_equal(tiered_exact_int_matmul(a, b), expected)

    def test_int64_tier_is_exact_past_float64(self):
        # 2^30 * 2^30 * 4 = 2^62: past the f64-exact bound, below int64 wrap.
        a = np.full((1, 4), 2**30, dtype=np.int64)
        b = np.full((4, 1), 2**30, dtype=np.int64)
        out = tiered_exact_int_matmul(a, b)
        assert out[0, 0] == 2**62

    def test_overflow_past_int64_raises(self):
        # 2^32 * 2^31 = 2^63: the int64 accumulator would wrap silently.
        a = np.array([[2**32]], dtype=np.int64)
        b = np.array([[2**31]], dtype=np.int64)
        with pytest.raises(MultiplierError, match="overflow the int64"):
            tiered_exact_int_matmul(a, b)
        with pytest.raises(MultiplierError, match="overflow the int64"):
            exact_int_matmul(a, b)

    def test_empty_operands_are_fine(self):
        out = tiered_exact_int_matmul(
            np.zeros((0, 3), dtype=np.int64), np.zeros((3, 2), dtype=np.int64)
        )
        assert out.shape == (0, 2)


class TestInt8ScaledMatmul:
    def test_exact_on_scale_aligned_grid(self, rng):
        # Entries in [-127, 127] with per-row/-column absmax exactly 127:
        # every scale is 1.0, quantization is the identity, the product
        # is exact.
        a = rng.integers(-127, 128, size=(4, 6)).astype(np.float32)
        b = rng.integers(-127, 128, size=(6, 3)).astype(np.float32)
        a[:, 0] = 127
        b[0, :] = -127
        np.testing.assert_array_equal(int8_scaled_matmul(a, b), a @ b)

    def test_error_bound_on_floats(self, rng):
        a = rng.normal(size=(16, 32)).astype(np.float32)
        b = rng.normal(size=(32, 8)).astype(np.float32)
        approx = int8_scaled_matmul(a, b)
        exact = a @ b
        # worst-case per-element quantization error ~ absmax/254 per
        # operand; the relative Frobenius error stays small
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 0.02

    def test_rejects_bad_shapes(self):
        with pytest.raises(MultiplierError):
            int8_scaled_matmul(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(MultiplierError):
            int8_scaled_matmul(np.zeros(3), np.zeros(3))

    def test_rejects_overflowing_reduce_dim(self):
        k = 2**18  # 127*127*2^18 > 2^31
        with pytest.raises(MultiplierError, match="overflow"):
            int8_scaled_matmul(np.zeros((1, k)), np.zeros((k, 1)))

    def test_quantize_per_axis_zero_slices_get_unit_scale(self):
        x = np.zeros((3, 4), dtype=np.float32)
        codes, scales = quantize_per_axis(x, axis=0)
        assert (codes == 0).all()
        assert (scales == 1.0).all()
