"""Synthetic EvoApprox multipliers: MRE calibration and unbiasedness."""

import numpy as np
import pytest

from repro.approx import (
    EVOAPPROX_SPECS,
    EvoApproxMultiplier,
    synthesize_evoapprox_lut,
)
from repro.approx.metrics import error_bias_ratio, mean_relative_error
from repro.errors import MultiplierError


class TestSynthesis:
    @pytest.mark.parametrize("ident", sorted(EVOAPPROX_SPECS))
    def test_mre_matches_paper_spec(self, ident):
        m = EvoApproxMultiplier(ident)
        assert mean_relative_error(m) == pytest.approx(
            EVOAPPROX_SPECS[ident].mre, rel=0.03
        )

    @pytest.mark.parametrize("ident", sorted(EVOAPPROX_SPECS))
    def test_error_is_unbiased(self, ident):
        """The paper observes EvoApprox errors are unbiased (Fig. 3)."""
        assert error_bias_ratio(EvoApproxMultiplier(ident)) < 0.1

    def test_deterministic_per_id(self):
        a = EvoApproxMultiplier(228)
        b = EvoApproxMultiplier(228)
        np.testing.assert_array_equal(a.lut, b.lut)

    def test_different_ids_differ(self):
        assert not np.array_equal(EvoApproxMultiplier(228).lut, EvoApproxMultiplier(145).lut)

    def test_unknown_id_rejected(self):
        with pytest.raises(MultiplierError):
            EvoApproxMultiplier(999)

    def test_energy_savings_match_paper(self):
        assert EvoApproxMultiplier(249).energy_savings == pytest.approx(0.61)
        assert EvoApproxMultiplier(470).energy_savings == pytest.approx(0.01)

    def test_lut_nonnegative(self):
        assert EvoApproxMultiplier(249).lut.min() >= 0

    def test_direct_synthesis_hits_custom_target(self):
        lut = synthesize_evoapprox_lut(0.15, seed=1)
        from repro.approx import Multiplier

        assert mean_relative_error(Multiplier("custom", lut)) == pytest.approx(0.15, rel=0.03)

    def test_absurd_target_rejected(self):
        with pytest.raises(MultiplierError):
            synthesize_evoapprox_lut(5.0, seed=0)
