"""Energy accounting (``repro.approx.energy``): pinned numbers per design.

The registry's per-multiplier relative energies come from the paper's
sources ([20], [21]); pinning them here turns any accidental edit of the
registry tables into a test failure, and the zoo/sweep energy columns stay
trustworthy.
"""

from __future__ import annotations

import pytest

from repro.approx import (
    ExactMultiplier,
    available_multipliers,
    get_multiplier,
    network_energy,
)
from repro.errors import MultiplierError

# name -> fractional energy savings vs the exact 8x4 design.
PINNED_SAVINGS = {
    "exact": 0.0,
    "truncated1": 0.02,
    "truncated2": 0.08,
    "truncated3": 0.16,
    "truncated4": 0.28,
    "truncated5": 0.38,
    "evoapprox29": 0.09,
    "evoapprox104": 0.18,
    "evoapprox111": 0.12,
    "evoapprox145": 0.21,
    "evoapprox228": 0.19,
    "evoapprox249": 0.61,
    "evoapprox469": 0.18,
    "evoapprox470": 0.01,
}


class TestPinnedEnergyNumbers:
    def test_registry_covers_exactly_the_pinned_designs(self):
        assert set(available_multipliers()) == set(PINNED_SAVINGS)

    @pytest.mark.parametrize("name", sorted(PINNED_SAVINGS))
    def test_multiplier_savings_are_pinned(self, name):
        assert get_multiplier(name).energy_savings == pytest.approx(PINNED_SAVINGS[name])

    @pytest.mark.parametrize("name", sorted(PINNED_SAVINGS))
    def test_network_savings_equal_multiplier_savings(self, name):
        """With multiplier-only accounting (the paper's), network savings
        equal the design's savings regardless of MAC count."""
        report = network_energy(41_000_000, get_multiplier(name))
        assert report.savings == pytest.approx(PINNED_SAVINGS[name])
        assert report.multiplier_name == name
        assert report.macs == 41_000_000


class TestEnergyReportInvariants:
    def test_savings_and_relative_energy_are_complements(self):
        report = network_energy(1000, get_multiplier("truncated4"), adder_fraction=0.3)
        assert report.savings + report.total_relative_energy == pytest.approx(1.0)
        assert report.savings_percent == pytest.approx(100.0 * report.savings)

    def test_adder_energy_dilutes_linearly(self):
        mult = get_multiplier("truncated5")
        for fraction in (0.0, 0.25, 0.5, 0.75):
            report = network_energy(1000, mult, adder_fraction=fraction)
            assert report.savings == pytest.approx((1 - fraction) * mult.energy_savings)

    def test_exact_design_never_saves(self):
        assert network_energy(123, ExactMultiplier()).savings == 0.0


class TestInvalidInputs:
    def test_unknown_multiplier_name_raises(self):
        with pytest.raises(MultiplierError):
            get_multiplier("nosuchdesign")
        with pytest.raises(MultiplierError):
            get_multiplier("truncatedx")  # malformed family member
        with pytest.raises(MultiplierError):
            get_multiplier("evoapprox9999")  # unknown EvoApprox ident

    def test_adder_fraction_bounds(self):
        mult = get_multiplier("truncated3")
        with pytest.raises(ValueError):
            network_energy(10, mult, adder_fraction=1.0)
        with pytest.raises(ValueError):
            network_energy(10, mult, adder_fraction=-0.1)

    def test_negative_macs_rejected(self):
        with pytest.raises(ValueError):
            network_energy(-1, get_multiplier("truncated3"))
