"""Approximate integer GEMM engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.approx.gemm as gemm_mod
from repro.approx import (
    ExactMultiplier,
    approx_matmul,
    approx_matmul_with_exact,
    exact_int_matmul,
    get_multiplier,
)
from repro.errors import MultiplierError, ShapeError


def _codes(rng, shape, bits):
    hi = 2 ** (bits - 1) - 1
    return rng.integers(-hi, hi + 1, size=shape, dtype=np.int32)


def _brute_force(a, b, multiplier):
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.int64)
    for i in range(m):
        for j in range(n):
            for kk in range(k):
                out[i, j] += multiplier.apply_signed(
                    np.array([a[i, kk]]), np.array([b[kk, j]])
                )[0]
    return out


class TestExact:
    def test_exact_multiplier_equals_int_matmul(self, rng):
        a = _codes(rng, (6, 9), 8)
        b = _codes(rng, (9, 4), 4)
        np.testing.assert_array_equal(
            approx_matmul(a, b, ExactMultiplier()), exact_int_matmul(a, b)
        )

    def test_int64_accumulation(self):
        a = np.full((1, 1000), 127, dtype=np.int32)
        b = np.full((1000, 1), 7, dtype=np.int32)
        assert exact_int_matmul(a, b)[0, 0] == 127 * 7 * 1000


class TestApproximate:
    @pytest.mark.parametrize("name", ["truncated3", "truncated5", "evoapprox228"])
    def test_matches_brute_force(self, rng, name):
        mult = get_multiplier(name)
        a = _codes(rng, (4, 5), 8)
        b = _codes(rng, (5, 3), 4)
        np.testing.assert_array_equal(approx_matmul(a, b, mult), _brute_force(a, b, mult))

    def test_blas_path_matches_int64_accumulation(self, rng):
        """The float64 BLAS fast path must be bit-exact vs int64 math."""
        a = _codes(rng, (50, 300), 8).astype(np.int64)
        b = _codes(rng, (300, 12), 4).astype(np.int64)
        np.testing.assert_array_equal(exact_int_matmul(a, b), a @ b)

    def test_large_values_use_int64_fallback(self):
        a = np.array([[2**40]], dtype=np.int64)
        b = np.array([[2**20]], dtype=np.int64)
        assert exact_int_matmul(a, b)[0, 0] == 2**60

    def test_signed_lut_odd_symmetry(self):
        mult = get_multiplier("truncated4")
        slut = mult.signed_lut()
        whi = 7
        for v in range(1, whi + 1):
            np.testing.assert_array_equal(slut[:, whi + v], -slut[:, whi - v])

    def test_zero_weight_column_contributes_nothing(self, rng):
        mult = get_multiplier("evoapprox228")
        a = _codes(rng, (6, 4), 8)
        b = np.zeros((4, 3), dtype=np.int32)
        np.testing.assert_array_equal(approx_matmul(a, b, mult), np.zeros((6, 3)))

    def test_truncated_output_biased_against_exact(self, rng):
        """Accumulated truncation error anticorrelates with the output."""
        mult = get_multiplier("truncated5")
        a = _codes(rng, (200, 64), 8)
        b = _codes(rng, (64, 8), 4)
        approx, exact = approx_matmul_with_exact(a, b, mult)
        err = (approx - exact).astype(np.float64).reshape(-1)
        y = exact.astype(np.float64).reshape(-1)
        corr = np.corrcoef(y, err)[0, 1]
        assert corr < -0.5

    def test_evoapprox_error_uncorrelated(self, rng):
        mult = get_multiplier("evoapprox228")
        a = _codes(rng, (200, 64), 8)
        b = _codes(rng, (64, 8), 4)
        approx, exact = approx_matmul_with_exact(a, b, mult)
        err = (approx - exact).astype(np.float64).reshape(-1)
        y = exact.astype(np.float64).reshape(-1)
        assert abs(np.corrcoef(y, err)[0, 1]) < 0.2


class TestValidation:
    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            approx_matmul(_codes(rng, (2, 3), 8), _codes(rng, (4, 2), 4), ExactMultiplier())

    def test_float_input_rejected(self):
        with pytest.raises(MultiplierError):
            approx_matmul(
                np.zeros((2, 2), dtype=np.float32),
                np.zeros((2, 2), dtype=np.int32),
                ExactMultiplier(),
            )

    def test_magnitude_overflow_rejected(self):
        a = np.array([[200]], dtype=np.int32)  # |200| < 256, fits x side
        b = np.array([[20]], dtype=np.int32)  # |20| >= 16, overflows w side
        with pytest.raises(MultiplierError):
            approx_matmul(a, b, get_multiplier("truncated1"))
        with pytest.raises(MultiplierError):
            approx_matmul(b.T * 30, a.T % 8, get_multiplier("truncated1"))


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_sign_flip_symmetry(self, seed):
        """approx(a, -b) == -approx(a, b) under sign-magnitude evaluation."""
        rng = np.random.default_rng(seed)
        mult = get_multiplier("truncated3")
        a = _codes(rng, (3, 4), 8)
        b = _codes(rng, (4, 2), 4)
        np.testing.assert_array_equal(
            approx_matmul(a, -b, mult), -approx_matmul(a, b, mult)
        )
