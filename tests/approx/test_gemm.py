"""Approximate integer GEMM engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.approx.gemm as gemm_mod
from repro.approx import (
    ExactMultiplier,
    approx_matmul,
    approx_matmul_with_exact,
    exact_int_matmul,
    get_multiplier,
)
from repro.errors import MultiplierError, ShapeError


def _codes(rng, shape, bits):
    hi = 2 ** (bits - 1) - 1
    return rng.integers(-hi, hi + 1, size=shape, dtype=np.int32)


def _brute_force(a, b, multiplier):
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.int64)
    for i in range(m):
        for j in range(n):
            for kk in range(k):
                out[i, j] += multiplier.apply_signed(
                    np.array([a[i, kk]]), np.array([b[kk, j]])
                )[0]
    return out


class TestExact:
    def test_exact_multiplier_equals_int_matmul(self, rng):
        a = _codes(rng, (6, 9), 8)
        b = _codes(rng, (9, 4), 4)
        np.testing.assert_array_equal(
            approx_matmul(a, b, ExactMultiplier()), exact_int_matmul(a, b)
        )

    def test_int64_accumulation(self):
        a = np.full((1, 1000), 127, dtype=np.int32)
        b = np.full((1000, 1), 7, dtype=np.int32)
        assert exact_int_matmul(a, b)[0, 0] == 127 * 7 * 1000


class TestApproximate:
    @pytest.mark.parametrize("name", ["truncated3", "truncated5", "evoapprox228"])
    def test_matches_brute_force(self, rng, name):
        mult = get_multiplier(name)
        a = _codes(rng, (4, 5), 8)
        b = _codes(rng, (5, 3), 4)
        np.testing.assert_array_equal(approx_matmul(a, b, mult), _brute_force(a, b, mult))

    def test_blas_path_matches_int64_accumulation(self, rng):
        """The float64 BLAS fast path must be bit-exact vs int64 math."""
        a = _codes(rng, (50, 300), 8).astype(np.int64)
        b = _codes(rng, (300, 12), 4).astype(np.int64)
        np.testing.assert_array_equal(exact_int_matmul(a, b), a @ b)

    def test_large_values_use_int64_fallback(self):
        a = np.array([[2**40]], dtype=np.int64)
        b = np.array([[2**20]], dtype=np.int64)
        assert exact_int_matmul(a, b)[0, 0] == 2**60

    def test_signed_lut_odd_symmetry(self):
        mult = get_multiplier("truncated4")
        slut = mult.signed_lut()
        whi = 7
        for v in range(1, whi + 1):
            np.testing.assert_array_equal(slut[:, whi + v], -slut[:, whi - v])

    def test_zero_weight_column_contributes_nothing(self, rng):
        mult = get_multiplier("evoapprox228")
        a = _codes(rng, (6, 4), 8)
        b = np.zeros((4, 3), dtype=np.int32)
        np.testing.assert_array_equal(approx_matmul(a, b, mult), np.zeros((6, 3)))

    def test_truncated_output_biased_against_exact(self, rng):
        """Accumulated truncation error anticorrelates with the output."""
        mult = get_multiplier("truncated5")
        a = _codes(rng, (200, 64), 8)
        b = _codes(rng, (64, 8), 4)
        approx, exact = approx_matmul_with_exact(a, b, mult)
        err = (approx - exact).astype(np.float64).reshape(-1)
        y = exact.astype(np.float64).reshape(-1)
        corr = np.corrcoef(y, err)[0, 1]
        assert corr < -0.5

    def test_evoapprox_error_uncorrelated(self, rng):
        mult = get_multiplier("evoapprox228")
        a = _codes(rng, (200, 64), 8)
        b = _codes(rng, (64, 8), 4)
        approx, exact = approx_matmul_with_exact(a, b, mult)
        err = (approx - exact).astype(np.float64).reshape(-1)
        y = exact.astype(np.float64).reshape(-1)
        assert abs(np.corrcoef(y, err)[0, 1]) < 0.2


class TestValidation:
    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            approx_matmul(_codes(rng, (2, 3), 8), _codes(rng, (4, 2), 4), ExactMultiplier())

    def test_float_input_rejected(self):
        with pytest.raises(MultiplierError):
            approx_matmul(
                np.zeros((2, 2), dtype=np.float32),
                np.zeros((2, 2), dtype=np.int32),
                ExactMultiplier(),
            )

    def test_magnitude_overflow_rejected(self):
        a = np.array([[200]], dtype=np.int32)  # |200| < 256, fits x side
        b = np.array([[20]], dtype=np.int32)  # |20| >= 16, overflows w side
        with pytest.raises(MultiplierError):
            approx_matmul(a, b, get_multiplier("truncated1"))
        with pytest.raises(MultiplierError):
            approx_matmul(b.T * 30, a.T % 8, get_multiplier("truncated1"))


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_sign_flip_symmetry(self, seed):
        """approx(a, -b) == -approx(a, b) under sign-magnitude evaluation."""
        rng = np.random.default_rng(seed)
        mult = get_multiplier("truncated3")
        a = _codes(rng, (3, 4), 8)
        b = _codes(rng, (4, 2), 4)
        np.testing.assert_array_equal(
            approx_matmul(a, -b, mult), -approx_matmul(a, b, mult)
        )


class TestExactPrecisionTiers:
    """``exact_int_matmul`` picks float32 / float64 / int64 by the worst-case
    partial-sum bound; every tier must agree with int64 accumulation."""

    @staticmethod
    def _int64_reference(a, b):
        return a.astype(np.int64) @ b.astype(np.int64)

    def test_float32_tier_just_below_the_2_pow_23_bound(self):
        # max|a|*max|b|*K = 127*7*9436 = 8_388_604 < 2^23: float32 BLAS.
        k = 9436
        a = np.full((2, k), 127, dtype=np.int32)
        b = np.full((k, 2), 7, dtype=np.int32)
        a[0, ::2] *= -1
        out = exact_int_matmul(a, b)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, self._int64_reference(a, b))

    def test_float64_tier_just_above_the_2_pow_23_bound(self):
        # 127*7*9437 = 8_389_493 >= 2^23: float32 would round; float64 is
        # exact and must match int64 accumulation bit for bit.
        k = 9437
        a = np.full((2, k), 127, dtype=np.int32)
        b = np.full((k, 2), 7, dtype=np.int32)
        np.testing.assert_array_equal(
            exact_int_matmul(a, b), self._int64_reference(a, b)
        )

    def test_float64_tier_handles_wide_products(self):
        # 2^26 * 2^25 * 1 = 2^51 < 2^52: still the exact float64 regime.
        a = np.array([[1 << 26]], dtype=np.int64)
        b = np.array([[1 << 25]], dtype=np.int64)
        np.testing.assert_array_equal(
            exact_int_matmul(a, b), np.array([[1 << 51]], dtype=np.int64)
        )

    def test_int64_fallback_above_the_2_pow_52_bound(self):
        # 2^26 * 2^26 = 2^52: float64 integers stop being dense here, so
        # the engine must fall back to int64 accumulation.
        a = np.array([[1 << 26]], dtype=np.int64)
        b = np.array([[1 << 26]], dtype=np.int64)
        out = exact_int_matmul(a, b)
        np.testing.assert_array_equal(out, np.array([[1 << 52]], dtype=np.int64))
        # an odd value nearby would be unrepresentable in float64
        a2 = np.array([[(1 << 40) + 1]], dtype=np.int64)
        b2 = np.array([[1 << 20]], dtype=np.int64)
        np.testing.assert_array_equal(
            exact_int_matmul(a2, b2), self._int64_reference(a2, b2)
        )

    def test_randomised_tiers_agree_with_int64(self, rng):
        for hi in (3, 1 << 12, 1 << 27):
            a = rng.integers(-hi, hi + 1, size=(5, 17)).astype(np.int64)
            b = rng.integers(-hi, hi + 1, size=(17, 4)).astype(np.int64)
            np.testing.assert_array_equal(
                exact_int_matmul(a, b), self._int64_reference(a, b)
            )

    def test_empty_operands(self):
        a = np.zeros((0, 4), dtype=np.int32)
        b = np.zeros((4, 3), dtype=np.int32)
        out = exact_int_matmul(a, b)
        assert out.shape == (0, 3)
        assert out.dtype == np.int64
