"""Multiplier base class: LUT validation and signed evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import ExactMultiplier, Multiplier, exact_lut
from repro.errors import MultiplierError


class TestValidation:
    def test_wrong_lut_shape_rejected(self):
        with pytest.raises(MultiplierError):
            Multiplier("bad", np.zeros((10, 16), dtype=np.int32))

    def test_float_lut_rejected(self):
        with pytest.raises(MultiplierError):
            Multiplier("bad", np.zeros((256, 16), dtype=np.float32))

    def test_negative_entries_rejected(self):
        lut = exact_lut()
        lut[0, 0] = -1
        with pytest.raises(MultiplierError):
            Multiplier("bad", lut)


class TestExactMultiplier:
    def test_is_exact(self):
        assert ExactMultiplier().is_exact

    def test_unsigned_evaluation(self):
        m = ExactMultiplier()
        a = np.array([0, 5, 255])
        b = np.array([0, 3, 15])
        np.testing.assert_array_equal(m.apply_unsigned(a, b), a * b)

    def test_error_table_all_zero(self):
        assert np.abs(ExactMultiplier().error_table()).max() == 0

    def test_energy_savings_zero(self):
        assert ExactMultiplier().energy_savings == 0.0


class TestLutCaches:
    def test_signed_lut_f64_matches_and_is_cached(self):
        from repro.approx import get_multiplier

        m = get_multiplier("truncated4")
        table = m.signed_lut_f64()
        assert table.dtype == np.float64
        np.testing.assert_array_equal(table, m.signed_lut().astype(np.float64))
        # hot-path requirement: repeat calls return the same array object
        assert m.signed_lut_f64() is table

    def test_f32_and_f64_caches_are_independent(self):
        from repro.approx import get_multiplier

        m = get_multiplier("truncated3")
        f32, f64 = m.signed_lut_f32(), m.signed_lut_f64()
        assert f32.dtype == np.float32 and f64.dtype == np.float64
        np.testing.assert_array_equal(f32.astype(np.float64), f64)


class TestSignedEvaluation:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(-127, 127), st.integers(-7, 7))
    def test_exact_signed_matches_product(self, a, b):
        m = ExactMultiplier()
        assert m.apply_signed(np.array([a]), np.array([b]))[0] == a * b

    def test_sign_magnitude_symmetry(self):
        """g̃(-a, b) == -g̃(a, b) for any LUT multiplier."""
        from repro.approx import get_multiplier

        m = get_multiplier("truncated3")
        a = np.arange(-127, 128)
        b = np.full_like(a, 5)
        pos = m.apply_signed(np.abs(a), b)
        signed = m.apply_signed(a, b)
        np.testing.assert_array_equal(signed, np.sign(a) * pos)

    def test_out_of_range_unsigned_rejected(self):
        m = ExactMultiplier()
        with pytest.raises(MultiplierError):
            m.apply_unsigned(np.array([256]), np.array([0]))
        with pytest.raises(MultiplierError):
            m.apply_unsigned(np.array([0]), np.array([16]))
        with pytest.raises(MultiplierError):
            m.apply_unsigned(np.array([-1]), np.array([0]))
