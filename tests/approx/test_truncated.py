"""Truncated array multipliers."""

import numpy as np
import pytest

from repro.approx import TruncatedMultiplier, exact_lut, truncated_lut
from repro.approx.metrics import error_bias_ratio, mean_relative_error
from repro.errors import MultiplierError


class TestLut:
    def test_zero_truncation_is_exact(self):
        np.testing.assert_array_equal(truncated_lut(0), exact_lut())

    def test_error_is_one_sided(self):
        for t in range(1, 6):
            assert TruncatedMultiplier(t).error_table().max() <= 0

    def test_result_is_multiple_of_2t(self):
        for t in (2, 4):
            lut = truncated_lut(t)
            assert (lut % (1 << t) == 0).all()

    def test_truncation_never_exceeds_exact(self):
        exact = exact_lut()
        for t in range(1, 6):
            assert (truncated_lut(t) <= exact).all()

    def test_deeper_truncation_drops_more(self):
        totals = [truncated_lut(t).sum() for t in range(6)]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_rejects_out_of_range_depth(self):
        with pytest.raises(MultiplierError):
            truncated_lut(-1)
        with pytest.raises(MultiplierError):
            truncated_lut(12)

    def test_partial_product_semantics(self):
        """Column truncation drops a_i·b_j with i+j < t, including carries
        the masked-product model would keep."""
        lut = truncated_lut(2)
        # a=3 (bits 0,1), b=3 (bits 0,1): pp columns 0 (1), 1 (2+2) -> only
        # column 2 survives: 1*1*4 = 4. Masked product would give 9 & ~3 = 8.
        assert lut[3, 3] == 4


class TestCharacteristics:
    def test_mre_monotone_in_depth(self):
        mres = [mean_relative_error(TruncatedMultiplier(t)) for t in range(1, 6)]
        assert all(a < b for a, b in zip(mres, mres[1:]))

    def test_error_fully_biased(self):
        assert error_bias_ratio(TruncatedMultiplier(5)) == pytest.approx(1.0)

    def test_energy_savings_match_paper(self):
        # Table V: 2 / 8 / 16 / 28 / 38 percent.
        expected = {1: 0.02, 2: 0.08, 3: 0.16, 4: 0.28, 5: 0.38}
        for t, savings in expected.items():
            assert TruncatedMultiplier(t).energy_savings == pytest.approx(savings)

    def test_name(self):
        assert TruncatedMultiplier(3).name == "truncated3"
