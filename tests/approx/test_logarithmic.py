"""Mitchell and DRUM multipliers (extension families)."""

import numpy as np
import pytest

from repro.approx import get_multiplier, mean_relative_error, error_bias_ratio
from repro.approx.logarithmic import (
    DrumMultiplier,
    MitchellMultiplier,
    _mitchell_product,
    drum_lut,
    mitchell_lut,
)
from repro.errors import MultiplierError
from repro.ge import estimate_error_model


class TestMitchell:
    def test_exact_on_powers_of_two(self):
        lut = mitchell_lut()
        for a in (1, 2, 4, 8, 16, 32, 64, 128):
            for b in (1, 2, 4, 8):
                assert lut[a, b] == a * b

    def test_always_underestimates(self):
        m = MitchellMultiplier()
        assert m.error_table().max() <= 0

    def test_mre_within_mitchell_bound(self):
        """Mitchell's relative error is bounded by ~11.1% per product."""
        mre = mean_relative_error(MitchellMultiplier())
        assert 0.0 < mre < 0.112

    def test_zero_operand(self):
        assert _mitchell_product(0, 5) == 0
        assert _mitchell_product(7, 0) == 0

    def test_biased_error_yields_ge_slope(self):
        """Mitchell is one-sided like truncation, so GE gets a slope."""
        model = estimate_error_model(get_multiplier("mitchell"), rng=0)
        assert model.k < 0

    def test_registry(self):
        assert get_multiplier("mitchell").name == "mitchell"


class TestDrum:
    def test_exact_for_small_operands(self):
        lut = drum_lut(4)
        for a in range(16):  # fits in 4 bits: no truncation
            for b in range(16):
                assert lut[a, b] == a * b

    def test_k_bound(self):
        with pytest.raises(MultiplierError):
            drum_lut(1)
        with pytest.raises(MultiplierError):
            get_multiplier("drumX")

    def test_error_nearly_unbiased(self):
        assert error_bias_ratio(DrumMultiplier(3)) < 0.35

    def test_more_bits_less_error(self):
        mre3 = mean_relative_error(DrumMultiplier(3))
        mre4 = mean_relative_error(DrumMultiplier(4))
        mre5 = mean_relative_error(DrumMultiplier(5))
        assert mre5 < mre4 < mre3

    def test_error_slope_small(self):
        """DRUM's LSB compensation overcorrects slightly at a 4-bit operand
        width, leaving a small positive slope — far flatter than a truncated
        multiplier of comparable MRE."""
        drum = estimate_error_model(get_multiplier("drum3"), rng=0)
        truncated = estimate_error_model(get_multiplier("truncated5"), rng=0)
        assert abs(drum.k) < 0.05
        assert abs(drum.k) < abs(truncated.k)

    def test_registry_and_savings_ordering(self):
        d3, d4 = get_multiplier("drum3"), get_multiplier("drum4")
        assert d3.energy_savings > d4.energy_savings


class TestInGemm:
    def test_mitchell_in_approx_matmul(self, rng):
        from repro.approx import approx_matmul, exact_int_matmul

        a = rng.integers(-127, 128, size=(20, 30)).astype(np.int32)
        b = rng.integers(-7, 8, size=(30, 5)).astype(np.int32)
        approx = approx_matmul(a, b, get_multiplier("mitchell"))
        exact = exact_int_matmul(a, b)
        assert approx.shape == exact.shape
        # Accumulated error anticorrelates with output (biased-low design).
        err = (approx - exact).astype(float).ravel()
        y = exact.astype(float).ravel()
        assert np.corrcoef(y, err)[0, 1] < -0.3
