"""Multiplier error-analysis utilities."""

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.approx.analysis import (
    MultiplierSummary,
    compare_multipliers,
    error_by_operand_magnitude,
    error_histogram,
    summarize_multiplier,
)


class TestSummary:
    def test_exact_multiplier_summary(self):
        s = summarize_multiplier(get_multiplier("exact"))
        assert s.mre == 0.0
        assert s.max_abs_error == 0
        assert s.error_free_fraction == 1.0
        assert not s.is_biased

    def test_truncated_is_biased(self):
        s = summarize_multiplier(get_multiplier("truncated5"))
        assert s.is_biased
        assert s.mean_error < 0
        assert 0 < s.error_free_fraction < 1

    def test_evoapprox_is_unbiased(self):
        s = summarize_multiplier(get_multiplier("evoapprox228"))
        assert not s.is_biased
        # Mean error is tiny relative to the error magnitude scale.
        assert abs(s.mean_error) < 0.05 * s.max_abs_error

    def test_dataclass_fields(self):
        s = summarize_multiplier(get_multiplier("truncated3"))
        assert isinstance(s, MultiplierSummary)
        assert s.name == "truncated3"
        assert s.energy_savings == pytest.approx(0.16)


class TestHistogram:
    def test_counts_sum_to_domain_size(self):
        counts, edges = error_histogram(get_multiplier("truncated4"))
        assert counts.sum() == 256 * 16
        assert len(edges) == len(counts) + 1

    def test_exact_multiplier_single_spike(self):
        counts, _ = error_histogram(get_multiplier("exact"), bins=5)
        assert (counts > 0).sum() == 1

    def test_truncated_errors_nonpositive(self):
        counts, edges = error_histogram(get_multiplier("truncated5"))
        populated = edges[1:][counts > 0]
        assert populated.min() <= 0  # mass at/below zero only
        assert edges[0] < 0


class TestMagnitudeProfile:
    def test_truncation_hurts_small_operands_most(self):
        profile = error_by_operand_magnitude(get_multiplier("truncated5"), num_bins=8)
        centers, errors = zip(*profile)
        # Relative error decreases as the activation magnitude grows.
        assert errors[0] > errors[-1]

    def test_drum_exact_for_small_operands(self):
        profile = error_by_operand_magnitude(get_multiplier("drum4"), num_bins=16)
        # First bin covers operands < 16, which DRUM(4) computes exactly.
        assert profile[0][1] == pytest.approx(0.0, abs=1e-9)

    def test_profile_covers_domain(self):
        profile = error_by_operand_magnitude(get_multiplier("truncated3"), num_bins=4)
        assert len(profile) == 4


class TestCompare:
    def test_sorted_by_savings(self):
        summaries = compare_multipliers(["truncated5", "truncated1", "truncated3"])
        savings = [s.energy_savings for s in summaries]
        assert savings == sorted(savings)

    def test_accepts_instances(self):
        mult = get_multiplier("truncated2")
        summaries = compare_multipliers([mult])
        assert summaries[0].name == "truncated2"
