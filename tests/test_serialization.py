"""Model/result serialization round trips."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.distill import clone_model
from repro.errors import ReproError
from repro.models import simplecnn
from repro.quant import quant_layers, quantize_model
from repro.sim import evaluate_accuracy
from repro.utils.serialization import load_model, load_results, save_model, save_results


class TestFloatModelRoundtrip:
    def test_parameters_restored(self, tmp_path, rng):
        src = simplecnn(base_width=4, rng=0)
        path = tmp_path / "model.npz"
        save_model(src, path)
        dst = simplecnn(base_width=4, rng=1)  # different init
        load_model(dst, path)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        src.eval(), dst.eval()
        np.testing.assert_allclose(src(x).data, dst(x).data, atol=1e-6)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_model(simplecnn(base_width=4, rng=0), tmp_path / "nope.npz")


class TestQuantizedModelRoundtrip:
    def test_steps_and_accuracy_restored(self, tmp_path, quantized_model, tiny_dataset):
        path = tmp_path / "quant.npz"
        save_model(quantized_model, path)
        dst = quantize_model(simplecnn(base_width=8, rng=3))
        load_model(dst, path)
        src_acc = evaluate_accuracy(
            quantized_model, tiny_dataset.test_x, tiny_dataset.test_y
        )
        dst_acc = evaluate_accuracy(dst, tiny_dataset.test_x, tiny_dataset.test_y)
        assert dst_acc == src_acc
        for a, b in zip(quant_layers(quantized_model), quant_layers(dst)):
            assert a.act_step == b.act_step
            assert a.weight_step == b.weight_step

    def test_bitwidth_mismatch_rejected(self, tmp_path, quantized_model):
        from repro.quant import QConfig

        path = tmp_path / "quant.npz"
        save_model(quantized_model, path)
        other = quantize_model(
            simplecnn(base_width=8, rng=3), qconfig=QConfig(weight_bits=8)
        )
        with pytest.raises(ReproError):
            load_model(other, path)

    def test_uncalibrated_layers_skipped(self, tmp_path):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        path = tmp_path / "uncal.npz"
        save_model(model, path)  # no quant meta stored
        dst = quantize_model(simplecnn(base_width=4, rng=1))
        load_model(dst, path)
        assert all(not layer.is_calibrated for layer in quant_layers(dst))


class TestResults:
    def test_roundtrip(self, tmp_path):
        results = {
            "accuracy": np.float32(0.91),
            "curve": np.array([0.1, 0.5, 0.9]),
            "config": {"epochs": 30, "method": "approxkd_ge"},
            "methods": ["normal", "ge"],
            "converged": True,
            "note": None,
        }
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded["accuracy"] == pytest.approx(0.91)
        assert loaded["curve"] == pytest.approx([0.1, 0.5, 0.9])
        assert loaded["config"]["method"] == "approxkd_ge"
        assert loaded["converged"] is True
        assert loaded["note"] is None

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_results({"bad": object()}, tmp_path / "x.json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_results(tmp_path / "missing.json")
