"""CheckpointManager: atomic save/load, checksums, retention, fallback."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.models import simplecnn
from repro.resilience import CheckpointManager
from repro.train import SGD
from repro.utils.serialization import model_state_arrays

pytestmark = pytest.mark.resilience


def make_model(seed=0):
    return simplecnn(base_width=4, rng=seed)


def make_optimizer(model, rng=None):
    opt = SGD(model.parameters(), lr=0.01, momentum=0.9)
    if rng is not None:  # give the momentum buffers non-trivial content
        state = opt.state_dict()
        state["velocity"] = [
            rng.normal(size=v.shape).astype(v.dtype) for v in state["velocity"]
        ]
        opt.load_state_dict(state)
    return opt


class TestSaveLoad:
    def test_round_trip(self, tmp_path, rng):
        model = make_model(seed=0)
        opt = make_optimizer(model, rng)
        manager = CheckpointManager(tmp_path)
        manager.save(3, model, opt, state={"note": "hi", "lr_scale": 0.25})

        restored = make_model(seed=1)  # different init
        restored_opt = make_optimizer(restored)
        loaded = manager.load_latest(restored, restored_opt)
        assert loaded is not None
        assert loaded.epoch == 3
        assert loaded.state["note"] == "hi"
        assert loaded.state["lr_scale"] == 0.25

        want, got = model_state_arrays(model), model_state_arrays(restored)
        assert set(want) == set(got)
        for key in want:
            np.testing.assert_array_equal(want[key], got[key])
        for a, b in zip(opt.state_dict()["velocity"],
                        restored_opt.state_dict()["velocity"]):
            np.testing.assert_array_equal(a, b)

    def test_save_emits_event_and_manifest(self, tmp_path, events):
        model = make_model()
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, model)
        assert manager.manifest_for(path).exists()
        assert any(
            r["type"] == "checkpoint" and r["action"] == "save"
            for r in events.records
        )

    def test_empty_directory_resumes_nothing(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest(make_model()) is None

    def test_optimizerless_checkpoint_rejects_optimizer_restore(self, tmp_path):
        model = make_model()
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, model)  # saved without optimizer state
        with pytest.raises(CheckpointError):
            manager.load(path, make_model(), make_optimizer(make_model()))

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, every=0)


class TestRetention:
    def test_prunes_to_keep_newest(self, tmp_path):
        model = make_model()
        manager = CheckpointManager(tmp_path, keep=2)
        for epoch in range(1, 5):
            manager.save(epoch, model)
        remaining = manager.checkpoints()
        assert [epoch for epoch, _ in remaining] == [3, 4]
        for _, path in remaining:
            assert manager.manifest_for(path).exists()
        # pruned manifests are gone too
        assert not manager.manifest_for(manager.path_for(1)).exists()


class TestCorruptionFallback:
    def test_corrupt_newest_falls_back_to_older(self, tmp_path, events):
        model = make_model()
        manager = CheckpointManager(tmp_path)
        manager.save(1, model)
        newest = manager.save(2, model)
        newest.write_bytes(b"garbage, not a zip archive")

        loaded = manager.load_latest(make_model(seed=1))
        assert loaded is not None
        assert loaded.epoch == 1
        assert any(
            r["type"] == "checkpoint" and r["action"] == "corrupt"
            for r in events.records
        )

    def test_all_corrupt_returns_none(self, tmp_path):
        model = make_model()
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, model)
        manager.manifest_for(path).unlink()  # no digest -> fails verification
        assert manager.load_latest(make_model(seed=1)) is None

    def test_bitflip_detected_by_digest(self, tmp_path):
        model = make_model()
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, model)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert not manager.verify(path)
        with pytest.raises(CheckpointError):
            manager.load(path, make_model(seed=1))
