"""DivergenceGuard: NaN containment, rollback, LR backoff, give-up."""

import numpy as np
import pytest

from repro.errors import ConfigError, DivergenceError
from repro.models import simplecnn
from repro.resilience import DivergenceGuard, GuardConfig
from repro.train import TrainConfig, cross_entropy_loss, train_model

pytestmark = pytest.mark.resilience

FAST = TrainConfig(epochs=2, batch_size=128, lr=0.05, momentum=0.9, seed=0)


def nan_loss_for_calls(bad_calls):
    """Cross-entropy that returns NaN on the given 1-based call numbers."""
    base = cross_entropy_loss()
    counter = {"calls": 0}

    def loss(logits, labels, indices):
        counter["calls"] += 1
        value = base(logits, labels, indices)
        if counter["calls"] in bad_calls:
            return value * float("nan")
        return value

    return loss


class TestNaNContainment:
    def test_injected_nan_rolls_back_and_retries(self, tiny_dataset, events):
        model = simplecnn(base_width=4, rng=0)
        guard = DivergenceGuard(GuardConfig(max_retries=3, lr_backoff=0.5))
        history = train_model(
            model, tiny_dataset, nan_loss_for_calls({1}), FAST, guard=guard
        )
        # The epoch was retried at a reduced LR and training completed.
        assert len(guard.trips) == 1
        trip = guard.trips[0]
        assert trip.reason == "non_finite_loss"
        assert trip.retrying
        assert guard.lr_scale == pytest.approx(0.5)
        assert len(history.train_loss) == FAST.epochs
        assert history.learning_rate[0] == pytest.approx(FAST.lr * 0.5)
        rollbacks = [
            r for r in events.records
            if r["type"] == "guard" and r["action"] == "rollback"
        ]
        assert len(rollbacks) == 1
        assert rollbacks[0]["reason"] == "non_finite_loss"

    def test_nan_never_reaches_weights(self, tiny_dataset):
        model = simplecnn(base_width=4, rng=0)
        guard = DivergenceGuard()
        train_model(model, tiny_dataset, nan_loss_for_calls({1, 2}), FAST, guard=guard)
        for name, param in model.named_parameters():
            assert np.isfinite(param.data).all(), f"NaN leaked into {name}"

    def test_retry_budget_exhaustion_raises(self, tiny_dataset, events):
        model = simplecnn(base_width=4, rng=0)
        guard = DivergenceGuard(GuardConfig(max_retries=1, lr_backoff=0.5))
        always_nan = nan_loss_for_calls(set(range(1, 1000)))
        with pytest.raises(DivergenceError, match="non_finite_loss"):
            train_model(model, tiny_dataset, always_nan, FAST, guard=guard)
        assert not guard.trips[-1].retrying
        assert any(
            r["type"] == "guard" and r["action"] == "giveup" for r in events.records
        )
        # Even after giving up, the weights hold the last good snapshot.
        for _, param in model.named_parameters():
            assert np.isfinite(param.data).all()


class TestGradExplosion:
    def test_tiny_norm_threshold_trips(self, tiny_dataset):
        model = simplecnn(base_width=4, rng=0)
        guard = DivergenceGuard(GuardConfig(max_retries=0, max_grad_norm=1e-12))
        with pytest.raises(DivergenceError, match="grad_explosion"):
            train_model(model, tiny_dataset, cross_entropy_loss(), FAST, guard=guard)


class TestAccuracyChecks:
    def test_collapse_relative_to_best(self):
        guard = DivergenceGuard(GuardConfig(max_accuracy_drop=0.2))
        assert guard.check_accuracy(0.5) is None  # no baseline yet
        guard.record_accuracy(0.8)
        assert guard.check_accuracy(0.7) is None
        assert guard.check_accuracy(0.55) == "accuracy_collapse"

    def test_absolute_floor_and_nan(self):
        guard = DivergenceGuard(GuardConfig(min_accuracy=0.3))
        assert guard.check_accuracy(0.29) == "accuracy_floor"
        assert guard.check_accuracy(float("nan")) == "non_finite_accuracy"
        assert guard.check_accuracy(0.31) is None


class TestGuardConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            GuardConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            GuardConfig(lr_backoff=1.0)
        with pytest.raises(ConfigError):
            GuardConfig(max_grad_norm=0.0)

    def test_trip_without_snapshot_rejected(self):
        guard = DivergenceGuard()
        with pytest.raises(ConfigError):
            guard.trip(0, "non_finite_loss", "detail", None, None, None)
