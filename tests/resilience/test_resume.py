"""Kill-and-resume: a resumed run is bit-for-bit the uninterrupted run."""

import dataclasses

import numpy as np
import pytest

from repro.models import simplecnn
from repro.resilience import CheckpointManager
from repro.train import TrainConfig, cross_entropy_loss, train_model
from repro.utils.serialization import model_state_arrays

pytestmark = pytest.mark.resilience

FULL = TrainConfig(epochs=4, batch_size=128, lr=0.05, momentum=0.9, seed=3)
HALF = dataclasses.replace(FULL, epochs=2)


def make_model():
    return simplecnn(base_width=4, rng=0)


def assert_same_weights(a, b):
    want, got = model_state_arrays(a), model_state_arrays(b)
    assert set(want) == set(got)
    for key in want:
        np.testing.assert_array_equal(want[key], got[key], err_msg=key)


class TestBitwiseResume:
    def test_interrupted_run_resumes_identically(self, tiny_dataset, tmp_path):
        # Reference: the uninterrupted 4-epoch run.
        reference = make_model()
        ref_history = train_model(
            reference, tiny_dataset, cross_entropy_loss(), FULL
        )

        # "Crash" after epoch 2: train half the epochs with checkpointing...
        interrupted = make_model()
        train_model(
            interrupted,
            tiny_dataset,
            cross_entropy_loss(),
            HALF,
            checkpoints=CheckpointManager(tmp_path / "ckpt"),
        )

        # ...then resume a *fresh* process (fresh model object) to the end.
        resumed = make_model()
        history = train_model(
            resumed,
            tiny_dataset,
            cross_entropy_loss(),
            FULL,
            checkpoints=CheckpointManager(tmp_path / "ckpt"),
            resume=True,
        )

        assert_same_weights(reference, resumed)
        assert history.train_loss == ref_history.train_loss
        assert history.test_accuracy == ref_history.test_accuracy
        assert history.learning_rate == ref_history.learning_rate

    def test_resume_event_emitted(self, tiny_dataset, tmp_path, events):
        model = make_model()
        manager = CheckpointManager(tmp_path / "ckpt")
        train_model(model, tiny_dataset, cross_entropy_loss(), HALF,
                    checkpoints=manager)
        train_model(make_model(), tiny_dataset, cross_entropy_loss(), FULL,
                    checkpoints=manager, resume=True)
        resumes = [
            r for r in events.records
            if r["type"] == "checkpoint" and r["action"] == "resume"
        ]
        assert len(resumes) == 1
        assert resumes[0]["epoch"] == HALF.epochs

    def test_resume_with_no_checkpoints_trains_from_scratch(
        self, tiny_dataset, tmp_path
    ):
        reference = make_model()
        ref_history = train_model(reference, tiny_dataset, cross_entropy_loss(), HALF)
        fresh = make_model()
        history = train_model(
            fresh,
            tiny_dataset,
            cross_entropy_loss(),
            HALF,
            checkpoints=CheckpointManager(tmp_path / "empty"),
            resume=True,
        )
        assert_same_weights(reference, fresh)
        assert history.train_loss == ref_history.train_loss

    def test_completed_run_does_not_retrain(self, tiny_dataset, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        done = make_model()
        train_model(done, tiny_dataset, cross_entropy_loss(), HALF,
                    checkpoints=manager)
        again = make_model()
        history = train_model(again, tiny_dataset, cross_entropy_loss(), HALF,
                              checkpoints=manager, resume=True)
        assert_same_weights(done, again)
        # All epochs were restored from the checkpoint, none re-run.
        assert len(history.train_loss) == HALF.epochs
