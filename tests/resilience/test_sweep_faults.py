"""Fault-isolated sweeps: failing cells become data, grids always finish."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import SweepResult, run_sweep
from repro.pipeline.algorithm1 import StageResult
from repro.resilience import FailureRecord, call_with_retry
from repro.train import History, TrainConfig

pytestmark = pytest.mark.resilience

FAST = TrainConfig(epochs=1, batch_size=64, seed=0)


def fake_approximation_stage(fail_cells=(), interrupt_at=None, calls=None):
    """Stand-in for the real stage: instant, scripted failures."""
    calls = calls if calls is not None else []

    def stage(quant_model, data, multiplier, *, method, train_config,
              temperature, rng):
        calls.append((multiplier.name, method))
        if interrupt_at is not None and len(calls) == interrupt_at:
            raise KeyboardInterrupt
        if (multiplier.name, method) in fail_cells:
            raise RuntimeError(f"injected failure in {multiplier.name}/{method}")
        history = History(
            train_loss=[0.1], test_accuracy=[0.6],
            learning_rate=[0.01], epoch_time=[0.01], wall_time=0.05,
        )
        return object(), StageResult(0.5, 0.6, history)

    return stage, calls


class TestFailingCells:
    def test_grid_completes_with_recorded_failure(self, monkeypatch, events):
        stage, _ = fake_approximation_stage(
            fail_cells={("truncated4", "normal")}
        )
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3", "truncated4"],
            methods=("normal",), train_config=FAST,
        )
        assert len(result.points) == 2
        failed = result.failures()
        assert len(failed) == 1
        point = failed[0]
        assert point.multiplier == "truncated4"
        assert point.status == "failed"
        assert point.error_type == "RuntimeError"
        assert "injected failure" in point.error
        assert "RuntimeError" in point.traceback
        assert point.final_accuracy is None
        assert any(r["type"] == "fault" for r in events.records)

    def test_best_point_skips_failures(self, monkeypatch):
        stage, _ = fake_approximation_stage(fail_cells={("truncated4", "normal")})
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3", "truncated4"],
            methods=("normal",), train_config=FAST,
        )
        assert result.best_point().multiplier == "truncated3"
        assert result.filter(include_failed=True) != result.filter()

    def test_all_failed_best_point_raises(self, monkeypatch):
        stage, _ = fake_approximation_stage(
            fail_cells={("truncated3", "normal")}
        )
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3"], methods=("normal",),
            train_config=FAST,
        )
        with pytest.raises(ConfigError, match="no successful points"):
            result.best_point()

    def test_retries_recorded(self, monkeypatch):
        stage, calls = fake_approximation_stage(
            fail_cells={("truncated3", "normal")}
        )
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3"], methods=("normal",),
            train_config=FAST, retries=2,
        )
        assert result.points[0].attempts == 3
        assert len(calls) == 3

    def test_unknown_multiplier_becomes_failed_cells(self, monkeypatch):
        stage, _ = fake_approximation_stage()
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3", "no_such_multiplier"],
            methods=("normal", "approxkd"), train_config=FAST,
        )
        ok = [p for p in result.points if p.ok]
        failed = result.failures()
        assert len(ok) == 2  # truncated3 x both methods
        assert len(failed) == 2  # one per method for the broken multiplier
        assert all(p.multiplier == "no_such_multiplier" for p in failed)

    def test_json_round_trip_preserves_failures(self, monkeypatch, tmp_path):
        stage, _ = fake_approximation_stage(fail_cells={("truncated4", "normal")})
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3", "truncated4"],
            methods=("normal",), train_config=FAST,
        )
        path = tmp_path / "sweep.json"
        result.to_json(path)
        loaded = SweepResult.from_json(path)
        assert [p.status for p in loaded.points] == [
            p.status for p in result.points
        ]
        assert loaded.failures()[0].error_type == "RuntimeError"


class TestSweepResume:
    def test_interrupted_sweep_resumes_from_next_cell(self, monkeypatch, tmp_path):
        state = tmp_path / "sweep.partial.json"
        stage, calls = fake_approximation_stage(interrupt_at=3)
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                object(), object(), ["truncated3", "truncated4"],
                methods=("normal", "approxkd"), temperatures=(1.0,),
                train_config=FAST, state_path=state,
            )
        assert len(SweepResult.from_json(state).points) == 2

        stage, resumed_calls = fake_approximation_stage()
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3", "truncated4"],
            methods=("normal", "approxkd"), temperatures=(1.0,),
            train_config=FAST, state_path=state, resume=True,
        )
        assert len(result.points) == 4
        assert len(resumed_calls) == 2  # completed cells were skipped

    def test_resume_after_transient_resolve_failure_keeps_cell_identity(
        self, monkeypatch, tmp_path
    ):
        """Failed-resolve cells key by canonical name, not str(item).

        Regression: cells whose multiplier failed to resolve used to be
        recorded under ``str(item)`` while successful cells used
        ``mult.name`` — when the item was a :class:`Multiplier` instance,
        a resume after a transient resolve failure saw a drifted key and
        re-ran the cell as a duplicate.
        """
        from repro.approx import get_multiplier
        from repro.pipeline import sweep as sweep_mod

        state = tmp_path / "sweep.partial.json"
        mult = get_multiplier("truncated3")
        real_resolve = sweep_mod._resolve

        stage, calls = fake_approximation_stage()
        monkeypatch.setattr(sweep_mod, "approximation_stage", stage)

        def broken_resolve(item):
            raise RuntimeError("transient registry outage")

        monkeypatch.setattr(sweep_mod, "_resolve", broken_resolve)
        first = run_sweep(
            object(), object(), [mult], methods=("normal",),
            temperatures=(1.0,), train_config=FAST, state_path=state,
        )
        assert len(first.points) == 1
        assert first.points[0].status == "failed"
        # the canonical name, not the instance's repr
        assert first.points[0].multiplier == mult.name

        monkeypatch.setattr(sweep_mod, "_resolve", real_resolve)
        resumed = run_sweep(
            object(), object(), [mult], methods=("normal",),
            temperatures=(1.0,), train_config=FAST,
            state_path=state, resume=True,
        )
        # same identity across runs: the recorded cell is recognised,
        # neither duplicated under a drifted key nor re-executed
        assert [p.multiplier for p in resumed.points] == [mult.name]
        assert len(resumed.points) == 1
        assert calls == []

    def test_resume_requires_state_path(self):
        with pytest.raises(ConfigError, match="state_path"):
            run_sweep(object(), object(), ["truncated3"], resume=True)

    def test_resume_with_missing_state_starts_fresh(self, monkeypatch, tmp_path):
        stage, calls = fake_approximation_stage()
        monkeypatch.setattr("repro.pipeline.sweep.approximation_stage", stage)
        result = run_sweep(
            object(), object(), ["truncated3"], methods=("normal",),
            train_config=FAST,
            state_path=tmp_path / "absent.json", resume=True,
        )
        assert len(result.points) == 1
        assert len(calls) == 1


class TestCallWithRetry:
    def test_success_passes_through(self):
        value, failure = call_with_retry(lambda: 42, where="unit")
        assert value == 42 and failure is None

    def test_failure_is_structured(self, events):
        value, failure = call_with_retry(
            lambda: 1 / 0, where="unit", retries=1
        )
        assert value is None
        assert isinstance(failure, FailureRecord)
        assert failure.error_type == "ZeroDivisionError"
        assert failure.attempts == 2
        faults = [r for r in events.records if r["type"] == "fault"]
        assert len(faults) == 2

    def test_keyboard_interrupt_propagates(self):
        def boom():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            call_with_retry(boom, where="unit")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            call_with_retry(lambda: 1, where="unit", retries=-1)
