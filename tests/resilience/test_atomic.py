"""Atomic writes and corruption detection on the serialization layer."""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.models import simplecnn
from repro.utils.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    file_sha256,
)
from repro.utils.serialization import load_model, load_results, save_model, save_results

pytestmark = pytest.mark.resilience


def no_temp_files(directory):
    return not [p for p in directory.iterdir() if p.name.endswith(".tmp")]


class TestAtomicWriter:
    def test_round_trips(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "hello")
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        atomic_write_json(tmp_path / "c.json", {"k": 1})
        assert (tmp_path / "a.txt").read_text() == "hello"
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
        assert json.loads((tmp_path / "c.json").read_text()) == {"k": 1}
        assert no_temp_files(tmp_path)

    def test_exception_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "data.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_writer(target, "w") as stream:
                stream.write("half a new fi")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old"
        assert no_temp_files(tmp_path)

    def test_failed_replace_leaves_target_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "data.txt"
        target.write_text("old")

        def broken_replace(src, dst):
            raise OSError("disk pulled at the worst instant")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert no_temp_files(tmp_path)

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_unsupported_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "x", "a"):
                pass

    def test_sha256_matches_hashlib(self, tmp_path):
        path = tmp_path / "blob.bin"
        data = bytes(range(256)) * 100
        path.write_bytes(data)
        assert file_sha256(path) == hashlib.sha256(data).hexdigest()


class TestCorruptionDetection:
    def test_corrupt_results_raise_with_path(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text('{"accuracy": 0.9, "cur')  # truncated mid-write
        with pytest.raises(ReproError, match=str(path)):
            load_results(path)

    def test_corrupt_model_raises_with_path(self, tmp_path, rng):
        path = tmp_path / "model.npz"
        path.write_bytes(rng.bytes(64))  # not a zip archive at all
        with pytest.raises(ReproError, match=str(path)):
            load_model(simplecnn(base_width=4, rng=0), path)

    def test_truncated_model_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(simplecnn(base_width=4, rng=0), path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ReproError, match=str(path)):
            load_model(simplecnn(base_width=4, rng=0), path)

    def test_failed_save_results_preserves_previous(self, tmp_path):
        path = tmp_path / "results.json"
        save_results({"ok": True}, path)
        with pytest.raises(ReproError):
            save_results({"bad": object()}, path)
        assert load_results(path) == {"ok": True}
        assert no_temp_files(tmp_path)


class TestSymmetricKeyReporting:
    def test_extra_array_rejected(self, tmp_path):
        src = simplecnn(base_width=4, rng=0)
        path = tmp_path / "model.npz"
        save_model(src, path)
        from repro.utils.serialization import model_state_arrays

        arrays = model_state_arrays(src)
        arrays["phantom.weight"] = np.zeros(3, dtype=np.float32)
        with atomic_writer(path, "wb") as stream:
            np.savez(stream, **arrays)
        with pytest.raises(ReproError, match="unexpected.*phantom.weight"):
            load_model(simplecnn(base_width=4, rng=1), path)

    def test_missing_array_rejected(self, tmp_path):
        src = simplecnn(base_width=4, rng=0)
        path = tmp_path / "model.npz"
        from repro.utils.serialization import model_state_arrays

        arrays = model_state_arrays(src)
        dropped = next(iter(arrays))
        del arrays[dropped]
        with atomic_writer(path, "wb") as stream:
            np.savez(stream, **arrays)
        with pytest.raises(ReproError, match="missing"):
            load_model(simplecnn(base_width=4, rng=1), path)
