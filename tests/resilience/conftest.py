"""Fixtures for the resilience test suite."""

from __future__ import annotations

import pytest

from repro.obs import events as obs_events


@pytest.fixture
def events():
    """Route the default event log into an in-memory sink for one test."""
    log = obs_events.EventLog(run_id="test")
    sink = log.add_sink(obs_events.CollectingSink())
    previous = obs_events.set_event_log(log)
    yield sink
    obs_events.set_event_log(previous)
