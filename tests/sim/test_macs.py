"""MAC counting (paper Table I)."""

import numpy as np
import pytest

from repro.models import mobilenetv2, resnet20, resnet32, simplecnn
from repro.nn import Conv2d, Linear, Sequential
from repro.quant import quantize_model
from repro.sim import count_macs


class TestLayerFormulas:
    def test_single_conv(self):
        model = Sequential(Conv2d(3, 8, 3, stride=1, padding=1))
        report = count_macs(model, (3, 16, 16))
        assert report.total_macs == 16 * 16 * 8 * 3 * 9

    def test_strided_conv(self):
        model = Sequential(Conv2d(3, 4, 3, stride=2, padding=1))
        report = count_macs(model, (3, 16, 16))
        assert report.total_macs == 8 * 8 * 4 * 3 * 9

    def test_depthwise_conv(self):
        model = Sequential(Conv2d(8, 8, 3, padding=1, groups=8))
        report = count_macs(model, (8, 10, 10))
        assert report.total_macs == 10 * 10 * 8 * 1 * 9

    def test_linear(self):
        class Head(Sequential):
            def forward(self, x):
                from repro.autograd import flatten

                return self[0](flatten(x))

        model = Head(Linear(48, 10))
        report = count_macs(model, (3, 4, 4))
        assert report.total_macs == 480

    def test_params_included(self):
        model = Sequential(Conv2d(3, 4, 3, bias=False))
        assert count_macs(model, (3, 8, 8)).params == 4 * 3 * 9


class TestTableI:
    """The paper's Table I: #MACs for the three evaluated CNNs at 32x32."""

    def test_resnet20(self):
        assert count_macs(resnet20(rng=0), (3, 32, 32)).total_macs == pytest.approx(
            0.041e9, rel=0.05
        )

    def test_resnet32(self):
        assert count_macs(resnet32(rng=0), (3, 32, 32)).total_macs == pytest.approx(
            0.069e9, rel=0.05
        )

    def test_mobilenetv2(self):
        assert count_macs(mobilenetv2(rng=0), (3, 32, 32)).total_macs == pytest.approx(
            0.296e9, rel=0.05
        )


class TestQuantizedModels:
    def test_quantized_model_counts_like_float(self):
        fp_macs = count_macs(simplecnn(base_width=4, rng=0), (3, 16, 16)).total_macs
        qmodel = quantize_model(simplecnn(base_width=4, rng=0))
        q_macs = count_macs(qmodel, (3, 16, 16)).total_macs
        assert q_macs == fp_macs

    def test_probe_does_not_break_calibrated_model(self, quantized_model, tiny_dataset):
        from repro.distill import clone_model
        from repro.sim import evaluate_accuracy

        model = clone_model(quantized_model)
        before = evaluate_accuracy(model, tiny_dataset.test_x[:50], tiny_dataset.test_y[:50])
        count_macs(model, tiny_dataset.image_shape)
        after = evaluate_accuracy(model, tiny_dataset.test_x[:50], tiny_dataset.test_y[:50])
        assert before == after

    def test_forward_patch_restored_after_probe(self):
        model = simplecnn(base_width=4, rng=0)
        count_macs(model, (3, 16, 16))
        # A second probe must not double-count through stale patches.
        a = count_macs(model, (3, 16, 16)).total_macs
        b = count_macs(model, (3, 16, 16)).total_macs
        assert a == b
