"""Weight-memory fault injection."""

import numpy as np
import pytest

from repro.distill import clone_model
from repro.errors import ConfigError
from repro.models import simplecnn
from repro.quant import quantize_model
from repro.sim import (
    evaluate_accuracy,
    fault_sensitivity_sweep,
    inject_weight_faults,
)


class TestInjection:
    def test_zero_rate_changes_nothing_beyond_requantization(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        before = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        flipped = inject_weight_faults(model, 0.0, rng=0)
        after = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert flipped == 0
        assert after == pytest.approx(before, abs=0.05)

    def test_full_rate_destroys_accuracy(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        inject_weight_faults(model, 0.5, rng=0)
        acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert acc < 0.5

    def test_flip_count_scales_with_rate(self, quantized_model):
        low = inject_weight_faults(clone_model(quantized_model), 0.01, rng=0)
        high = inject_weight_faults(clone_model(quantized_model), 0.2, rng=0)
        assert high > low > 0

    def test_weights_stay_in_representable_range(self, quantized_model):
        from repro.quant import quant_layers

        model = clone_model(quantized_model)
        inject_weight_faults(model, 0.3, rng=1)
        for layer in quant_layers(model):
            step = layer.weight_step
            max_mag = np.abs(layer.weight.data).max()
            bound = 7 * (np.max(step) if isinstance(step, np.ndarray) else step)
            assert max_mag <= bound + 1e-6

    def test_requires_quantized_model(self):
        with pytest.raises(ConfigError):
            inject_weight_faults(simplecnn(base_width=4, rng=0), 0.1)

    def test_requires_calibration(self):
        model = quantize_model(simplecnn(base_width=4, rng=0))
        with pytest.raises(ConfigError):
            inject_weight_faults(model, 0.1)

    def test_rate_validation(self, quantized_model):
        with pytest.raises(ConfigError):
            inject_weight_faults(clone_model(quantized_model), 1.5)

    def test_deterministic_given_seed(self, quantized_model):
        a = clone_model(quantized_model)
        b = clone_model(quantized_model)
        inject_weight_faults(a, 0.1, rng=7)
        inject_weight_faults(b, 0.1, rng=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestSweep:
    def test_accuracy_degrades_with_rate(self, quantized_model, tiny_dataset):
        reports = fault_sensitivity_sweep(
            quantized_model,
            tiny_dataset.test_x[:100],
            tiny_dataset.test_y[:100],
            bit_error_rates=[0.0, 0.3],
            trials=2,
            rng=0,
        )
        assert reports[0].accuracy >= reports[1].accuracy
        assert reports[0].total_bits == reports[1].total_bits > 0

    def test_source_model_untouched(self, quantized_model, tiny_dataset):
        before = {n: p.data.copy() for n, p in quantized_model.named_parameters()}
        fault_sensitivity_sweep(
            quantized_model,
            tiny_dataset.test_x[:40],
            tiny_dataset.test_y[:40],
            bit_error_rates=[0.2],
            trials=1,
        )
        for n, p in quantized_model.named_parameters():
            np.testing.assert_array_equal(p.data, before[n])
