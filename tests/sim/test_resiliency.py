"""Per-layer resiliency analysis and heterogeneous approximation."""

import numpy as np
import pytest

from repro.distill import clone_model
from repro.errors import ConfigError
from repro.models import simplecnn
from repro.quant import named_quant_layers, quant_layers
from repro.sim import (
    attach_multiplier_map,
    evaluate_accuracy,
    greedy_heterogeneous_assignment,
    layer_resiliency,
    partial_approximation_energy,
)


class TestLayerResiliency:
    def test_one_entry_per_layer_sorted_by_drop(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        results = layer_resiliency(
            model, tiny_dataset.test_x[:80], tiny_dataset.test_y[:80], "truncated5"
        )
        assert len(results) == len(list(quant_layers(model)))
        drops = [r.drop for r in results]
        assert drops == sorted(drops)

    def test_layers_restored_after_analysis(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        layer_resiliency(
            model, tiny_dataset.test_x[:40], tiny_dataset.test_y[:40], "truncated5"
        )
        assert all(layer.multiplier is None for layer in quant_layers(model))

    def test_requires_quantized_model(self, tiny_dataset):
        with pytest.raises(ConfigError):
            layer_resiliency(
                simplecnn(base_width=4, rng=0),
                tiny_dataset.test_x[:10],
                tiny_dataset.test_y[:10],
                "truncated3",
            )


class TestAttachMultiplierMap:
    def test_assigns_only_named_layers(self, quantized_model):
        model = clone_model(quantized_model)
        names = [n for n, _ in named_quant_layers(model)]
        attach_multiplier_map(model, {names[0]: "truncated5"})
        layers = dict(named_quant_layers(model))
        assert layers[names[0]].multiplier.name == "truncated5"
        assert all(layers[n].multiplier is None for n in names[1:])

    def test_unknown_layer_name_rejected(self, quantized_model):
        model = clone_model(quantized_model)
        with pytest.raises(ConfigError):
            attach_multiplier_map(model, {"nonexistent.layer": "truncated3"})

    def test_none_detaches(self, quantized_model):
        model = clone_model(quantized_model)
        names = [n for n, _ in named_quant_layers(model)]
        attach_multiplier_map(model, {names[0]: "truncated5"})
        attach_multiplier_map(model, {names[0]: None})
        assert dict(named_quant_layers(model))[names[0]].multiplier is None


class TestGreedyAssignment:
    def test_respects_accuracy_budget(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        x, y = tiny_dataset.test_x[:100], tiny_dataset.test_y[:100]
        budget = 0.05
        assignment = greedy_heterogeneous_assignment(
            model, x, y, "truncated5", accuracy_budget=budget
        )
        baseline_model = clone_model(quantized_model)
        baseline = evaluate_accuracy(baseline_model, x, y)
        final = evaluate_accuracy(model, x, y)
        assert baseline - final <= budget + 1e-9
        assert isinstance(assignment, dict)

    def test_zero_budget_assigns_only_harmless_layers(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        x, y = tiny_dataset.test_x[:100], tiny_dataset.test_y[:100]
        assignment = greedy_heterogeneous_assignment(
            model, x, y, "truncated5", accuracy_budget=0.0
        )
        baseline = evaluate_accuracy(clone_model(quantized_model), x, y)
        assert evaluate_accuracy(model, x, y) >= baseline - 1e-9

    def test_negative_budget_rejected(self, quantized_model, tiny_dataset):
        with pytest.raises(ConfigError):
            greedy_heterogeneous_assignment(
                clone_model(quantized_model),
                tiny_dataset.test_x[:10],
                tiny_dataset.test_y[:10],
                "truncated5",
                accuracy_budget=-0.1,
            )


class TestPartialEnergy:
    def test_empty_assignment_saves_nothing(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        assert partial_approximation_energy(model, tiny_dataset.image_shape, {}) == 0.0

    def test_full_assignment_matches_uniform_savings(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        names = [n for n, _ in named_quant_layers(model)]
        savings = partial_approximation_energy(
            model, tiny_dataset.image_shape, {n: "truncated5" for n in names}
        )
        assert savings == pytest.approx(0.38, abs=1e-6)

    def test_partial_assignment_between_zero_and_full(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        names = [n for n, _ in named_quant_layers(model)]
        savings = partial_approximation_energy(
            model, tiny_dataset.image_shape, {names[0]: "truncated5"}
        )
        assert 0.0 < savings < 0.38
