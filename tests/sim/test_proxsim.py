"""ProxSim-style multiplier attachment and evaluation."""

import numpy as np
import pytest

from repro.approx import get_multiplier
from repro.distill import clone_model
from repro.models import simplecnn
from repro.quant import quant_layers
from repro.sim import (
    approximate_execution,
    attach_multiplier,
    detach_multiplier,
    evaluate_accuracy,
    resolve_multiplier,
)


class TestResolve:
    def test_by_name(self):
        assert resolve_multiplier("truncated3").name == "truncated3"

    def test_passthrough_instance(self):
        m = get_multiplier("truncated2")
        assert resolve_multiplier(m) is m

    def test_none(self):
        assert resolve_multiplier(None) is None


class TestAttachDetach:
    def test_attach_sets_all_layers(self, quantized_model):
        model = clone_model(quantized_model)
        attach_multiplier(model, "truncated4")
        assert all(
            layer.multiplier.name == "truncated4" for layer in quant_layers(model)
        )

    def test_attach_auto_error_model_for_biased_multiplier(self, quantized_model):
        model = clone_model(quantized_model)
        attach_multiplier(model, "truncated5", error_model="auto")
        layer = next(iter(quant_layers(model)))
        assert layer.error_model is not None
        assert layer.error_model.k < 0

    def test_attach_auto_error_model_for_exact_is_none(self, quantized_model):
        model = clone_model(quantized_model)
        attach_multiplier(model, "exact", error_model="auto")
        layer = next(iter(quant_layers(model)))
        assert layer.error_model is None

    def test_detach_restores_exact(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        before = evaluate_accuracy(model, tiny_dataset.test_x[:60], tiny_dataset.test_y[:60])
        attach_multiplier(model, "truncated5")
        detach_multiplier(model)
        after = evaluate_accuracy(model, tiny_dataset.test_x[:60], tiny_dataset.test_y[:60])
        assert before == after

    def test_attach_requires_quantized_model(self):
        with pytest.raises(ValueError):
            attach_multiplier(simplecnn(base_width=4, rng=0), "truncated3")


class TestContextManager:
    def test_restores_previous_state(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        attach_multiplier(model, "truncated2")
        with approximate_execution(model, "truncated5"):
            inside = next(iter(quant_layers(model))).multiplier.name
        outside = next(iter(quant_layers(model))).multiplier.name
        assert inside == "truncated5"
        assert outside == "truncated2"

    def test_restores_on_exception(self, quantized_model):
        model = clone_model(quantized_model)
        with pytest.raises(RuntimeError):
            with approximate_execution(model, "truncated5"):
                raise RuntimeError("boom")
        assert next(iter(quant_layers(model))).multiplier is None


class TestEvaluateAccuracy:
    def test_range_and_restore_mode(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        model.train()
        acc = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert 0.0 <= acc <= 1.0
        assert model.training  # restored

    def test_severe_approximation_hurts_accuracy(self, quantized_model, tiny_dataset):
        """The 48.8%-MRE multiplier must collapse accuracy toward chance."""
        model = clone_model(quantized_model)
        exact = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        attach_multiplier(model, "evoapprox249")
        broken = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert broken < exact
        assert broken < 0.45

    def test_mild_approximation_mostly_harmless(self, quantized_model, tiny_dataset):
        model = clone_model(quantized_model)
        exact = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        attach_multiplier(model, "truncated1")
        mild = evaluate_accuracy(model, tiny_dataset.test_x, tiny_dataset.test_y)
        assert mild >= exact - 0.1
