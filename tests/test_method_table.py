"""The shared method-comparison runner used by the table benchmarks."""

import pytest

from benchmarks.method_table import (
    GENTLE_LR_FACTOR,
    MethodTableRow,
    adaptive_train_config,
    format_rows,
    run_method_table,
    table_headers,
)
from repro.train import TrainConfig

FAST = TrainConfig(epochs=1, batch_size=64, lr=0.005, grad_clip=1.0, seed=0)
METHODS = ("normal", "ge", "approxkd", "approxkd_ge")


@pytest.fixture(scope="module")
def rows(quantized_model, tiny_dataset):
    return run_method_table(
        quantized_model,
        tiny_dataset,
        ["truncated1", "truncated5", "evoapprox228"],
        METHODS,
        FAST,
    )


class TestRunMethodTable:
    def test_one_row_per_multiplier(self, rows):
        assert [r.multiplier for r in rows] == [
            "truncated1",
            "truncated5",
            "evoapprox228",
        ]

    def test_mild_multiplier_not_fine_tuned(self, rows):
        """truncated-1 degrades < 1%: the paper's '-' row."""
        row = rows[0]
        assert not row.fine_tuned
        assert row.final == {}

    def test_aggressive_multiplier_fine_tuned_with_all_methods(self, rows):
        row = rows[1]
        assert row.fine_tuned
        assert set(row.final) == set(METHODS)

    def test_evoapprox_ge_reuses_ste_run(self, rows):
        row = rows[2]
        if row.fine_tuned:
            assert row.ge_equals_normal
            assert row.final["ge"] == row.final["normal"]
            assert row.final["approxkd_ge"] == row.final["approxkd"]

    def test_metadata_populated(self, rows):
        for row in rows:
            assert row.mre >= 0
            assert row.paper_mre is not None
            assert 0 <= row.initial_accuracy <= 1


class TestAdaptiveConfig:
    def test_collapsed_model_keeps_full_rate(self):
        cfg = adaptive_train_config(FAST, initial_accuracy=0.10, reference_accuracy=0.85)
        assert cfg.lr == FAST.lr

    def test_mild_degradation_uses_gentle_rate(self):
        cfg = adaptive_train_config(FAST, initial_accuracy=0.80, reference_accuracy=0.85)
        assert cfg.lr == pytest.approx(FAST.lr * GENTLE_LR_FACTOR)

    def test_other_settings_preserved(self):
        cfg = adaptive_train_config(FAST, 0.80, 0.85)
        assert cfg.epochs == FAST.epochs
        assert cfg.batch_size == FAST.batch_size
        assert cfg.grad_clip == FAST.grad_clip


class TestFormatting:
    def test_headers_match_columns(self, rows):
        headers = table_headers(METHODS)
        formatted = format_rows(rows, METHODS)
        assert all(len(row) == len(headers) for row in formatted)

    def test_untuned_row_shows_dashes(self, rows):
        formatted = format_rows(rows, METHODS)
        assert formatted[0][5:] == ["-"] * len(METHODS)

    def test_ge_reuse_marked_with_star(self, rows):
        formatted = format_rows(rows, METHODS)
        row = formatted[2]
        if rows[2].fine_tuned:
            ge_col = 5 + METHODS.index("ge")
            assert row[ge_col].endswith("*")
