"""Gradient checks and semantics for activations and losses."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    cross_entropy_with_probs,
    leaky_relu,
    log_softmax,
    log_softmax_np,
    relu,
    relu6,
    sigmoid,
    softmax,
    softmax_cross_entropy,
    softmax_np,
    tanh,
)
from repro.errors import ShapeError


def t64(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestActivations:
    def test_relu_values(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self, rng):
        vals = rng.normal(size=(10,))
        vals = vals[np.abs(vals) > 0.05]  # stay off the kink
        check_gradients(relu, [t64(vals)])

    def test_relu6_clips_both_sides(self):
        out = relu6(Tensor([-1.0, 3.0, 8.0]))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_relu6_gradient(self):
        a = t64([-1.0, 3.0, 8.0])
        out = relu6(a)
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_leaky_relu_gradient(self, rng):
        vals = rng.normal(size=(8,))
        vals = vals[np.abs(vals) > 0.05]
        check_gradients(lambda x: leaky_relu(x, 0.1), [t64(vals)])

    def test_sigmoid_gradient(self, rng):
        check_gradients(sigmoid, [t64(rng.normal(size=(5,)))])

    def test_tanh_gradient(self, rng):
        check_gradients(tanh, [t64(rng.normal(size=(5,)))])


class TestSoftmax:
    def test_softmax_np_sums_to_one(self, rng):
        probs = softmax_np(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-6)

    def test_softmax_np_stable_for_large_logits(self):
        probs = softmax_np(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_np_consistency(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            np.exp(log_softmax_np(logits)), softmax_np(logits), rtol=1e-6
        )

    def test_softmax_gradient(self, rng):
        check_gradients(lambda x: softmax(x, axis=1), [t64(rng.normal(size=(3, 4)))])

    def test_log_softmax_gradient(self, rng):
        check_gradients(
            lambda x: log_softmax(x, axis=1), [t64(rng.normal(size=(3, 4)))]
        )


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        loss = softmax_cross_entropy(Tensor(logits.astype(np.float32)), labels)
        manual = -log_softmax_np(logits)[np.arange(4), labels].mean()
        assert loss.item() == pytest.approx(manual, rel=1e-5)

    def test_gradient(self, rng):
        logits = t64(rng.normal(size=(5, 8)))
        labels = rng.integers(0, 8, size=5)
        check_gradients(lambda l: softmax_cross_entropy(l, labels), [logits])

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = softmax_cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-5

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3))


class TestCrossEntropyWithProbs:
    def test_matches_hard_loss_for_onehot(self, rng):
        logits = rng.normal(size=(4, 5)).astype(np.float64)
        labels = rng.integers(0, 5, size=4)
        onehot = np.eye(5)[labels]
        soft = cross_entropy_with_probs(Tensor(logits), onehot)
        hard = softmax_cross_entropy(Tensor(logits), labels)
        assert soft.item() == pytest.approx(hard.item(), rel=1e-5)

    def test_gradient(self, rng):
        logits = t64(rng.normal(size=(4, 5)))
        targets = softmax_np(rng.normal(size=(4, 5)))
        check_gradients(lambda l: cross_entropy_with_probs(l, targets), [logits])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            cross_entropy_with_probs(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_minimised_at_target_distribution(self, rng):
        # Gradient should vanish when softmax(logits) == targets.
        targets = softmax_np(rng.normal(size=(3, 4)))
        logits = Tensor(np.log(targets), requires_grad=True)
        loss = cross_entropy_with_probs(logits, targets)
        loss.backward()
        np.testing.assert_allclose(logits.grad, np.zeros_like(targets), atol=1e-6)
