"""im2col / col2im correctness, including the adjoint property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import col2im, conv_out_size, im2col, sliding_windows
from repro.errors import ShapeError


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(8, 3, 1, 1) == 8
        assert conv_out_size(8, 3, 2, 1) == 4
        assert conv_out_size(5, 3, 1, 0) == 3

    def test_rejects_too_small(self):
        with pytest.raises(ShapeError):
            conv_out_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols, (oh, ow) = im2col(x, (3, 3), stride=2, padding=1)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2 * 16, 3 * 9)

    def test_1x1_kernel_is_reshape(self, rng):
        x = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        cols, _ = im2col(x, (1, 1))
        np.testing.assert_allclose(cols, x.transpose(0, 2, 3, 1).reshape(9, 4))

    def test_values_manual(self):
        x = np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, _ = im2col(x, (2, 2), stride=2)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[3], [10, 11, 14, 15])

    def test_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 3)), (2, 2))

    def test_conv_as_gemm_equals_reference(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float64)
        cols, (oh, ow) = im2col(x, (3, 3), stride=1, padding=1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, oh, ow, 4).transpose(0, 3, 1, 2)
        from repro.autograd import Tensor, conv2d

        ref = conv2d(Tensor(x), Tensor(w), None, 1, 1).data
        np.testing.assert_allclose(out, ref, rtol=1e-6)


class TestCol2im:
    def test_adjoint_property(self, rng):
        """col2im is the transpose of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, (3, 3), stride=2, padding=1)
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, (3, 3), stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_rejects_wrong_shape(self, rng):
        with pytest.raises(ShapeError):
            col2im(np.zeros((5, 5)), (1, 1, 4, 4), (2, 2))

    @settings(max_examples=20, deadline=None)
    @given(
        h=st.integers(4, 9),
        k=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_adjoint_property_randomised(self, h, k, stride, padding):
        if h + 2 * padding < k:
            return
        rng = np.random.default_rng(h * 100 + k * 10 + stride)
        x = rng.normal(size=(1, 2, h, h))
        cols, _ = im2col(x, (k, k), stride, padding)
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, (k, k), stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)


class TestSlidingWindows:
    def test_shape_and_values(self, rng):
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        win = sliding_windows(x, (3, 3), stride=1, padding=0)
        assert win.shape == (1, 2, 3, 3, 3, 3)
        np.testing.assert_allclose(win[0, 1, 2, 2], x[0, 1, 2:5, 2:5])

    def test_windows_match_im2col(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        win = sliding_windows(x, (2, 2), stride=2, padding=1)
        n, c, oh, ow, kh, kw = win.shape
        cols_from_win = win.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
        cols, _ = im2col(x, (2, 2), stride=2, padding=1)
        np.testing.assert_allclose(cols_from_win, cols)


class TestSlidingWindowsValidation:
    def test_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            sliding_windows(np.zeros((2, 5, 5)), (3, 3))
        with pytest.raises(ShapeError):
            sliding_windows(np.zeros((5, 5)), (3, 3))


class TestColPlans:
    """Shape-stationary im2col/col2im plans must be bitwise-invisible."""

    def _cases(self, rng):
        return [
            (rng.normal(size=(2, 3, 8, 8)).astype(np.float32), (3, 3), 1, 1),
            (rng.normal(size=(1, 2, 9, 7)).astype(np.float32), (3, 3), 2, 1),
            (rng.normal(size=(2, 4, 6, 6)).astype(np.float32), (2, 2), 2, 0),
            (rng.integers(-7, 8, size=(3, 2, 5, 5)).astype(np.int32), (3, 3), 1, 2),
        ]

    def test_im2col_identical_with_and_without_plans(self, rng):
        from repro.approx.plan import train_plans_disabled
        from repro.autograd.im2col import clear_col_plans

        for x, kernel, stride, padding in self._cases(rng):
            clear_col_plans()
            with train_plans_disabled():
                ref, ref_shape = im2col(x, kernel, stride, padding)
            for _ in range(3):  # repeat so pooled buffers get reused
                cols, out_shape = im2col(x, kernel, stride, padding)
                assert out_shape == ref_shape
                np.testing.assert_array_equal(cols, ref)

    def test_col2im_identical_with_and_without_plans(self, rng):
        from repro.approx.plan import train_plans_disabled
        from repro.autograd.im2col import clear_col_plans

        for x, kernel, stride, padding in self._cases(rng):
            cols, _ = im2col(x, kernel, stride, padding)
            c = rng.normal(size=cols.shape).astype(np.float64)
            clear_col_plans()
            with train_plans_disabled():
                ref = col2im(c, x.shape, kernel, stride, padding)
            for _ in range(3):
                np.testing.assert_array_equal(
                    col2im(c, x.shape, kernel, stride, padding), ref
                )

    def test_interleaved_forward_backward_pool_reuse(self, rng):
        # im2col needs border-clean padding buffers; col2im dirties its
        # accumulation scratch. Interleaving the two must never leak a
        # dirty buffer into the border-clean pool.
        from repro.autograd.im2col import clear_col_plans

        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        clear_col_plans()
        ref_cols, _ = im2col(x, (3, 3), 1, 1)
        c = rng.normal(size=ref_cols.shape)
        ref_dx = col2im(c, x.shape, (3, 3), 1, 1)
        for _ in range(4):
            cols, _ = im2col(x, (3, 3), 1, 1)
            np.testing.assert_array_equal(cols, ref_cols)
            np.testing.assert_array_equal(col2im(c, x.shape, (3, 3), 1, 1), ref_dx)

    def test_plans_are_counted_and_clearable(self, rng):
        from repro.autograd.im2col import _col_plans, clear_col_plans
        from repro.obs import profiling as prof

        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        clear_col_plans()
        with prof.profiled() as report:
            im2col(x, (3, 3), 1, 1)
            im2col(x, (3, 3), 1, 1)
        assert report.counter("autograd.col_plan_built").calls == 1
        assert len(_col_plans) == 1
        clear_col_plans()
        assert len(_col_plans) == 0
