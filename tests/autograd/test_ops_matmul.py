"""Gradient checks for matmul, linear, convolution and pooling."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    check_gradients,
    conv2d,
    global_avg_pool,
    linear,
    matmul,
    max_pool2d,
)
from repro.errors import ShapeError


def t64(arr, scale=1.0):
    return Tensor(np.asarray(arr, dtype=np.float64) * scale, requires_grad=True)


class TestMatMul:
    def test_value(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose((a @ b).data, [[11.0]])

    def test_gradient(self, rng):
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(4, 5)))
        check_gradients(matmul, [a, b])


class TestLinear:
    def test_matches_manual(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        w = rng.normal(size=(4, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        out = linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-5)

    def test_gradient_with_bias(self, rng):
        x = t64(rng.normal(size=(3, 4)))
        w = t64(rng.normal(size=(5, 4)))
        b = t64(rng.normal(size=(5,)))
        check_gradients(lambda x, w, b: linear(x, w, b), [x, w, b])

    def test_gradient_without_bias(self, rng):
        x = t64(rng.normal(size=(3, 4)))
        w = t64(rng.normal(size=(5, 4)))
        check_gradients(lambda x, w: linear(x, w), [x, w])


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)).astype(np.float32))
        assert conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
        assert conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)

    def test_matches_direct_computation(self, rng):
        # Hand-rolled dense conv as the reference.
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        out = conv2d(Tensor(x), Tensor(w)).data
        ref = np.zeros((1, 3, 3, 3))
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    ref[0, oc, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[oc]).sum()
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_gradient_dense(self, rng):
        x = t64(rng.normal(size=(2, 3, 6, 6)), 0.5)
        w = t64(rng.normal(size=(4, 3, 3, 3)), 0.2)
        b = t64(rng.normal(size=(4,)), 0.1)
        check_gradients(lambda x, w, b: conv2d(x, w, b, 2, 1), [x, w, b])

    def test_gradient_depthwise(self, rng):
        x = t64(rng.normal(size=(2, 4, 5, 5)), 0.5)
        w = t64(rng.normal(size=(4, 1, 3, 3)), 0.3)
        check_gradients(lambda x, w: conv2d(x, w, None, 1, 1, groups=4), [x, w])

    def test_gradient_grouped(self, rng):
        x = t64(rng.normal(size=(2, 6, 5, 5)), 0.5)
        w = t64(rng.normal(size=(4, 3, 3, 3)), 0.3)
        check_gradients(lambda x, w: conv2d(x, w, None, 1, 0, groups=2), [x, w])

    def test_grouped_matches_blockwise_dense(self, rng):
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        w = rng.normal(size=(6, 2, 3, 3)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), None, 1, 1, groups=2).data
        lo = conv2d(Tensor(x[:, :2]), Tensor(w[:3]), None, 1, 1).data
        hi = conv2d(Tensor(x[:, 2:]), Tensor(w[3:]), None, 1, 1).data
        np.testing.assert_allclose(out, np.concatenate([lo, hi], axis=1), rtol=1e-5)

    def test_rejects_bad_groups(self, rng):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((4, 3, 3, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            conv2d(x, w, None, 1, 1, groups=2)

    def test_rejects_channel_mismatch(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((4, 2, 3, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            conv2d(x, w)


class TestPooling:
    def test_avg_pool_value(self):
        x = Tensor(np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self, rng):
        x = t64(rng.normal(size=(2, 3, 4, 4)))
        check_gradients(lambda x: avg_pool2d(x, 2), [x])

    def test_max_pool_value(self):
        x = Tensor(np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient(self, rng):
        vals = rng.permutation(32).astype(np.float64).reshape(2, 1, 4, 4)
        check_gradients(lambda x: max_pool2d(x, 2), [t64(vals)])

    def test_max_pool_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)).astype(np.float32))
        assert max_pool2d(x, 2, stride=1).shape == (1, 2, 5, 5)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = global_avg_pool(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)

    def test_global_avg_pool_gradient(self, rng):
        check_gradients(global_avg_pool, [t64(rng.normal(size=(2, 3, 4, 4)))])
