"""Gradient checks and semantics for elementwise ops."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    abs_,
    add,
    check_gradients,
    clip,
    div,
    exp,
    log,
    maximum,
    mul,
    pow_scalar,
    sqrt,
    sub,
)


def t64(arr, requires_grad=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=requires_grad)


class TestForward:
    def test_add(self):
        np.testing.assert_allclose(add([1.0, 2.0], [3.0, 4.0]).data, [4.0, 6.0])

    def test_sub(self):
        np.testing.assert_allclose(sub([5.0], [3.0]).data, [2.0])

    def test_mul(self):
        np.testing.assert_allclose(mul([2.0], [4.0]).data, [8.0])

    def test_div(self):
        np.testing.assert_allclose(div([8.0], [4.0]).data, [2.0])

    def test_operator_overloads(self):
        a, b = Tensor([6.0]), Tensor([2.0])
        np.testing.assert_allclose((a + b).data, [8.0])
        np.testing.assert_allclose((a - b).data, [4.0])
        np.testing.assert_allclose((a * b).data, [12.0])
        np.testing.assert_allclose((a / b).data, [3.0])
        np.testing.assert_allclose((-a).data, [-6.0])
        np.testing.assert_allclose((a**2).data, [36.0])

    def test_reflected_operators(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((3.0 + a).data, [5.0])
        np.testing.assert_allclose((3.0 - a).data, [1.0])
        np.testing.assert_allclose((3.0 * a).data, [6.0])
        np.testing.assert_allclose((3.0 / a).data, [1.5])

    def test_clip_values(self):
        out = clip([-2.0, 0.5, 2.0], -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])


class TestGradients:
    def test_add_broadcast(self, rng):
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(4,)))
        check_gradients(add, [a, b])

    def test_sub_broadcast(self, rng):
        a = t64(rng.normal(size=(2, 3)))
        b = t64(rng.normal(size=(1, 3)))
        check_gradients(sub, [a, b])

    def test_mul_broadcast(self, rng):
        a = t64(rng.normal(size=(3, 4)))
        b = t64(rng.normal(size=(3, 1)))
        check_gradients(mul, [a, b])

    def test_div(self, rng):
        a = t64(rng.normal(size=(3,)))
        b = t64(rng.uniform(1.0, 2.0, size=(3,)))
        check_gradients(div, [a, b])

    def test_pow_scalar(self, rng):
        a = t64(rng.uniform(0.5, 2.0, size=(4,)))
        check_gradients(lambda x: pow_scalar(x, 3.0), [a])

    def test_exp(self, rng):
        check_gradients(exp, [t64(rng.normal(size=(4,)))])

    def test_log(self, rng):
        check_gradients(log, [t64(rng.uniform(0.5, 3.0, size=(4,)))])

    def test_sqrt(self, rng):
        check_gradients(sqrt, [t64(rng.uniform(0.5, 3.0, size=(4,)))])

    def test_abs_away_from_zero(self, rng):
        vals = rng.uniform(0.5, 2.0, size=(4,)) * rng.choice([-1.0, 1.0], size=4)
        check_gradients(abs_, [t64(vals)])

    def test_maximum(self, rng):
        a = t64(rng.normal(size=(5,)))
        b = t64(rng.normal(size=(5,)) + 0.01)
        check_gradients(maximum, [a, b])

    def test_clip_gradient_zero_outside(self):
        a = Tensor(np.array([-2.0, 0.0, 2.0], dtype=np.float64), requires_grad=True)
        out = clip(a, -1.0, 1.0)
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_chain_rule_composition(self, rng):
        a = t64(rng.uniform(0.5, 1.5, size=(3,)))
        check_gradients(lambda x: exp(mul(x, x)), [a])


class TestBroadcastingEdgeCases:
    def test_scalar_plus_matrix(self, rng):
        a = t64(rng.normal(size=()))
        b = t64(rng.normal(size=(2, 3)))
        check_gradients(add, [a, b])

    def test_leading_axis_broadcast(self, rng):
        a = t64(rng.normal(size=(2, 1, 3)))
        b = t64(rng.normal(size=(4, 3)))
        check_gradients(mul, [a, b])
