"""Autograd Function contract: arity validation and error surfacing."""

import numpy as np
import pytest

from repro.autograd import Function, Tensor, unbroadcast
from repro.errors import AutogradError


class BadArity(Function):
    """Returns the wrong number of parent gradients."""

    def forward(self, a, b):
        return np.asarray(a) + np.asarray(b)

    def backward(self, grad_out):
        return (grad_out,)  # should be two


class WrongShape(Function):
    def forward(self, a):
        return np.asarray(a) * 2.0

    def backward(self, grad_out):
        return (np.zeros(99, dtype=grad_out.dtype),)


class TestBackwardValidation:
    def test_wrong_gradient_count_detected(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = BadArity.apply(a, b)
        with pytest.raises(AutogradError, match="1 gradients for 2 parents"):
            out.backward()

    def test_wrong_gradient_shape_detected(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = WrongShape.apply(a)
        with pytest.raises(AutogradError, match="shape"):
            out.backward(np.ones(2))

    def test_single_gradient_tuple_normalisation(self):
        class Scalar(Function):
            def forward(self, a):
                return np.asarray(a) * 3.0

            def backward(self, grad_out):
                return grad_out * 3.0  # bare array, not tuple

        a = Tensor([2.0], requires_grad=True)
        Scalar.apply(a).backward()
        np.testing.assert_allclose(a.grad, [3.0])


class TestApplySemantics:
    def test_non_tensor_args_are_not_parents(self):
        class WithConst(Function):
            def forward(self, a, k):
                return np.asarray(a) * k

            def backward(self, grad_out):
                return (grad_out * 2.0, None)

        a = Tensor([1.0], requires_grad=True)
        out = WithConst.apply(a, 2.0)
        assert out.creator.parents == (a, None)

    def test_no_graph_when_nothing_requires_grad(self):
        a = Tensor([1.0])
        out = BadArity.apply(a, Tensor([2.0]))
        assert out.creator is None and not out.requires_grad


class TestUnbroadcast:
    def test_identity_for_matching_shape(self, rng):
        g = rng.normal(size=(3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_sums_leading_axes(self, rng):
        g = rng.normal(size=(5, 3))
        np.testing.assert_allclose(unbroadcast(g, (3,)), g.sum(axis=0))

    def test_sums_size_one_axes(self, rng):
        g = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            unbroadcast(g, (1, 3)), g.sum(axis=0, keepdims=True)
        )

    def test_scalar_target(self, rng):
        g = rng.normal(size=(2, 2))
        np.testing.assert_allclose(unbroadcast(g, ()), g.sum())
