"""Tests for the Tensor core: construction, backward semantics, graph."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, no_grad
from repro.errors import AutogradError


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_properties(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        t = as_tensor(2.5)
        assert t.item() == pytest.approx(2.5)

    def test_item_requires_single_element(self):
        with pytest.raises(AutogradError):
            Tensor([1.0, 2.0]).item()


class TestDetach:
    def test_detach_shares_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_detach_cuts_graph(self):
        t = Tensor([2.0], requires_grad=True)
        y = (t * 3.0).detach() * 2.0
        assert not y.requires_grad


class TestBackward:
    def test_scalar_backward_default_seed(self):
        t = Tensor([3.0], requires_grad=True)
        y = t * t
        y.backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_nonscalar_backward_requires_gradient(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        y = t * 2.0
        with pytest.raises(AutogradError):
            y.backward()

    def test_wrong_gradient_shape_rejected(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        y = t * 2.0
        with pytest.raises(AutogradError):
            y.backward(np.ones(3))

    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        (t * 3.0).backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_sums_paths(self):
        # y = a*a + a*a -> dy/da = 4a
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        y = b + b
        y.backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_shared_input_used_twice(self):
        a = Tensor([2.0], requires_grad=True)
        y = a * a * a  # a^3, grad = 3a^2
        y.backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_deep_chain_does_not_overflow_recursion(self):
        t = Tensor([1.0], requires_grad=True)
        y = t
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_intermediate_requires_grad_gets_grad(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        y = b * 2.0
        y.backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = t * 2.0
        assert not y.requires_grad
        assert y.creator is None

    def test_no_grad_restores_state(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        y = t * 2.0
        assert y.requires_grad

    def test_no_grad_restores_on_exception(self):
        t = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert (t * 2.0).requires_grad
