"""Gradient checks for shape and reduction ops."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    broadcast_to,
    check_gradients,
    concat,
    flatten,
    getitem,
    max_,
    mean,
    pad2d,
    reshape,
    sum_,
    transpose,
)
from repro.errors import ShapeError


def t64(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        a = t64(rng.normal(size=(2, 6)))
        check_gradients(lambda x: reshape(x, (3, 4)), [a])

    def test_reshape_with_minus_one(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert reshape(a, (2, -1)).shape == (2, 12)

    def test_flatten(self, rng):
        a = t64(rng.normal(size=(2, 3, 4)))
        out = flatten(a)
        assert out.shape == (2, 12)
        check_gradients(lambda x: flatten(x), [a])

    def test_transpose_default_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert transpose(a).shape == (4, 3, 2)

    def test_transpose_gradient(self, rng):
        a = t64(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda x: transpose(x, (1, 2, 0)), [a])

    def test_pad2d_shape(self):
        a = Tensor(np.zeros((1, 2, 4, 4)))
        assert pad2d(a, (1, 2)).shape == (1, 2, 6, 8)

    def test_pad2d_gradient(self, rng):
        a = t64(rng.normal(size=(2, 2, 3, 3)))
        check_gradients(lambda x: pad2d(x, (1, 1)), [a])

    def test_pad2d_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            pad2d(Tensor(np.zeros((3, 3))), (1, 1))

    def test_getitem_gradient_scatters(self):
        a = t64(np.arange(6.0).reshape(2, 3))
        out = getitem(a, (0, slice(None)))
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [[1, 1, 1], [0, 0, 0]])

    def test_concat_gradient(self, rng):
        a = t64(rng.normal(size=(2, 3)))
        b = t64(rng.normal(size=(2, 2)))
        check_gradients(lambda x, y: concat(x, y, axis=1), [a, b])

    def test_broadcast_to_gradient(self, rng):
        a = t64(rng.normal(size=(1, 3)))
        check_gradients(lambda x: broadcast_to(x, (4, 3)), [a])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradients(lambda x: sum_(x), [t64(rng.normal(size=(3, 4)))])

    def test_sum_axis(self, rng):
        check_gradients(lambda x: sum_(x, axis=1), [t64(rng.normal(size=(3, 4)))])

    def test_sum_keepdims(self, rng):
        check_gradients(
            lambda x: sum_(x, axis=(0, 2), keepdims=True),
            [t64(rng.normal(size=(2, 3, 4)))],
        )

    def test_mean_all(self, rng):
        check_gradients(lambda x: mean(x), [t64(rng.normal(size=(3, 4)))])

    def test_mean_axis_tuple(self, rng):
        check_gradients(
            lambda x: mean(x, axis=(0, 2)), [t64(rng.normal(size=(2, 3, 4)))]
        )

    def test_mean_value(self):
        assert mean(Tensor([1.0, 2.0, 3.0])).item() == pytest.approx(2.0)

    def test_max_gradient_unique(self, rng):
        vals = rng.permutation(12).astype(np.float64).reshape(3, 4)
        check_gradients(lambda x: max_(x, axis=1), [t64(vals)])

    def test_max_value_and_tie_split(self):
        a = Tensor(np.array([[1.0, 1.0]], dtype=np.float64), requires_grad=True)
        out = max_(a, axis=1)
        out.backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_negative_axis(self, rng):
        check_gradients(lambda x: sum_(x, axis=-1), [t64(rng.normal(size=(2, 3)))])

    def test_tensor_methods(self, rng):
        a = Tensor(rng.normal(size=(2, 3)).astype(np.float32))
        assert a.sum().shape == ()
        assert a.mean(axis=0).shape == (3,)
        assert a.max(axis=1).shape == (2,)
