"""The numerical gradient checker itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Function, Tensor, check_gradients, numerical_gradient


class CorrectSquare(Function):
    def forward(self, a):
        self.a = np.asarray(a)
        return self.a**2

    def backward(self, grad_out):
        return (grad_out * 2.0 * self.a,)


class WrongSquare(Function):
    def forward(self, a):
        self.a = np.asarray(a)
        return self.a**2

    def backward(self, grad_out):
        return (grad_out * 3.0 * self.a,)  # deliberately wrong factor


class TestChecker:
    def test_accepts_correct_gradient(self, rng):
        t = Tensor(rng.normal(size=(4,)).astype(np.float64), requires_grad=True)
        check_gradients(lambda x: CorrectSquare.apply(x), [t])

    def test_rejects_wrong_gradient(self, rng):
        t = Tensor(rng.uniform(0.5, 2.0, size=(4,)).astype(np.float64), requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(lambda x: WrongSquare.apply(x), [t])

    def test_numerical_gradient_value(self):
        t = Tensor(np.array([3.0], dtype=np.float64), requires_grad=True)
        grad = numerical_gradient(lambda x: CorrectSquare.apply(x), [t], wrt=0)
        np.testing.assert_allclose(grad, [6.0], rtol=1e-5)

    def test_skips_inputs_without_requires_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)).astype(np.float64), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)).astype(np.float64))  # constant
        from repro.autograd import mul

        check_gradients(lambda x, y: mul(x, y), [a, b])

    def test_reports_missing_gradient(self):
        class Detaching(Function):
            def forward(self, a):
                return np.asarray(a) * 1.0

            def backward(self, grad_out):
                return (None,)

        t = Tensor(np.ones(2, dtype=np.float64), requires_grad=True)
        with pytest.raises(AssertionError, match="no gradient"):
            check_gradients(lambda x: Detaching.apply(x), [t])
