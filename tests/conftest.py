"""Shared fixtures: small datasets and models sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_cifar
from repro.models import simplecnn
from repro.pipeline import quantization_stage
from repro.train import TrainConfig, cross_entropy_loss, train_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """300/150 split of 16x16 synthetic images — fast but learnable."""
    return make_synthetic_cifar(num_train=300, num_test=150, image_size=16, seed=7)


@pytest.fixture(scope="session")
def trained_fp_model(tiny_dataset):
    """A SimpleCNN trained to high accuracy on the tiny dataset.

    Session-scoped: tests must not mutate it (clone first).
    """
    model = simplecnn(base_width=8, rng=0)
    config = TrainConfig(epochs=6, batch_size=64, lr=0.05, momentum=0.9, seed=0)
    train_model(model, tiny_dataset, cross_entropy_loss(), config)
    model.eval()
    return model


@pytest.fixture(scope="session")
def quantized_model(trained_fp_model, tiny_dataset):
    """8A4W-quantized + KD-fine-tuned version of the trained model.

    Session-scoped: tests must not mutate it (clone first).
    """
    config = TrainConfig(epochs=2, batch_size=64, lr=0.01, momentum=0.9, seed=0)
    model, _ = quantization_stage(
        trained_fp_model, tiny_dataset, train_config=config, temperature=1.0
    )
    model.eval()
    return model
