"""Quantization configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QConfig:
    """Layer-wise symmetric quantization settings.

    The paper's configuration — 8-bit activations, 4-bit weights, power-of-
    two steps, MinPropQE calibration — is the default and is exposed as
    :data:`QCONFIG_8A4W`.
    """

    activation_bits: int = 8
    weight_bits: int = 4
    pow2_steps: bool = True
    weight_observer: str = "minpropqe"
    activation_observer: str = "minmax"
    # Per-output-channel weight steps (extension beyond the paper's
    # layer-wise scheme). Calibrated from per-channel maxima; the chosen
    # weight observer is bypassed in this mode.
    per_channel_weights: bool = False

    def __post_init__(self) -> None:
        if self.activation_bits < 2 or self.weight_bits < 2:
            raise QuantizationError(
                f"bit-widths must be >= 2, got A{self.activation_bits}/W{self.weight_bits}"
            )

    @property
    def label(self) -> str:
        """Human-readable tag, e.g. ``8A4W``."""
        return f"{self.activation_bits}A{self.weight_bits}W"


QCONFIG_8A4W = QConfig()
QCONFIG_8A8W = QConfig(weight_bits=8)
