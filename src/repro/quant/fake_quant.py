"""Fake quantization with a straight-through estimator (STE).

The forward pass performs the quantize→dequantize round trip; the backward
pass passes gradients straight through inside the representable range and
zeroes them outside (clipped STE), following [18] (Bengio et al.) as cited
by the paper for the gradients of ``round``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.obs import profiling as prof
from repro.quant.quantizer import dequantize, qrange, quantize


class FakeQuantize(Function):
    """Quantize-dequantize with clipped-STE backward."""

    def forward(self, x, step: float, bits: int):
        x = np.asarray(x)
        with prof.timer("quant.fake_quantize", nbytes=x.nbytes):
            prof.count("quant.fake_quantized_elements", n=x.size)
            lo, hi = qrange(bits)
            self.pass_mask = (x >= lo * step) & (x <= hi * step)
            return dequantize(quantize(x, step, bits), step).astype(x.dtype)

    def backward(self, grad_out):
        return (grad_out * self.pass_mask, None, None)


def fake_quantize(x, step: float, bits: int) -> Tensor:
    """Differentiable (STE) symmetric fake quantization."""
    return FakeQuantize.apply(as_tensor(x), float(step), int(bits))
