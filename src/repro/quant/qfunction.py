"""Autograd Functions for quantized (and approximate) GEMM layers.

These Functions implement the full forward of Algorithm 1's inner loop:
quantize activations and weights to symmetric integer codes, run the GEMM on
integer codes — exactly, or through an approximate multiplier LUT — then
rescale by the product of step sizes and add the float bias.

The backward pass implements:

- the **STE** of Eq. 5: gradients flow as if the GEMM were exact, through
  the fake-quantized operands, with clipped-STE masks at the quantizer
  saturation boundaries; and
- **gradient estimation** of Eq. 12: when an error model with non-zero slope
  is attached, the upstream gradient is scaled elementwise by ``(1 + K)``,
  where ``K`` is the derivative of the fitted error function evaluated at
  the *exact* GEMM outputs (Eq. 13).

Weight-derived state is memoized in a
:class:`~repro.approx.plan.LayerKernelState` held by the layer's
:class:`~repro.approx.plan.PlanCache`: the forward GEMM plan, the
fake-quantized weight layouts the backward pass needs, and the converted
exact-GEMM operands gradient estimation needs. A revalidation hook keeps
all of it alive across optimizer steps whenever the *integer codes* did
not change (small-learning-rate SGD barely moves 4-bit codes), which is
what makes repeated-batch retraining as cheap as repeated evaluation.
Every cached path is bitwise identical to the uncached reference
(``tests/quant/test_train_plans.py``).
"""

from __future__ import annotations

import numpy as np

from repro.approx.backend import float_matmul
from repro.approx.gemm import approx_matmul, exact_int_matmul, exact_int_matmul_cached
from repro.approx.multiplier import Multiplier
from repro.approx.plan import (
    GemmPlan,
    LayerKernelState,
    build_plan,
    plan_caching_enabled,
    repair_plan,
    train_plans_enabled,
)
from repro.autograd.function import Function
from repro.autograd.im2col import col2im, conv_out_size, im2col, sliding_windows
from repro.errors import QuantizationError, ShapeError
from repro.ge.error_model import PiecewiseLinearErrorModel
from repro.quant.quantizer import qrange


def _quantize_codes(x: np.ndarray, step, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Integer codes and the clipped-STE pass-through mask.

    ``step`` may be a scalar (layer-wise) or an array broadcastable against
    ``x`` (per-output-channel weight steps).
    """
    lo, hi = qrange(bits)
    scaled = np.asarray(x) / step
    codes = np.clip(np.rint(scaled), lo, hi).astype(np.int32)
    mask = (scaled >= lo) & (scaled <= hi)
    return codes, mask


def _weight_step_per_channel(w_step, out_channels: int) -> np.ndarray:
    """Normalise a scalar or per-channel weight step to shape (OC,)."""
    step = np.asarray(w_step, dtype=np.float32)
    if step.ndim == 0:
        return np.full(out_channels, float(step), dtype=np.float32)
    if step.shape != (out_channels,):
        raise QuantizationError(
            f"per-channel weight step has shape {step.shape}, expected ({out_channels},)"
        )
    return step


def _int_gemm(
    a: np.ndarray,
    b: np.ndarray,
    multiplier: Multiplier | None,
    need_exact: bool,
    plan: GemmPlan | None = None,
    exact_cache: dict | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Integer GEMM, approximate when a non-exact multiplier is given.

    Returns ``(y_int, y_exact)`` where ``y_exact`` is only materialised when
    ``need_exact`` (for GE region tests) and differs from ``y_int``. ``plan``
    is an optional weight-stationary plan built from this exact ``b``;
    ``exact_cache`` optionally memoizes the exact path's conversions of
    ``b`` across batches (:func:`repro.approx.gemm.exact_int_matmul_cached`).
    The result is bitwise identical with or without either.
    """

    def _exact(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        if exact_cache is not None:
            return exact_int_matmul_cached(lhs, rhs, exact_cache)
        return exact_int_matmul(lhs, rhs)

    if multiplier is None or multiplier.is_exact:
        y = _exact(a, b)
        return y, (y if need_exact else None)
    y = approx_matmul(a, b, multiplier, plan=plan)
    y_exact = _exact(a, b) if need_exact else None
    return y, y_exact


def _maybe_plan(b: np.ndarray, multiplier: Multiplier | None) -> GemmPlan | None:
    """A weight-stationary plan for ``b``, or None on the exact path.

    Plans are only built when caching is enabled
    (:func:`repro.approx.plan.plan_caching_enabled`) — with caching off the
    layers run the uncached reference GEMM, which benchmarks and the
    bitwise-equivalence tests compare against.
    """
    if multiplier is None or multiplier.is_exact or not plan_caching_enabled():
        return None
    return build_plan(b, multiplier)


def _bwd_cached(bwd: dict | None, key: str, make):
    """Memoize a backward operand in the layer state's side table.

    With ``bwd`` None (no plan cache attached, or training-path plans
    disabled) the operand is recomputed fresh — the reference behaviour.
    """
    if bwd is None:
        return make()
    value = bwd.get(key)
    if value is None:
        value = bwd[key] = make()
    return value


def _gradient_scale(
    error_model: PiecewiseLinearErrorModel | None,
    y_exact: np.ndarray | None,
) -> np.ndarray | float:
    """``(1 + K)`` per Eq. 12, or 1.0 when GE degenerates to the STE."""
    if error_model is None or error_model.is_constant or y_exact is None:
        return 1.0
    return error_model.gradient_scale(y_exact).astype(np.float32)


class QuantLinearFunction(Function):
    """Quantized / approximate fully connected layer as one graph node."""

    def forward(
        self,
        x,
        weight,
        bias,
        act_step: float,
        w_step: float,
        act_bits: int,
        w_bits: int,
        multiplier: Multiplier | None = None,
        error_model: PiecewiseLinearErrorModel | None = None,
        plan_cache=None,
        plan_key=None,
    ):
        x = np.asarray(x)
        weight = np.asarray(weight)
        if x.ndim != 2:
            raise ShapeError(f"QuantLinear expects (batch, features), got {x.shape}")
        self.act_step = float(act_step)
        self.w_step_col = _weight_step_per_channel(w_step, weight.shape[0])
        xq, self.x_mask = _quantize_codes(x, act_step, act_bits)

        def _quantize_weight():
            return _quantize_codes(weight, self.w_step_col[:, None], w_bits)

        def _state_from(wq, w_mask):
            return LayerKernelState(
                wq, w_mask, _maybe_plan(np.ascontiguousarray(wq.T), multiplier)
            )

        def _build():
            return _state_from(*_quantize_weight())

        def _revalidate(old):
            # An optimizer step bumped the weight version; if the 4-bit
            # codes are unchanged (steps are, by key construction), the
            # plan, backward layouts and exact-operand conversions all
            # still describe the current weights exactly. Sparse code
            # drift keeps the plan via an in-place repair; the code-value
            # dependent side tables are dropped and lazily refilled.
            wq, w_mask = _quantize_weight()
            neq = wq != old.wq
            if not neq.any():
                return LayerKernelState(old.wq, w_mask).adopt(old), True
            if old.plan is not None:
                # wq is (N, K); the plan operand is wq.T, so swap the diff axes.
                nz_r, nz_c = np.nonzero(neq)
                if repair_plan(old.plan, old.wq.T, wq.T, changed=(nz_c, nz_r)):
                    return LayerKernelState(wq, w_mask, old.plan), True
            return _state_from(wq, w_mask), False

        if plan_cache is not None:
            state = plan_cache.get(
                "linear", plan_key, multiplier, _build, revalidate=_revalidate
            )
            use_train = train_plans_enabled()
        else:
            wq, w_mask = _quantize_weight()
            state = LayerKernelState(wq, w_mask, None)
            use_train = False
        wq = state.wq
        self.w_mask = state.w_mask
        self._bwd = state.bwd if use_train else None
        need_exact = error_model is not None and not error_model.is_constant
        y_int, y_exact = _int_gemm(
            xq,
            wq.T,
            multiplier,
            need_exact,
            plan=state.plan,
            exact_cache=state.exact_ops if use_train else None,
        )
        self.xq, self.wq = xq, wq
        self.scale = _gradient_scale(error_model, y_exact)
        self.has_bias = bias is not None
        out = y_int.astype(np.float32) * (np.float32(self.act_step) * self.w_step_col[None, :])
        if self.has_bias:
            out = out + bias
        return out

    def backward(self, grad_out):
        g = grad_out * self.scale
        x_fq = self.xq.astype(np.float32) * np.float32(self.act_step)
        w_fq = _bwd_cached(
            self._bwd,
            "w_fq",
            lambda: self.wq.astype(np.float32) * self.w_step_col[:, None],
        )
        grad_x = float_matmul(g, w_fq) * self.x_mask
        grad_w = float_matmul(g.T, x_fq) * self.w_mask
        grad_b = grad_out.sum(axis=0) if self.has_bias else None
        return (grad_x, grad_w, grad_b, None, None, None, None, None, None)


class QuantConv2dFunction(Function):
    """Quantized / approximate convolution as an integer im2col GEMM.

    Supports ``groups == 1`` (dense), the depthwise case (``groups ==
    in_channels`` with one filter per channel) fully vectorised, and
    arbitrary groups via a per-group loop.
    """

    def forward(
        self,
        x,
        weight,
        bias,
        stride: int,
        padding: int,
        groups: int,
        act_step: float,
        w_step: float,
        act_bits: int,
        w_bits: int,
        multiplier: Multiplier | None = None,
        error_model: PiecewiseLinearErrorModel | None = None,
        plan_cache=None,
        plan_key=None,
    ):
        x = np.asarray(x)
        weight = np.asarray(weight)
        n, c, h, w = x.shape
        oc, cg, kh, kw = weight.shape
        if c % groups or oc % groups or cg != c // groups:
            raise ShapeError(
                f"inconsistent grouped conv: x has {c} channels, weight "
                f"{weight.shape}, groups={groups}"
            )
        self.x_shape = x.shape
        self.stride, self.padding, self.groups = stride, padding, groups
        self.act_step = float(act_step)
        self.has_bias = bias is not None
        oh = conv_out_size(h, kh, stride, padding)
        ow = conv_out_size(w, kw, stride, padding)
        self.out_spatial = (oh, ow)
        self.kernel = (kh, kw)

        xq, self.x_mask = _quantize_codes(x, act_step, act_bits)
        self.w_step_col = _weight_step_per_channel(w_step, oc)
        self.depthwise = groups == c and cg == 1 and oc == c
        grouped = groups != 1 and not self.depthwise

        def _quantize_weight():
            return _quantize_codes(weight, self.w_step_col[:, None, None, None], w_bits)

        def _state_from(wq, w_mask):
            if self.depthwise:
                # Depthwise runs a LUT window sum, not a GEMM; cache only
                # the weight quantization (and backward layouts).
                return LayerKernelState(wq, w_mask, None)
            if grouped:
                ocg = oc // groups
                plans = [
                    _maybe_plan(
                        np.ascontiguousarray(
                            wq[g * ocg : (g + 1) * ocg].reshape(ocg, -1).T
                        ),
                        multiplier,
                    )
                    for g in range(groups)
                ]
                return LayerKernelState(wq, w_mask, plans)
            return LayerKernelState(
                wq,
                w_mask,
                _maybe_plan(np.ascontiguousarray(wq.reshape(oc, -1).T), multiplier),
            )

        def _build():
            return _state_from(*_quantize_weight())

        def _revalidate(old):
            wq, w_mask = _quantize_weight()
            neq = wq != old.wq
            if not neq.any():
                return LayerKernelState(old.wq, w_mask).adopt(old), True
            if not self.depthwise and old.plan is not None:
                if grouped:
                    ocg = oc // groups
                    repaired = all(
                        old.plan[g] is not None
                        and repair_plan(
                            old.plan[g],
                            old.wq[g * ocg : (g + 1) * ocg].reshape(ocg, -1).T,
                            wq[g * ocg : (g + 1) * ocg].reshape(ocg, -1).T,
                        )
                        for g in range(groups)
                    )
                else:
                    # wq flattens to (OC, CKK); the plan operand is its
                    # transpose, so swap the diff axes.
                    nz_r, nz_c = np.nonzero(neq.reshape(oc, -1))
                    repaired = repair_plan(
                        old.plan,
                        old.wq.reshape(oc, -1).T,
                        wq.reshape(oc, -1).T,
                        changed=(nz_c, nz_r),
                    )
                if repaired:
                    return LayerKernelState(wq, w_mask, old.plan), True
            return _state_from(wq, w_mask), False

        if plan_cache is not None:
            tag = "groups" if grouped else ("depthwise" if self.depthwise else "conv")
            state = plan_cache.get(
                tag, plan_key, multiplier, _build, revalidate=_revalidate
            )
            use_train = train_plans_enabled()
        else:
            wq, w_mask = _quantize_weight()
            state = LayerKernelState(wq, w_mask, [None] * groups if grouped else None)
            use_train = False
        wq = state.wq
        self.w_mask = state.w_mask
        self._bwd = state.bwd if use_train else None
        plan_state = state.plan
        self.wq = wq
        need_exact = error_model is not None and not error_model.is_constant
        rescale_col = np.float32(self.act_step) * self.w_step_col  # (OC,)

        if groups == 1:
            cols, _ = im2col(xq, (kh, kw), stride, padding)
            self.cols = cols
            y_int, y_exact = _int_gemm(
                cols,
                wq.reshape(oc, -1).T,
                multiplier,
                need_exact,
                plan=plan_state,
                exact_cache=state.exact_ops if use_train else None,
            )
            self.scale = _gradient_scale(error_model, y_exact)
            out = y_int.astype(np.float32) * rescale_col[None, :]
            out = out.reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)
        elif self.depthwise:
            windows = sliding_windows(xq, (kh, kw), stride, padding)
            self.windows = windows
            w4 = wq.reshape(c, kh, kw)

            def _exact_depthwise():
                # Products are < 2^10 and the window sum has <= kh*kw terms,
                # so float32 accumulation is exact here.
                acc = np.einsum(
                    "nchwij,cij->nchw",
                    windows.astype(np.float32),
                    w4.astype(np.float32),
                    optimize=True,
                )
                return np.rint(acc).astype(np.int64)

            if multiplier is None or multiplier.is_exact:
                y_int = _exact_depthwise()
                y_exact = y_int if need_exact else None
            else:
                xhi = 2 ** (act_bits - 1) - 1
                whi = 2 ** (w_bits - 1) - 1
                slut = multiplier.signed_lut()
                prods = slut[windows + xhi, w4[None, :, None, None] + whi]
                y_int = prods.sum(axis=(4, 5), dtype=np.int64)
                y_exact = _exact_depthwise() if need_exact else None
            self.scale = _gradient_scale(error_model, y_exact)
            out = y_int.astype(np.float32) * rescale_col[None, :, None, None]
        else:
            ocg = oc // groups
            self.group_cols: list[np.ndarray] = []
            scales: list[np.ndarray | float] = []
            outs = []
            for g in range(groups):
                xg = xq[:, g * cg : (g + 1) * cg]
                wg = wq[g * ocg : (g + 1) * ocg]
                cols, _ = im2col(xg, (kh, kw), stride, padding)
                self.group_cols.append(cols)
                y_int, y_exact = _int_gemm(
                    cols, wg.reshape(ocg, -1).T, multiplier, need_exact,
                    plan=plan_state[g],
                )
                scales.append(_gradient_scale(error_model, y_exact))
                og = y_int.astype(np.float32) * rescale_col[None, g * ocg : (g + 1) * ocg]
                outs.append(og.reshape(n, oh, ow, ocg).transpose(0, 3, 1, 2))
            self.group_scales = scales
            out = np.concatenate(outs, axis=1)

        if self.has_bias:
            out = out + np.asarray(bias).reshape(1, oc, 1, 1)
        return np.ascontiguousarray(out)

    def backward(self, grad_out):
        n, c, h, w = self.x_shape
        kh, kw = self.kernel
        oh, ow = self.out_spatial
        stride, padding, groups = self.stride, self.padding, self.groups
        oc = self.wq.shape[0]
        sx = np.float32(self.act_step)
        sw_col = self.w_step_col  # (OC,)
        grad_b = grad_out.sum(axis=(0, 2, 3)) if self.has_bias else None

        if groups == 1:
            g2 = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, oc)
            g2 = g2 * self.scale
            x_fq = self.cols.astype(np.float32) * sx
            w_fq = _bwd_cached(
                self._bwd,
                "w_fq2",
                lambda: self.wq.reshape(oc, -1).astype(np.float32) * sw_col[:, None],
            )
            grad_w = float_matmul(g2.T, x_fq).reshape(self.wq.shape)
            grad_cols = float_matmul(g2, w_fq)
            grad_x = col2im(grad_cols, self.x_shape, (kh, kw), stride, padding)
        elif self.depthwise:
            g4 = grad_out * self.scale  # (N, C, OH, OW)
            win_fq = self.windows.astype(np.float32) * sx
            w_fq = _bwd_cached(
                self._bwd,
                "w_fq3",
                lambda: self.wq.reshape(c, kh, kw).astype(np.float32)
                * sw_col[:, None, None],
            )
            grad_w = np.einsum("nchw,nchwij->cij", g4, win_fq, optimize=True)
            grad_w = grad_w.reshape(self.wq.shape)
            grad_windows = np.einsum("nchw,cij->nchwij", g4, w_fq, optimize=True)
            cols = grad_windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
            grad_x = col2im(cols, self.x_shape, (kh, kw), stride, padding)
        else:
            ocg = oc // groups
            cg = c // groups
            w_fq_groups = _bwd_cached(
                self._bwd,
                "w_fq_groups",
                lambda: [
                    self.wq[g * ocg : (g + 1) * ocg].reshape(ocg, -1).astype(np.float32)
                    * sw_col[g * ocg : (g + 1) * ocg, None]
                    for g in range(groups)
                ],
            )
            grad_w = np.empty(self.wq.shape, dtype=np.float32)
            grad_x_parts = []
            for g in range(groups):
                gg = grad_out[:, g * ocg : (g + 1) * ocg]
                g2 = gg.transpose(0, 2, 3, 1).reshape(n * oh * ow, ocg)
                g2 = g2 * self.group_scales[g]
                x_fq = self.group_cols[g].astype(np.float32) * sx
                grad_w[g * ocg : (g + 1) * ocg] = float_matmul(g2.T, x_fq).reshape(
                    ocg, cg, kh, kw
                )
                grad_cols = float_matmul(g2, w_fq_groups[g])
                grad_x_parts.append(col2im(grad_cols, (n, cg, h, w), (kh, kw), stride, padding))
            grad_x = np.concatenate(grad_x_parts, axis=1)

        grad_x = grad_x * self.x_mask
        grad_w = grad_w * self.w_mask
        return (
            grad_x,
            grad_w,
            grad_b,
            None,
            None,
            None,
            None,
            None,
            None,
            None,
            None,
            None,
        )
