"""Batch-normalisation folding (Nagel et al. [9], as used by the paper for
the evaluated ResNets).

Folding absorbs an eval-mode BN into the preceding convolution:

    W' = W · γ / √(σ² + ε)        (per output channel)
    b' = β + (b - μ) · γ / √(σ² + ε)

The model-level folder relies on the fact that in every model in this repo a
``BatchNorm2d`` registered immediately after a ``Conv2d`` in its parent's
module order is also its dataflow successor (true for ``ResNetCifar``,
``MobileNetV2`` and ``SimpleCNN``); each such pair is replaced by a single
biased convolution plus an ``Identity``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batchnorm import BatchNorm2d
from repro.nn.container import Identity
from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.nn.parameter import Parameter


def fold_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> Conv2d:
    """Return a new ``Conv2d`` equivalent to ``bn(conv(x))`` in eval mode."""
    scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)  # (C_out,)
    folded = Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        conv.stride,
        conv.padding,
        conv.groups,
        bias=True,
    )
    folded.weight = Parameter(conv.weight.data * scale[:, None, None, None])
    old_bias = conv.bias.data if conv.bias is not None else 0.0
    folded.bias = Parameter(bn.beta.data + (old_bias - bn.running_mean) * scale)
    return folded


def fold_batchnorms(model: Module) -> int:
    """Fold every (Conv2d → BatchNorm2d) pair in ``model`` in place.

    Returns the number of folded pairs. The model should be in eval mode
    conceptually — folding uses running statistics.
    """
    folded = 0
    for _, module in model.named_modules():
        child_names = list(module._modules)
        for prev_name, next_name in zip(child_names, child_names[1:]):
            prev = module._modules[prev_name]
            nxt = module._modules[next_name]
            if isinstance(prev, Conv2d) and isinstance(nxt, BatchNorm2d):
                if prev.out_channels != nxt.num_features:
                    continue  # not a dataflow pair
                setattr(module, prev_name, fold_conv_bn(prev, nxt))
                setattr(module, next_name, Identity())
                folded += 1
    return folded
