"""Symmetric linear quantizer with power-of-two step sizes.

Matches the paper's quantized-model characteristics (section III):

- layer-wise quantization of parameters and activations,
- symmetric, no zero-points (eliminates GEMM cross-terms),
- step sizes rounded to the next power of two (shift-only rescaling).

Integer codes live in the symmetric range ``[-(2^(b-1)-1), 2^(b-1)-1]``
(e.g. [-127, 127] for 8 bits, [-7, 7] for 4 bits). The symmetric range keeps
code magnitudes inside the unsigned domain of the 8x4 approximate multipliers
under sign-magnitude evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def qrange(bits: int) -> tuple[int, int]:
    """Symmetric signed integer range for ``bits``-bit codes."""
    if bits < 2:
        raise QuantizationError(f"need at least 2 bits for signed codes, got {bits}")
    hi = 2 ** (bits - 1) - 1
    return -hi, hi


def round_step_to_pow2(step: float) -> float:
    """Round a positive step size to the nearest power of two.

    The paper rounds steps to powers of two so rescaling is a plain shift.
    Rounding happens in log2 space (geometric rounding).
    """
    if step <= 0 or not np.isfinite(step):
        raise QuantizationError(f"step size must be positive and finite, got {step}")
    return float(2.0 ** np.round(np.log2(step)))


def quantize(x: np.ndarray, step: float, bits: int) -> np.ndarray:
    """Map real values to integer codes: ``clip(round(x / step))``."""
    lo, hi = qrange(bits)
    codes = np.rint(np.asarray(x) / step)
    return np.clip(codes, lo, hi).astype(np.int32)


def dequantize(codes: np.ndarray, step: float) -> np.ndarray:
    """Map integer codes back to real values: ``codes * step``."""
    return np.asarray(codes, dtype=np.float32) * np.float32(step)


def fake_quantize_np(x: np.ndarray, step: float, bits: int) -> np.ndarray:
    """Quantize-dequantize round trip on raw arrays (no autograd)."""
    return dequantize(quantize(x, step, bits), step)


def step_from_max(max_abs: float, bits: int, pow2: bool = True) -> float:
    """Step size covering ``[-max_abs, max_abs]`` with ``bits``-bit codes."""
    _, hi = qrange(bits)
    max_abs = float(max_abs)
    if max_abs <= 0:
        max_abs = 1e-8  # degenerate all-zero tensor: any tiny step works
    step = max_abs / hi
    return round_step_to_pow2(step) if pow2 else step


def quantization_noise(x: np.ndarray, step: float, bits: int) -> float:
    """Mean squared error introduced by quantizing ``x``."""
    return float(np.mean((fake_quantize_np(x, step, bits) - np.asarray(x)) ** 2))
