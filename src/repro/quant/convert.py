"""Model conversion to the quantized representation, plus calibration.

``quantize_model`` swaps every float GEMM layer for its quantized
counterpart (optionally folding BN first); ``calibrate_model`` runs
calibration batches through the converted model and freezes all step sizes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.errors import QuantizationError
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.quant.bn_folding import fold_batchnorms
from repro.quant.qconfig import QConfig
from repro.quant.qlayers import QuantConv2d, QuantLinear, _QuantGemmLayer


def quantize_model(
    model: Module,
    qconfig: QConfig | None = None,
    fold_bn: bool = True,
    layer_overrides: dict[str, QConfig] | None = None,
) -> Module:
    """Convert ``model`` in place to quantized layers and return it.

    Parameters
    ----------
    fold_bn:
        Fold Conv→BN pairs before conversion (the paper folds BN for the
        ResNets but keeps BN layers in MobileNetV2).
    layer_overrides:
        Mixed-precision support: a mapping from qualified layer name (as in
        ``named_quant_layers`` after conversion) to a :class:`QConfig` that
        replaces the default for that layer — e.g. keeping the classifier
        at 8-bit weights while the backbone runs 4-bit. Unknown names
        raise, so typos do not silently keep a layer at the default.
    """
    qconfig = qconfig or QConfig()
    layer_overrides = dict(layer_overrides or {})
    if fold_bn:
        fold_batchnorms(model)
    seen: set[str] = set()
    for parent_name, module in model.named_modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, QuantConv2d) or isinstance(child, QuantLinear):
                continue
            full_name = f"{parent_name}.{name}" if parent_name else name
            config = layer_overrides.get(full_name, qconfig)
            if isinstance(child, Conv2d):
                setattr(module, name, QuantConv2d.from_float(child, config))
                seen.add(full_name)
            elif isinstance(child, Linear):
                setattr(module, name, QuantLinear.from_float(child, config))
                seen.add(full_name)
    unknown = set(layer_overrides) - seen
    if unknown:
        raise QuantizationError(
            f"layer_overrides for unknown GEMM layers: {sorted(unknown)}; "
            f"converted layers: {sorted(seen)}"
        )
    return model


def quant_layers(model: Module) -> Iterator[_QuantGemmLayer]:
    """Yield every quantized GEMM layer in ``model``."""
    for module in model.modules():
        if isinstance(module, _QuantGemmLayer):
            yield module


def named_quant_layers(model: Module) -> Iterator[tuple[str, _QuantGemmLayer]]:
    """Yield ``(qualified_name, layer)`` for every quantized GEMM layer."""
    for name, module in model.named_modules():
        if isinstance(module, _QuantGemmLayer):
            yield name, module


def calibrate_model(
    model: Module,
    calibration_batches: Iterable[np.ndarray],
    max_batches: int | None = None,
) -> Module:
    """Collect activation statistics and freeze all quantization steps.

    ``calibration_batches`` yields input arrays (or ``(x, y)`` pairs, in
    which case labels are ignored).
    """
    layers = list(quant_layers(model))
    if not layers:
        raise QuantizationError("calibrate_model: model has no quantized layers")
    for layer in layers:
        layer.begin_calibration()
    was_training = model.training
    model.eval()
    count = 0
    with no_grad():
        for batch in calibration_batches:
            x = batch[0] if isinstance(batch, tuple) else batch
            model(Tensor(np.asarray(x)))
            count += 1
            if max_batches is not None and count >= max_batches:
                break
    if count == 0:
        raise QuantizationError("calibrate_model: no calibration batches provided")
    for layer in layers:
        layer.finalize_calibration()
    model.train(was_training)
    return model


def refresh_weight_steps(model: Module) -> None:
    """Re-derive all weight steps after a fine-tuning stage changed weights."""
    for layer in quant_layers(model):
        layer.refresh_weight_step()
