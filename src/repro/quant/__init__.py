"""Symmetric linear quantization (8A4W) with STE and MinPropQE calibration."""

from repro.quant.bn_folding import fold_batchnorms, fold_conv_bn
from repro.quant.convert import (
    calibrate_model,
    named_quant_layers,
    quant_layers,
    quantize_model,
    refresh_weight_steps,
)
from repro.quant.fake_quant import FakeQuantize, fake_quantize
from repro.quant.observer import (
    MinMaxObserver,
    MinPropQEObserver,
    MSEObserver,
    create_observer,
)
from repro.quant.qconfig import QCONFIG_8A4W, QCONFIG_8A8W, QConfig
from repro.quant.qfunction import QuantConv2dFunction, QuantLinearFunction
from repro.quant.qlayers import QuantConv2d, QuantLinear
from repro.quant.quantizer import (
    dequantize,
    fake_quantize_np,
    qrange,
    quantization_noise,
    quantize,
    round_step_to_pow2,
    step_from_max,
)

__all__ = [
    "QConfig",
    "QCONFIG_8A4W",
    "QCONFIG_8A8W",
    "quantize",
    "dequantize",
    "fake_quantize",
    "fake_quantize_np",
    "FakeQuantize",
    "qrange",
    "round_step_to_pow2",
    "step_from_max",
    "quantization_noise",
    "MinMaxObserver",
    "MSEObserver",
    "MinPropQEObserver",
    "create_observer",
    "QuantConv2d",
    "QuantLinear",
    "QuantConv2dFunction",
    "QuantLinearFunction",
    "fold_conv_bn",
    "fold_batchnorms",
    "quantize_model",
    "calibrate_model",
    "quant_layers",
    "named_quant_layers",
    "refresh_weight_steps",
]
