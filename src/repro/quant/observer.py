"""Step-size calibration (observers).

Three strategies are provided:

- :class:`MinMaxObserver` — step from the maximum absolute value seen.
- :class:`MSEObserver` — step minimising the local quantization MSE.
- :class:`MinPropQEObserver` — Minimisation of the Propagated Quantization
  Error (MinPropQE, Vogel et al. DATE'19), the method the paper uses: the
  step is chosen to minimise the error *after* propagation through the
  layer's GEMM, measured on calibration activations.

All observers can snap the resulting step to the nearest power of two, per
the paper's quantization constraints.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.quant.quantizer import (
    fake_quantize_np,
    qrange,
    quantize,
    round_step_to_pow2,
    step_from_max,
)


def _code_counts(data: np.ndarray, step: float, bits: int) -> np.ndarray:
    """Per-code occupancy of ``data`` quantized at ``step``.

    The returned counts cover the full symmetric ``bits``-bit range (one
    bin per code, ascending) — exactly the layout
    ``repro.ge.analytic.OperandDistribution.from_histogram`` consumes, so
    observer statistics feed the analytic error models directly.
    """
    lo, hi = qrange(bits)
    codes = quantize(data, step, bits).reshape(-1)
    return np.bincount((codes.astype(np.int64) - lo), minlength=hi - lo + 1).astype(np.float64)


class ObserverBase:
    """Accumulates statistics over calibration batches, then yields a step."""

    def __init__(self, bits: int, pow2: bool = True):
        self.bits = bits
        self.pow2 = pow2
        self._seen = False

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def compute_step(self) -> float:
        raise NotImplementedError

    def _require_data(self) -> None:
        if not self._seen:
            raise QuantizationError(
                f"{type(self).__name__}.compute_step() called before observe()"
            )

    def _maybe_pow2(self, step: float) -> float:
        return round_step_to_pow2(step) if self.pow2 else step

    def code_histogram(self, step: float | None = None) -> np.ndarray:
        """Per-code histogram of the observed data at the calibrated step.

        Sample-retaining observers (MSE, MinPropQE) override this; the
        running-statistics ones cannot reconstruct a distribution.
        """
        raise QuantizationError(
            f"{type(self).__name__} retains no samples; use an MSE or "
            "MinPropQE observer to export code histograms"
        )


class MinMaxObserver(ObserverBase):
    """Step from the running maximum absolute value."""

    def __init__(self, bits: int, pow2: bool = True):
        super().__init__(bits, pow2)
        self.max_abs = 0.0

    def observe(self, x: np.ndarray) -> None:
        self._seen = True
        self.max_abs = max(self.max_abs, float(np.max(np.abs(x), initial=0.0)))

    def compute_step(self) -> float:
        self._require_data()
        return step_from_max(self.max_abs, self.bits, self.pow2)


def _candidate_steps(max_abs: float, bits: int, pow2: bool, num: int = 24) -> np.ndarray:
    """Candidate steps from the min-max step downward.

    Shrinking the step clips outliers but refines the bulk of the
    distribution — the classic MSE/propagated-error trade-off.
    """
    base = step_from_max(max_abs, bits, pow2=False)
    if pow2:
        base_exp = int(np.ceil(np.log2(base)))
        return 2.0 ** np.arange(base_exp, base_exp - 8, -1, dtype=np.float64)
    return base * np.linspace(1.0, 0.05, num)


class MSEObserver(ObserverBase):
    """Step minimising quantization MSE on the observed samples."""

    def __init__(self, bits: int, pow2: bool = True, max_samples: int = 200_000, rng_seed: int = 0):
        super().__init__(bits, pow2)
        self.max_samples = max_samples
        self._samples: list[np.ndarray] = []
        self._rng = np.random.default_rng(rng_seed)

    def observe(self, x: np.ndarray) -> None:
        self._seen = True
        flat = np.asarray(x, dtype=np.float32).reshape(-1)
        if flat.size > self.max_samples:
            flat = self._rng.choice(flat, self.max_samples, replace=False)
        self._samples.append(flat)

    def compute_step(self) -> float:
        self._require_data()
        data = np.concatenate(self._samples)
        max_abs = float(np.max(np.abs(data), initial=0.0)) or 1e-8
        best_step, best_err = None, np.inf
        for step in _candidate_steps(max_abs, self.bits, self.pow2):
            err = float(np.mean((fake_quantize_np(data, step, self.bits) - data) ** 2))
            if err < best_err:
                best_step, best_err = float(step), err
        return best_step

    def code_histogram(self, step: float | None = None) -> np.ndarray:
        """Histogram of the observed samples' integer codes."""
        self._require_data()
        data = np.concatenate(self._samples)
        return _code_counts(data, step if step is not None else self.compute_step(), self.bits)


class MinPropQEObserver(ObserverBase):
    """MinPropQE: pick the weight step minimising the *layer-output* error.

    For a GEMM layer ``y = X W``, the propagated error of quantizing W with
    step Δ is ``||X (Q_Δ(W) - W)||²`` over calibration inputs X. The observer
    collects GEMM-shaped calibration inputs via :meth:`observe_inputs` and
    the weight matrix via :meth:`set_weight`; :meth:`compute_step` sweeps
    candidate steps. If no inputs were provided, it degrades gracefully to
    local-MSE selection (equivalent to assuming white inputs).
    """

    def __init__(self, bits: int, pow2: bool = True, max_rows: int = 4096, rng_seed: int = 0):
        super().__init__(bits, pow2)
        self.max_rows = max_rows
        self._weight: np.ndarray | None = None
        self._inputs: list[np.ndarray] = []
        self._rng = np.random.default_rng(rng_seed)

    def set_weight(self, weight: np.ndarray) -> None:
        """Register the weight tensor to be quantized (any shape)."""
        self._seen = True
        self._weight = np.asarray(weight, dtype=np.float32)

    def observe_inputs(self, x_gemm: np.ndarray) -> None:
        """Register calibration GEMM inputs of shape (rows, k)."""
        x = np.asarray(x_gemm, dtype=np.float32)
        if x.ndim != 2:
            raise QuantizationError(f"expected (rows, k) GEMM inputs, got shape {x.shape}")
        if x.shape[0] > self.max_rows:
            idx = self._rng.choice(x.shape[0], self.max_rows, replace=False)
            x = x[idx]
        self._inputs.append(x)

    # ObserverBase API: observing raw tensors means weight registration here.
    def observe(self, x: np.ndarray) -> None:
        self.set_weight(x)

    def compute_step(self) -> float:
        self._require_data()
        w = self._weight
        if w is None:
            raise QuantizationError("MinPropQE requires set_weight() before compute_step()")
        w2 = w.reshape(w.shape[0], -1) if w.ndim > 1 else w.reshape(1, -1)
        max_abs = float(np.max(np.abs(w), initial=0.0)) or 1e-8
        x = np.concatenate(self._inputs) if self._inputs else None
        best_step, best_err = None, np.inf
        for step in _candidate_steps(max_abs, self.bits, self.pow2):
            werr = fake_quantize_np(w2, step, self.bits) - w2
            if x is None:
                err = float(np.mean(werr**2))
            else:
                # Propagated error through the GEMM: X @ (Wq - W)^T.
                err = float(np.mean((x @ werr.T) ** 2))
            if err < best_err:
                best_step, best_err = float(step), err
        return best_step

    def code_histogram(self, step: float | None = None) -> np.ndarray:
        """Histogram of the registered weight tensor's integer codes."""
        self._require_data()
        if self._weight is None:
            raise QuantizationError("MinPropQE requires set_weight() before code_histogram()")
        return _code_counts(
            self._weight, step if step is not None else self.compute_step(), self.bits
        )


OBSERVERS = {
    "minmax": MinMaxObserver,
    "mse": MSEObserver,
    "minpropqe": MinPropQEObserver,
}


def create_observer(name: str, bits: int, pow2: bool = True) -> ObserverBase:
    """Instantiate an observer by name (``minmax``, ``mse``, ``minpropqe``)."""
    key = name.lower()
    if key not in OBSERVERS:
        raise QuantizationError(
            f"unknown observer {name!r}; known: {sorted(OBSERVERS)}"
        )
    return OBSERVERS[key](bits, pow2)
