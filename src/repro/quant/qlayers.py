"""Quantized layer modules: :class:`QuantConv2d` and :class:`QuantLinear`.

Lifecycle:

1. ``from_float(layer, qconfig)`` copies a float layer's parameters.
2. With ``calibrating = True``, forward passes run in float while observers
   collect activation statistics and (for MinPropQE) GEMM-shaped inputs.
3. ``finalize_calibration()`` freezes the activation and weight step sizes
   (power-of-two by default).
4. Forward then runs the quantized integer path. Attaching a multiplier via
   ``set_multiplier`` switches the GEMM to the approximate LUT engine; an
   optional error model activates gradient estimation in the backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.approx.plan import PlanCache
from repro.autograd.im2col import im2col
from repro.autograd.tensor import Tensor
from repro.errors import QuantizationError
from repro.ge.error_model import PiecewiseLinearErrorModel
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.quant.observer import MinPropQEObserver, create_observer
from repro.quant.qconfig import QConfig
from repro.quant.qfunction import QuantConv2dFunction, QuantLinearFunction


class _QuantGemmLayer(Module):
    """Shared calibration / step / multiplier state for quantized layers."""

    def __init__(self, qconfig: QConfig):
        super().__init__()
        self.qconfig = qconfig
        self.act_step: float | None = None
        self.weight_step: float | None = None
        self.calibrating = False
        self.multiplier: Multiplier | None = None
        self.error_model: PiecewiseLinearErrorModel | None = None
        # When set (a list), each training forward appends
        # (output_tensor, 1/(act_step·weight_step)) so regularizers — e.g.
        # the alpha-regularization baseline — can penalise GEMM outputs in
        # integer-code space.
        self.output_collector: list | None = None
        # Weight-stationary GEMM state (repro.approx.plan): quantized weight
        # codes, STE mask, kernel plan and the training-path side tables
        # (backward weight layouts, exact-GEMM operand conversions), reused
        # across batches while the weights and steps are unchanged.
        # ``_step_version`` bumps whenever the step sizes are (re)derived;
        # the weight Parameter's own version counter covers every weight
        # rebind, so the cache key goes stale the moment either changes. A
        # version-only change (optimizer step) is revalidated at the code
        # level: if the integer codes survived the step, the whole state is
        # reused instead of rebuilt.
        self._plan_cache = PlanCache()
        self._step_version = 0
        self._act_observer = create_observer(
            qconfig.activation_observer, qconfig.activation_bits, qconfig.pow2_steps
        )
        self._weight_observer = create_observer(
            qconfig.weight_observer, qconfig.weight_bits, qconfig.pow2_steps
        )

    # -- calibration -----------------------------------------------------
    def begin_calibration(self) -> None:
        self.calibrating = True

    def finalize_calibration(self) -> None:
        """Freeze step sizes from the observed statistics."""
        if not self.calibrating:
            raise QuantizationError(
                f"{type(self).__name__}: finalize_calibration() without begin_calibration()"
            )
        self.act_step = self._act_observer.compute_step()
        if self.qconfig.per_channel_weights:
            self.weight_step = self._per_channel_weight_steps()
        else:
            self._weight_observer.observe(self._weight_data())
            self.weight_step = self._weight_observer.compute_step()
        self.calibrating = False
        self._step_version += 1

    def refresh_weight_step(self) -> None:
        """Re-derive the weight step after weights changed (e.g. between
        fine-tuning stages). Activation steps are kept."""
        self._step_version += 1
        if self.qconfig.per_channel_weights:
            self.weight_step = self._per_channel_weight_steps()
            return
        observer = create_observer(
            self.qconfig.weight_observer, self.qconfig.weight_bits, self.qconfig.pow2_steps
        )
        observer.observe(self._weight_data())
        self.weight_step = observer.compute_step()

    def _per_channel_weight_steps(self) -> np.ndarray:
        """Per-output-channel steps from channel maxima (pow2-rounded)."""
        from repro.quant.quantizer import step_from_max

        weight = self._weight_data()
        flat = weight.reshape(weight.shape[0], -1)
        maxima = np.abs(flat).max(axis=1)
        steps = [
            step_from_max(float(m), self.qconfig.weight_bits, self.qconfig.pow2_steps)
            for m in maxima
        ]
        return np.asarray(steps, dtype=np.float32)

    def _mean_weight_step(self) -> float:
        """Scalar summary of the weight step (per-channel aware)."""
        return float(np.mean(self.weight_step))

    def _weight_data(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def is_calibrated(self) -> bool:
        return self.act_step is not None and self.weight_step is not None

    def _require_calibrated(self) -> None:
        if not self.is_calibrated:
            raise QuantizationError(
                f"{type(self).__name__} used before calibration; run "
                "calibrate_model() first"
            )

    # -- approximation ----------------------------------------------------
    def set_multiplier(
        self,
        multiplier: Multiplier | None,
        error_model: PiecewiseLinearErrorModel | None = None,
    ) -> None:
        """Attach an approximate multiplier (None restores exact integer
        execution); ``error_model`` enables gradient estimation."""
        self.multiplier = multiplier
        self.error_model = error_model
        # Plans embed the multiplier's LUT; drop them on a switch so the
        # cache never outlives the multiplier it was built for.
        self._plan_cache.clear()

    def _plan_state(self) -> tuple[PlanCache, tuple]:
        """The layer's plan cache and current weight-version key."""
        key = (
            self.weight.version,
            self._step_version,
            self.qconfig.weight_bits,
        )
        return self._plan_cache, key


class QuantConv2d(_QuantGemmLayer):
    """Quantized convolution executing on integer codes."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        qconfig: QConfig | None = None,
        rng=None,
    ):
        super().__init__(qconfig or QConfig())
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        from repro.nn import init

        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @classmethod
    def from_float(cls, conv: Conv2d, qconfig: QConfig | None = None) -> "QuantConv2d":
        """Build from a float :class:`Conv2d`, copying parameters."""
        q = cls(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            conv.stride,
            conv.padding,
            conv.groups,
            bias=conv.bias is not None,
            qconfig=qconfig,
        )
        q.weight.data = conv.weight.data.copy()
        if conv.bias is not None:
            q.bias.data = conv.bias.data.copy()
        return q

    def _weight_data(self) -> np.ndarray:
        return self.weight.data

    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            self._observe(x)
            from repro.autograd import ops_matmul

            return ops_matmul.conv2d(
                x, self.weight, self.bias, self.stride, self.padding, self.groups
            )
        self._require_calibrated()
        plan_cache, plan_key = self._plan_state()
        out = QuantConv2dFunction.apply(
            x,
            self.weight,
            self.bias,
            self.stride,
            self.padding,
            self.groups,
            self.act_step,
            self.weight_step,
            self.qconfig.activation_bits,
            self.qconfig.weight_bits,
            self.multiplier,
            self.error_model,
            plan_cache=plan_cache,
            plan_key=plan_key,
        )
        if self.output_collector is not None and self.training:
            inv_step = 1.0 / (self.act_step * self._mean_weight_step())
            self.output_collector.append((out, inv_step))
        return out

    def _observe(self, x: Tensor) -> None:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        self._act_observer.observe(data)
        if isinstance(self._weight_observer, MinPropQEObserver):
            kernel = (self.kernel_size, self.kernel_size)
            if self.groups == 1:
                cols, _ = im2col(data, kernel, self.stride, self.padding)
            else:
                # Per-group propagation; the first group is a representative
                # sample for the step search.
                cg = self.in_channels // self.groups
                cols, _ = im2col(data[:, :cg], kernel, self.stride, self.padding)
            self._weight_observer.observe_inputs(cols)

    def __repr__(self) -> str:  # pragma: no cover
        tag = self.multiplier.name if self.multiplier else "exact"
        return (
            f"QuantConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, {self.qconfig.label}, mult={tag})"
        )


class QuantLinear(_QuantGemmLayer):
    """Quantized fully connected layer executing on integer codes."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        qconfig: QConfig | None = None,
        rng=None,
    ):
        super().__init__(qconfig or QConfig())
        self.in_features = in_features
        self.out_features = out_features
        from repro.nn import init

        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    @classmethod
    def from_float(cls, linear: Linear, qconfig: QConfig | None = None) -> "QuantLinear":
        """Build from a float :class:`Linear`, copying parameters."""
        q = cls(
            linear.in_features,
            linear.out_features,
            bias=linear.bias is not None,
            qconfig=qconfig,
        )
        q.weight.data = linear.weight.data.copy()
        if linear.bias is not None:
            q.bias.data = linear.bias.data.copy()
        return q

    def _weight_data(self) -> np.ndarray:
        return self.weight.data

    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            data = x.data if isinstance(x, Tensor) else np.asarray(x)
            self._act_observer.observe(data)
            if isinstance(self._weight_observer, MinPropQEObserver):
                self._weight_observer.observe_inputs(data)
            from repro.autograd import ops_matmul

            return ops_matmul.linear(x, self.weight, self.bias)
        self._require_calibrated()
        plan_cache, plan_key = self._plan_state()
        out = QuantLinearFunction.apply(
            x,
            self.weight,
            self.bias,
            self.act_step,
            self.weight_step,
            self.qconfig.activation_bits,
            self.qconfig.weight_bits,
            self.multiplier,
            self.error_model,
            plan_cache=plan_cache,
            plan_key=plan_key,
        )
        if self.output_collector is not None and self.training:
            inv_step = 1.0 / (self.act_step * self._mean_weight_step())
            self.output_collector.append((out, inv_step))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        tag = self.multiplier.name if self.multiplier else "exact"
        return (
            f"QuantLinear({self.in_features}, {self.out_features}, "
            f"{self.qconfig.label}, mult={tag})"
        )
