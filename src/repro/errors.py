"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutogradError(ReproError):
    """Raised on misuse of the autograd engine (e.g. backward on a non-scalar
    without an explicit upstream gradient)."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible with an operation."""


class QuantizationError(ReproError):
    """Raised on invalid quantization configuration or out-of-range values."""


class MultiplierError(ReproError):
    """Raised on invalid approximate-multiplier configuration or lookup."""


class ConfigError(ReproError):
    """Raised on invalid experiment/pipeline configuration."""


class DataError(ReproError):
    """Raised on invalid dataset parameters or corrupted batches."""


class CheckpointError(ReproError):
    """Raised on unreadable, corrupt or incompatible checkpoints."""


class DivergenceError(ReproError):
    """Raised when training diverges and the guard's retry budget is spent."""


class ServeError(ReproError):
    """Raised on inference-serving misuse (submits to a stopped server,
    malformed request shapes, failed replicas)."""


class BackpressureError(ServeError):
    """Raised when admission control rejects a request because the serving
    queue is past its depth threshold.

    Carries ``retry_after_s`` — the server's estimate of when capacity
    frees up — so clients can back off instead of hammering the queue.
    """

    def __init__(self, message: str, retry_after_s: float = 0.05):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
