"""Unified runtime configuration resolution (``repro.config``).

Every runtime knob the library reads from its environment — worker
parallelism, the GEMM backend, the serving deadlines — resolves through
one helper, :func:`resolve`, implementing a single documented precedence
(most specific wins):

1. **per-call kwarg** — an explicit argument at a call site
   (``resolve("serve_max_batch", call=value)``);
2. **context manager** — ``with config_scope(serve_max_batch=8): ...``
   (thread-local: concurrent threads see only their own scopes; a forked
   worker inherits the scopes of the thread that forked it);
3. **:func:`configure`** — process-wide programmatic override;
4. **CLI flag** — installed by ``repro.cli.main`` via
   :func:`set_cli_overrides`;
5. **environment** — the knob's ``REPRO_*`` variable;
6. **default** — the knob's registered default.

This module is the only place in ``src/repro`` that reads ``REPRO_*``
environment variables at runtime (asserted by the public-API tests);
everything else — :mod:`repro.parallel`, :mod:`repro.approx.backend`,
:mod:`repro.serve` — calls :func:`resolve`. The knob registry below is
also the provenance source for run metadata (:mod:`repro.obs.runmeta`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError

__all__ = [
    "Knob",
    "KNOBS",
    "config_scope",
    "configure",
    "configured",
    "describe",
    "env_var",
    "knob_names",
    "perf_env_vars",
    "resolve",
    "set_cli_overrides",
]


# ----------------------------------------------------------------------
# value parsers / validators
# ----------------------------------------------------------------------
def _parse_int_min1(name: str) -> Callable[[str], int]:
    def parse(raw: str) -> int:
        try:
            return max(1, int(raw))
        except (TypeError, ValueError):
            raise ConfigError(f"{name} must be an integer, got {raw!r}") from None

    return parse


def _parse_float_min0(name: str) -> Callable[[str], float]:
    def parse(raw: str) -> float:
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise ConfigError(f"{name} must be a number, got {raw!r}") from None
        if value < 0:
            raise ConfigError(f"{name} must be >= 0, got {raw!r}")
        return value

    return parse


def _parse_flag(raw: str) -> bool:
    return raw.strip() not in ("", "0")


def _parse_str(raw: str) -> str:
    return raw


def _parse_choice(name: str, choices: tuple[str, ...]) -> Callable[[str], str]:
    def parse(raw: str) -> str:
        value = raw.strip().lower()
        if value not in choices:
            raise ConfigError(
                f"{name} must be one of {', '.join(choices)}; got {raw!r}"
            )
        return value

    return parse


@dataclass(frozen=True)
class Knob:
    """One registered runtime knob.

    ``parse_env`` turns the raw environment string into a value (raising
    :class:`~repro.errors.ConfigError` on malformed input); programmatic
    overrides (scope/:func:`configure`/CLI) are stored as given — their
    call sites validate on use.
    """

    name: str
    env: str
    default: Any
    parse_env: Callable[[str], Any]
    doc: str = ""


# The knob registry. Defaults of ``None`` mean "auto": the consuming
# module picks (e.g. ``cpus`` falls back to ``os.cpu_count()``,
# ``gemm_backend`` to ``plan-lut``, ``serve_replicas`` to one replica
# per usable CPU).
KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            "cpus",
            "REPRO_CPUS",
            None,
            _parse_int_min1("REPRO_CPUS"),
            "usable hardware parallelism override (default: os.cpu_count())",
        ),
        Knob(
            "force_parallel",
            "REPRO_FORCE_PARALLEL",
            False,
            _parse_flag,
            "bypass the small-work amortization guard (testing aid)",
        ),
        Knob(
            "error_model_method",
            "REPRO_ERROR_MODEL_METHOD",
            "auto",
            _parse_choice(
                "REPRO_ERROR_MODEL_METHOD", ("auto", "analytic", "montecarlo")
            ),
            "error-model estimator: analytic (closed-form), montecarlo, or "
            "auto (analytic with Monte-Carlo fallback)",
        ),
        Knob(
            "gemm_backend",
            "REPRO_GEMM_BACKEND",
            None,
            _parse_str,
            "GEMM execution backend name (default: plan-lut)",
        ),
        Knob(
            "serve_deadline_ms",
            "REPRO_SERVE_DEADLINE_MS",
            5.0,
            _parse_float_min0("REPRO_SERVE_DEADLINE_MS"),
            "micro-batching latency deadline in milliseconds",
        ),
        Knob(
            "serve_max_batch",
            "REPRO_SERVE_MAX_BATCH",
            32,
            _parse_int_min1("REPRO_SERVE_MAX_BATCH"),
            "maximum samples coalesced into one served micro-batch",
        ),
        Knob(
            "serve_queue_depth",
            "REPRO_SERVE_QUEUE_DEPTH",
            256,
            _parse_int_min1("REPRO_SERVE_QUEUE_DEPTH"),
            "admission-control bound on queued samples before rejection",
        ),
        Knob(
            "serve_replicas",
            "REPRO_SERVE_REPLICAS",
            None,
            _parse_int_min1("REPRO_SERVE_REPLICAS"),
            "model-replica worker count (default: one per usable CPU)",
        ),
    )
}


# ----------------------------------------------------------------------
# override stores, one per precedence tier
# ----------------------------------------------------------------------
_lock = threading.Lock()
_configured: dict[str, Any] = {}  # tier 3: configure()
_cli: dict[str, Any] = {}  # tier 4: CLI flags
_local = threading.local()  # tier 2: config_scope stack


def _knob(name: str) -> Knob:
    try:
        return KNOBS[name]
    except KeyError:
        raise ConfigError(
            f"unknown config knob {name!r}; known knobs: {', '.join(sorted(KNOBS))}"
        ) from None


def _scopes() -> list[dict[str, Any]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def resolve(name: str, call: Any = None) -> Any:
    """The effective value of knob ``name`` under the documented precedence.

    ``call`` is the per-call override tier: pass the caller's explicit
    kwarg through and ``None`` (the conventional "not given") falls to
    the ambient tiers.
    """
    knob = _knob(name)
    if call is not None:
        return call
    for scope in reversed(_scopes()):
        if name in scope:
            return scope[name]
    with _lock:
        if name in _configured:
            return _configured[name]
        if name in _cli:
            return _cli[name]
    raw = os.environ.get(knob.env, "")
    if raw.strip():
        return knob.parse_env(raw)
    return knob.default


def configure(**knobs: Any) -> dict[str, Any]:
    """Install process-wide overrides; returns the previous override map.

    Setting a knob to ``None`` clears its override (resolution falls to
    the CLI/environment/default tiers again). The returned mapping can be
    passed back — ``configure(**previous)`` — to restore the prior state
    of exactly the knobs touched.
    """
    previous: dict[str, Any] = {}
    with _lock:
        for name, value in knobs.items():
            _knob(name)
            previous[name] = _configured.get(name)
            if value is None:
                _configured.pop(name, None)
            else:
                _configured[name] = value
    return previous


def configured(name: str) -> Any:
    """The :func:`configure`-tier override for ``name`` (``None`` if unset)."""
    _knob(name)
    with _lock:
        return _configured.get(name)


def set_cli_overrides(overrides: dict[str, Any] | None) -> dict[str, Any]:
    """Replace the CLI-flag tier wholesale; returns the previous mapping.

    ``repro.cli.main`` installs the parsed flags here on entry and
    restores the previous mapping on exit. ``None``-valued entries (flags
    left at their parser default) are dropped rather than stored.
    """
    with _lock:
        previous = dict(_cli)
        _cli.clear()
        for name, value in (overrides or {}).items():
            _knob(name)
            if value is not None:
                _cli[name] = value
        return previous


class config_scope:
    """Context manager applying overrides to the current thread only.

    Scopes nest (innermost wins) and are thread-local: a replica or pool
    thread never sees another thread's scope, while a forked worker
    process inherits the scopes of the thread that forked it.
    """

    def __init__(self, **knobs: Any):
        for name in knobs:
            _knob(name)
        self._knobs = {k: v for k, v in knobs.items() if v is not None}

    def __enter__(self) -> "config_scope":
        _scopes().append(self._knobs)
        return self

    def __exit__(self, *exc) -> None:
        stack = _scopes()
        if stack and stack[-1] is self._knobs:
            stack.pop()
        else:  # pragma: no cover - misnested scopes; remove defensively
            try:
                stack.remove(self._knobs)
            except ValueError:
                pass


def env_var(name: str) -> str:
    """The environment variable backing knob ``name``."""
    return _knob(name).env


def knob_names() -> list[str]:
    """Sorted names of every registered knob."""
    return sorted(KNOBS)


def perf_env_vars() -> tuple[str, ...]:
    """Environment variables stamped into run/benchmark provenance."""
    return tuple(KNOBS[name].env for name in sorted(KNOBS))


def describe() -> list[dict]:
    """One row per knob: name, env var, default and effective value.

    Purely informational (the CLI's config table and the docs use it);
    malformed environment values surface as the error text instead of
    aborting the listing.
    """
    rows = []
    for name in sorted(KNOBS):
        knob = KNOBS[name]
        try:
            effective = resolve(name)
        except ConfigError as exc:
            effective = f"<error: {exc}>"
        rows.append(
            {
                "knob": name,
                "env": knob.env,
                "default": knob.default,
                "effective": effective,
                "doc": knob.doc,
            }
        )
    return rows
