"""Piecewise-linear model of the approximate-GEMM error (Eqs. 11–13).

The approximation error ``ε = ỹ - y`` of an approximate GEMM is estimated as
a saturated linear function of the exact output ``y``:

    f(y) = min(upper, max(k·y + c, lower))

Its derivative feeds the gradient-estimation rule (Eq. 12):
``∂C/∂W = (1 + K) ∂C/∂ỹ Xᵀ`` with ``K[i,j] = k`` inside the linear region
and 0 in the saturated regions (Eq. 13). When the error is unbiased the fit
degenerates to a constant (``k = 0``) and GE is exactly the plain STE.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

try:  # numpy >= 1.25
    from numpy.exceptions import RankWarning
except ImportError:  # pragma: no cover - older numpy
    RankWarning = np.RankWarning


@dataclass(frozen=True)
class PiecewiseLinearErrorModel:
    """``f(y) = min(upper, max(k·y + c, lower))`` in integer-code space."""

    k: float
    c: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ReproError(
                f"error-model saturation bounds inverted: [{self.lower}, {self.upper}]"
            )

    def __call__(self, y: np.ndarray) -> np.ndarray:
        """Estimated error at exact GEMM outputs ``y``."""
        return np.clip(self.k * np.asarray(y, dtype=np.float64) + self.c, self.lower, self.upper)

    def slope(self, y: np.ndarray) -> np.ndarray:
        """``∂f/∂y`` at ``y``: ``k`` in the linear region, else 0 (Eq. 13)."""
        if self.k == 0.0:
            return np.zeros(np.shape(y))
        linear = self.k * np.asarray(y, dtype=np.float64) + self.c
        active = (linear > self.lower) & (linear < self.upper)
        return np.where(active, self.k, 0.0)

    def gradient_scale(self, y: np.ndarray) -> np.ndarray:
        """``1 + K`` evaluated at exact outputs ``y`` (Eq. 12)."""
        return 1.0 + self.slope(y)

    @property
    def is_constant(self) -> bool:
        """True when ``∂f/∂y ≡ 0`` — GE degenerates to the plain STE."""
        return self.k == 0.0


def fit_error_model(
    y: np.ndarray,
    eps: np.ndarray,
    slope_significance: float = 0.25,
    saturation_percentile: float = 1.0,
) -> PiecewiseLinearErrorModel:
    """Fit the saturated-linear error model to profiled ``(y, ε)`` samples.

    A least-squares line gives ``(k, c)``; saturation bounds come from the
    ``saturation_percentile``/``100-saturation_percentile`` percentiles of
    the observed errors. The slope is kept only if it is *significant*: the
    error swing it explains over the observed ``y`` range must exceed
    ``slope_significance`` times the error's standard deviation — otherwise
    the model collapses to the constant fit, reproducing the paper's
    observation that unbiased (EvoApprox) errors yield ``∂f/∂y = 0``.
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    eps = np.asarray(eps, dtype=np.float64).reshape(-1)
    if y.size != eps.size:
        raise ReproError(f"y and eps length mismatch: {y.size} vs {eps.size}")
    if y.size < 2:
        raise ReproError("need at least 2 samples to fit an error model")

    y_std = float(y.std())
    eps_std = float(eps.std())
    if y_std == 0.0:
        k, c = 0.0, float(eps.mean())
    else:
        with warnings.catch_warnings():
            # Nearly-constant y makes the Vandermonde matrix ill-conditioned;
            # the constant-collapse guard below already handles that case.
            warnings.simplefilter("ignore", RankWarning)
            k, c = np.polyfit(y, eps, deg=1)
        k, c = float(k), float(c)

    lower = float(np.percentile(eps, saturation_percentile))
    upper = float(np.percentile(eps, 100.0 - saturation_percentile))
    if lower > upper:
        lower, upper = upper, lower

    explained_swing = abs(k) * (np.percentile(y, 99) - np.percentile(y, 1))
    if eps_std == 0.0 or explained_swing < slope_significance * eps_std:
        # Constant model: f(y) ≡ mean(ε). On skewed error distributions the
        # mean can fall outside the percentile saturation band, which would
        # clip the intercept to a value the fit never chose (and trip the
        # bounds check). Widen the band just enough to contain it.
        mean = float(eps.mean())
        return PiecewiseLinearErrorModel(
            0.0, mean, min(lower, mean), max(upper, mean)
        )
    if upper <= lower:
        # With very few distinct error values the percentile band can
        # collapse to a single point (e.g. ε ∈ {0, -8} at a 90/10 split
        # puts both the 1st and 99th percentile at 0), which would clip a
        # significant slope into a constant the fit never chose. Fall back
        # to the full observed range — saturation then only triggers
        # beyond errors actually seen.
        lower, upper = float(eps.min()), float(eps.max())
    return PiecewiseLinearErrorModel(k, c, lower, upper)
