"""Closed-form (analytic) error models from the multiplier LUT.

The Monte-Carlo profiler (:mod:`repro.ge.montecarlo`) estimates ``f(y)``
from 50 simulated GEMMs — O(samples·GEMM) per multiplier, which dominates
when characterizing a large multiplier zoo. But the same statistics are
fully determined by the multiplier's LUT and the operand code
distributions (Liu et al., "An Architectural Error Metric for CNN-Oriented
Approximate Multipliers"): a GEMM output is a sum of ``K = reduce_dim``
independent products, so every quantity the piecewise-linear fit consumes
has a closed form over the ≤2^12-entry joint ``(x, w)`` table.

With per-product exact value ``p = a·b``, per-product error
``δ = g̃(a,b) − a·b`` and independent operand pmfs ``P(a)``, ``P(b)``:

- **moments** — ``E[y] = K·E[p]``, ``Var[y] = K·Var[p]``, ``E[ε] = K·E[δ]``,
  ``Var[ε] = K·Var[δ]``, ``Cov[ε, y] = K·Cov[δ, p]``; the population
  least-squares line of ε on y is ``k = Cov[δ,p]/Var[p]``,
  ``c = E[ε] − k·E[y]`` — exactly what ``np.polyfit`` converges to as the
  Monte-Carlo sample count grows;
- **distributions** — collapsing the joint table onto the product axis
  gives ``m0[p] = Σ P(a)P(b)`` and ``m1[p] = Σ δ·P(a)P(b)``; the exact
  pmf of ``y`` is the K-fold convolution ``m0^{*K}`` and the conditional
  error per output bin is ``E[ε|y] = K·(m1 * m0^{*(K−1)})(y) / m0^{*K}(y)``
  (see ``docs/ALGORITHMS.md``). The error pmf is likewise ``d0^{*K}`` over
  the per-product error axis, giving *exact* saturation quantiles instead
  of sampled percentiles.

All convolutions are 1-D FFT powers over ~1e5-entry arrays, computed
lazily and at most once per statistics object — fitting a model costs two
FFT pairs (ε and y axes); the conditional table adds one more only when
asked for. The whole characterization is O(LUT + FFT) — milliseconds
instead of the Monte-Carlo path's tens of milliseconds to minutes, with
no sampling noise. The resulting
:class:`~repro.ge.error_model.PiecewiseLinearErrorModel` drops into
Algorithm 1, sweeps and GE training unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.errors import ReproError
from repro.ge.error_model import PiecewiseLinearErrorModel
from repro.obs import metrics as met
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.quant.quantizer import qrange


class AnalyticModelError(ReproError):
    """The analytic estimator cannot produce a trustworthy model.

    Raised on degenerate operand distributions (empty/negative/zero-mass
    histograms, out-of-domain codes) or when the FFT convolution loses
    probability mass beyond tolerance. ``method="auto"`` catches this and
    falls back to the Monte-Carlo ground truth.
    """


# Probability mass the FFT self-convolution may lose before the result is
# considered untrustworthy (float64 round-off is ~1e-12 at these sizes).
_MASS_TOLERANCE = 1e-6


# ----------------------------------------------------------------------
# operand code distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperandDistribution:
    """A pmf over signed integer operand codes.

    ``values`` are consecutive integer codes (ascending) and ``pmf`` their
    probabilities. Build one with :meth:`uniform`, :meth:`clipped_normal`
    (the prior matching the Monte-Carlo profiler's ``_sample_codes``),
    :meth:`from_histogram` (empirical counts, e.g. exported by the quant
    observers' ``code_histogram``) or :meth:`from_samples`.
    """

    values: np.ndarray
    pmf: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        pmf = np.asarray(self.pmf, dtype=np.float64)
        if values.ndim != 1 or values.size == 0 or values.shape != pmf.shape:
            raise AnalyticModelError(
                f"operand distribution shape mismatch: values {values.shape}, "
                f"pmf {pmf.shape}"
            )
        if np.any(np.diff(values) != 1):
            raise AnalyticModelError("operand codes must be consecutive and ascending")
        if np.any(pmf < 0) or not np.all(np.isfinite(pmf)):
            raise AnalyticModelError("operand pmf has negative or non-finite entries")
        total = float(pmf.sum())
        if total <= 0:
            raise AnalyticModelError("operand pmf has zero total mass")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "pmf", pmf / total)

    @classmethod
    def uniform(cls, bits: int) -> "OperandDistribution":
        """Uniform prior over the symmetric ``bits``-bit code range."""
        lo, hi = qrange(bits)
        values = np.arange(lo, hi + 1)
        return cls(values, np.full(values.size, 1.0 / values.size))

    @classmethod
    def clipped_normal(cls, bits: int, sigma_fraction: float = 0.35) -> "OperandDistribution":
        """The exact pmf of the Monte-Carlo profiler's operand draws.

        ``_sample_codes`` rounds a ``N(0, (sigma_fraction·hi)²)`` draw to
        the nearest integer and clips to the symmetric range, so interior
        codes get the mass of their half-open rounding cell and the
        endpoints absorb both tails.
        """
        return _clipped_normal(bits, float(sigma_fraction))

    @classmethod
    def from_histogram(cls, counts: np.ndarray, bits: int) -> "OperandDistribution":
        """Empirical pmf from per-code counts over the ``bits``-bit range."""
        lo, hi = qrange(bits)
        counts = np.asarray(counts, dtype=np.float64)
        expected = hi - lo + 1
        if counts.shape != (expected,):
            raise AnalyticModelError(
                f"histogram for {bits}-bit codes must have {expected} bins, "
                f"got shape {counts.shape}"
            )
        return cls(np.arange(lo, hi + 1), counts)

    @classmethod
    def from_samples(cls, codes: np.ndarray, bits: int) -> "OperandDistribution":
        """Empirical pmf from observed integer codes."""
        lo, hi = qrange(bits)
        codes = np.asarray(codes).reshape(-1)
        if codes.size == 0:
            raise AnalyticModelError("cannot build a distribution from zero samples")
        if codes.min() < lo or codes.max() > hi:
            raise AnalyticModelError(
                f"observed codes exceed the {bits}-bit range [{lo}, {hi}]"
            )
        counts = np.bincount((codes - lo).astype(np.int64), minlength=hi - lo + 1)
        return cls(np.arange(lo, hi + 1), counts.astype(np.float64))


@lru_cache(maxsize=64)
def _clipped_normal(bits: int, sigma_fraction: float) -> OperandDistribution:
    lo, hi = qrange(bits)
    sigma = sigma_fraction * hi
    if sigma <= 0:
        raise AnalyticModelError(f"sigma_fraction must be > 0, got {sigma_fraction}")
    values = np.arange(lo, hi + 1)
    scale = 1.0 / (sigma * math.sqrt(2.0))
    cdf_hi = np.array([0.5 * (1.0 + math.erf((v + 0.5) * scale)) for v in values])
    cdf_lo = np.array([0.5 * (1.0 + math.erf((v - 0.5) * scale)) for v in values])
    pmf = cdf_hi - cdf_lo
    pmf[0] = cdf_hi[0]  # lower tail collapses onto the clip boundary
    pmf[-1] = 1.0 - cdf_lo[-1]  # upper tail likewise
    return OperandDistribution(values, pmf)


# ----------------------------------------------------------------------
# exact statistics over the joint (x, w) table
# ----------------------------------------------------------------------
def joint_error_table(
    multiplier: Multiplier,
    act_dist: OperandDistribution,
    w_dist: OperandDistribution,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(weight, product, error)`` arrays over the full joint operand grid.

    ``weight[i, j] = P(a_i)·P(b_j)``, ``product = a_i·b_j`` and
    ``error = g̃(a_i, b_j) − a_i·b_j`` with the multiplier evaluated in
    sign-magnitude form, exactly as the GEMM engine does.
    """
    a = act_dist.values
    b = w_dist.values
    if np.abs(a).max() >= 2**multiplier.x_bits:
        raise AnalyticModelError(
            f"{multiplier.name}: activation codes exceed the {multiplier.x_bits}-bit LUT"
        )
    if np.abs(b).max() >= 2**multiplier.w_bits:
        raise AnalyticModelError(
            f"{multiplier.name}: weight codes exceed the {multiplier.w_bits}-bit LUT"
        )
    weight = np.outer(act_dist.pmf, w_dist.pmf)
    product = a[:, None] * b[None, :]
    signs = np.sign(a)[:, None] * np.sign(b)[None, :]
    approx = signs * multiplier.lut[np.abs(a)][:, np.abs(b)].astype(np.int64)
    return weight, product, approx - product


def _dense_pmf(values: np.ndarray, weights: np.ndarray) -> tuple[int, np.ndarray]:
    """Collapse weighted integer values onto a dense ``[min, max]`` axis."""
    flat_values = values.reshape(-1)
    lo = int(flat_values.min())
    dense = np.zeros(int(flat_values.max()) - lo + 1)
    np.add.at(dense, flat_values - lo, weights.reshape(-1))
    return lo, dense


def _fft_size(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


# Per-tail probability mass allowed outside the Chernoff-certified window
# the K-fold convolution is evaluated on. Orders of magnitude below
# _MASS_TOLERANCE, so the window-sum check still has room for FFT
# round-off on top of the certified tails.
_WINDOW_TAIL = 1e-10


def _conv(a: tuple[int, np.ndarray], b: tuple[int, np.ndarray]) -> tuple[int, np.ndarray]:
    """Linear convolution of two offset dense arrays ((lo, values))."""
    lo_a, arr_a = a
    lo_b, arr_b = b
    n = arr_a.size + arr_b.size - 1
    size = _fft_size(n)
    out = np.fft.irfft(np.fft.rfft(arr_a, size) * np.fft.rfft(arr_b, size), size)[:n]
    return lo_a + lo_b, out


def _chernoff_window(lo: int, dense: np.ndarray, k: int) -> tuple[int, int]:
    """Integer window ``[w_lo, w_hi]`` holding ≥ 1 − 2·_WINDOW_TAIL of the
    mass of ``dense^{*k}``, certified by Chernoff bounds on the exact mgf.

    For the sum Y of k iid draws, ``P(±Y ≥ a) ≤ exp(k·log M(±t) − t·a)``
    for every t > 0; solving for the ``a`` that makes the bound equal
    ``_WINDOW_TAIL`` and minimizing over a grid of t gives each tail's
    edge. The mgf is computed exactly over the dense support, so the bound
    holds for arbitrary (including empirical) distributions — no normality
    assumption anywhere.
    """
    values = np.arange(dense.size, dtype=np.float64) + lo
    mu = float(dense @ values)
    var = float(dense @ values**2) - mu**2
    sigma = math.sqrt(max(var, 0.0))
    if sigma == 0.0:
        center = int(round(k * mu))
        return center, center
    # The optimal t for an a-σ_Y excursion is ≈ a/(σ·sqrt(k)); bracket it.
    t_star = 8.0 / (sigma * math.sqrt(k))
    ts = t_star * np.logspace(-1.5, 1.5, 25)
    v_max = max(abs(values[0]), abs(values[-1]))
    ts = ts[ts * v_max < 600.0]  # keep exp() finite
    log_tail = math.log(_WINDOW_TAIL)
    edges = []
    for sign in (1.0, -1.0):
        if ts.size == 0:
            edges.append(None)
            continue
        log_mgf = np.log(np.exp(sign * ts[:, None] * values[None, :]) @ dense)
        bounds = (k * log_mgf - log_tail) / ts
        edges.append(float(bounds.min()))
    full_lo, full_hi = k * lo, k * (lo + dense.size - 1)
    w_hi = full_hi if edges[0] is None else min(full_hi, int(math.ceil(edges[0])))
    w_lo = full_lo if edges[1] is None else max(full_lo, -int(math.ceil(edges[1])))
    return w_lo, max(w_hi, w_lo)


def _pmf_power(lo: int, dense: np.ndarray, k: int, name: str, axis: str) -> tuple[int, np.ndarray]:
    """``dense^{*k}`` evaluated on its mass-carrying window, via one FFT.

    The full support of a K-fold convolution is ~K·|dense| bins (~1e5
    here) but all-but-``2·_WINDOW_TAIL`` of its mass lies in a
    Chernoff-certified window of ~1e4 bins, so the power is computed as a
    *cyclic* convolution just big enough for that window and unfolded onto
    it: any wrap-around contamination is part of the certified tail mass.
    Falls back to the exact full-support transform when the window doesn't
    pay. The window-sum check (≥ 1 − _MASS_TOLERANCE) then catches both
    real mass loss and FFT round-off; failing it raises
    :class:`AnalyticModelError` (→ Monte-Carlo fallback under ``auto``).
    """
    if k == 0 or dense.size == 1:
        return k * lo, np.ones(1)
    full_len = k * (dense.size - 1) + 1
    w_lo, w_hi = _chernoff_window(lo, dense, k)
    win_len = w_hi - w_lo + 1
    size = _fft_size(min(full_len, win_len))
    spectrum_power = np.fft.rfft(dense, size) ** k
    out = np.fft.irfft(spectrum_power, size)
    if size >= full_len:
        out_lo, arr = k * lo, out[:full_len]
    else:
        out_lo = w_lo
        arr = out[(np.arange(w_lo, w_hi + 1) - k * lo) % size]
    arr = np.clip(arr, 0.0, None)
    mass = float(arr.sum())
    if abs(mass - 1.0) > _MASS_TOLERANCE:
        raise AnalyticModelError(
            f"{name}: convolution window lost probability mass on the "
            f"{axis} axis (captured {mass:.12g} of 1)"
        )
    return out_lo, arr / mass


@dataclass(frozen=True)
class AnalyticErrorStats:
    """Exact per-output error statistics of one (multiplier, distributions)
    pairing at reduction depth ``reduce_dim``.

    Moment fields are per *output* (already scaled by ``reduce_dim``). The
    exact distributions of the output (``y_values``/``y_pmf``), the error
    (``eps_values``/``eps_pmf``) and the per-bin conditional error
    :meth:`conditional_error` are computed lazily — each FFT convolution
    runs at most once per instance.
    """

    multiplier_name: str
    reduce_dim: int
    y_mean: float
    y_var: float
    eps_mean: float
    eps_var: float
    cov: float
    # Dense per-product arrays the lazy convolutions run over: m0/m1 are
    # probability / δ-weighted mass by product value (offset p_lo), d0 is
    # probability mass by per-product error value (offset d_lo).
    p_lo: int
    m0: np.ndarray
    m1: np.ndarray
    d_lo: int
    d0: np.ndarray

    @property
    def y_std(self) -> float:
        return math.sqrt(max(self.y_var, 0.0))

    @property
    def eps_std(self) -> float:
        return math.sqrt(max(self.eps_var, 0.0))

    # -- lazy exact distributions ------------------------------------
    @cached_property
    def _y_axis(self) -> tuple[int, np.ndarray]:
        """(lo, pmf) of the exact output ``y = Σ_K p``."""
        if self.m0.size == 1:
            return self.reduce_dim * self.p_lo, np.ones(1)
        return _pmf_power(self.p_lo, self.m0, self.reduce_dim, self.multiplier_name, "y")

    @cached_property
    def y_pmf(self) -> np.ndarray:
        """Exact pmf of the output ``y`` (aligned with :attr:`y_values`)."""
        return self._y_axis[1]

    @cached_property
    def y_values(self) -> np.ndarray:
        return np.arange(self.y_pmf.size) + self._y_axis[0]

    @cached_property
    def _eps_axis(self) -> tuple[int, np.ndarray]:
        """(lo, pmf) of the exact error ``ε = Σ_K δ``."""
        if self.d0.size == 1:
            return self.reduce_dim * self.d_lo, np.ones(1)
        return _pmf_power(self.d_lo, self.d0, self.reduce_dim, self.multiplier_name, "eps")

    @cached_property
    def eps_pmf(self) -> np.ndarray:
        """Exact pmf of the error ``ε`` (aligned with :attr:`eps_values`)."""
        return self._eps_axis[1]

    @cached_property
    def eps_values(self) -> np.ndarray:
        return np.arange(self.eps_pmf.size) + self._eps_axis[0]

    @cached_property
    def _conditional(self) -> np.ndarray:
        """``E[ε|y]`` aligned with :attr:`y_values` (NaN where P(y) = 0).

        ``E[ε|y]·P(y) = K·(m1 * m0^{*(K−1)})(y)`` by symmetry of the K iid
        products (docs/ALGORITHMS.md); outside the numerator's (trimmed)
        support the conditional is left NaN along with the zero-mass bins.
        """
        k = self.reduce_dim
        y_lo, y_pmf = self._y_axis
        out = np.full(y_pmf.size, np.nan)
        if self.m0.size == 1:
            num_lo, numerator = (k - 1) * self.p_lo + self.p_lo, k * self.m1
        else:
            power = _pmf_power(
                self.p_lo, self.m0, k - 1, self.multiplier_name, "y|conditional"
            )
            num_lo, numerator = _conv(power, (self.p_lo, self.m1))
            numerator *= k
        # Align the numerator's integer support with the y grid.
        start = max(y_lo, num_lo)
        stop = min(y_lo + y_pmf.size, num_lo + numerator.size)
        if stop > start:
            y_slice = slice(start - y_lo, stop - y_lo)
            n_slice = slice(start - num_lo, stop - num_lo)
            with np.errstate(divide="ignore", invalid="ignore"):
                out[y_slice] = np.where(
                    y_pmf[y_slice] > 0, numerator[n_slice] / y_pmf[y_slice], np.nan
                )
        return out

    # -- derived quantities ------------------------------------------
    def _quantile(self, values: np.ndarray, pmf: np.ndarray, q: float) -> float:
        cdf = np.cumsum(pmf)
        index = int(np.searchsorted(cdf, min(max(q, 0.0), 1.0) * cdf[-1]))
        return float(values[min(index, values.size - 1)])

    def eps_quantile(self, q: float) -> float:
        """Exact ``q``-quantile (0..1) of the per-output error ε."""
        return self._quantile(self.eps_values, self.eps_pmf, q)

    def y_quantile(self, q: float) -> float:
        """Exact ``q``-quantile (0..1) of the exact output y."""
        return self._quantile(self.y_values, self.y_pmf, q)

    def conditional_error(self, min_mass: float = 1e-9) -> tuple[np.ndarray, np.ndarray]:
        """``(y, E[ε|y])`` restricted to output bins carrying real mass."""
        keep = self.y_pmf >= min_mass
        return self.y_values[keep], self._conditional[keep]

    def normalized_error(self) -> float:
        """RMS per-output error relative to the output spread.

        ``sqrt(E[ε]² + Var[ε]) / std(y)`` — the scale-free severity score
        the zoo ranking sorts by (0 for the exact multiplier). Pure
        moments: needs no FFT.
        """
        scale = self.y_std
        rms = math.sqrt(self.eps_mean**2 + max(self.eps_var, 0.0))
        return rms / scale if scale > 0 else rms


def analytic_error_stats(
    multiplier: Multiplier,
    reduce_dim: int = 72,
    act_bits: int = 8,
    weight_bits: int = 4,
    sigma_fraction: float = 0.35,
    act_dist: OperandDistribution | None = None,
    w_dist: OperandDistribution | None = None,
) -> AnalyticErrorStats:
    """Exact error statistics for GEMM outputs of depth ``reduce_dim``.

    Operand distributions default to the clipped-normal priors the
    Monte-Carlo profiler samples from; pass ``act_dist``/``w_dist`` for
    empirical per-layer histograms. Everything is computed from the joint
    LUT table — no GEMM is ever executed.
    """
    if reduce_dim < 1:
        raise AnalyticModelError(f"reduce_dim must be >= 1, got {reduce_dim}")
    act_dist = act_dist or OperandDistribution.clipped_normal(act_bits, sigma_fraction)
    w_dist = w_dist or OperandDistribution.clipped_normal(weight_bits, sigma_fraction)
    with prof.timer("ge.analytic_stats"), tr.span(
        "ge.analytic", multiplier=multiplier.name, reduce_dim=reduce_dim
    ):
        met.inc("ge.analytic_models")
        weight, product, error = joint_error_table(multiplier, act_dist, w_dist)

        # Exact per-product moments; per-output values scale linearly in K.
        mu_p = float((weight * product).sum())
        mu_d = float((weight * error).sum())
        var_p = float((weight * product.astype(np.float64) ** 2).sum()) - mu_p**2
        var_d = float((weight * error.astype(np.float64) ** 2).sum()) - mu_d**2
        cov_pd = float((weight * product * error).sum()) - mu_p * mu_d
        k = reduce_dim

        p_lo, m0 = _dense_pmf(product, weight)
        _, m1 = _dense_pmf(product, weight * error)
        d_lo, d0 = _dense_pmf(error, weight)

        return AnalyticErrorStats(
            multiplier_name=multiplier.name,
            reduce_dim=k,
            y_mean=k * mu_p,
            y_var=k * var_p,
            eps_mean=k * mu_d,
            eps_var=k * var_d,
            cov=k * cov_pd,
            p_lo=p_lo,
            m0=m0,
            m1=m1,
            d_lo=d_lo,
            d0=d0,
        )


def analytic_error_model(
    multiplier: Multiplier,
    reduce_dim: int = 72,
    act_bits: int = 8,
    weight_bits: int = 4,
    sigma_fraction: float = 0.35,
    slope_significance: float = 0.25,
    saturation_percentile: float = 1.0,
    act_dist: OperandDistribution | None = None,
    w_dist: OperandDistribution | None = None,
    stats: AnalyticErrorStats | None = None,
) -> PiecewiseLinearErrorModel:
    """Closed-form :class:`PiecewiseLinearErrorModel` — no GEMM sampling.

    Mirrors :func:`repro.ge.error_model.fit_error_model` exactly, swapping
    sampled estimates for their population values: the least-squares line
    is ``k = Cov[ε,y]/Var[y]``, saturation bounds are the exact ε
    quantiles at ``saturation_percentile``, and the same slope-significance
    rule collapses insignificant slopes to the constant model (so unbiased
    EvoApprox designs degenerate to the STE here too).
    """
    with prof.timer("ge.analytic_model"):
        if stats is None:
            stats = analytic_error_stats(
                multiplier,
                reduce_dim=reduce_dim,
                act_bits=act_bits,
                weight_bits=weight_bits,
                sigma_fraction=sigma_fraction,
                act_dist=act_dist,
                w_dist=w_dist,
            )
        if stats.y_var <= 0.0:
            k, c = 0.0, stats.eps_mean
        else:
            k = stats.cov / stats.y_var
            c = stats.eps_mean - k * stats.y_mean

        lower = stats.eps_quantile(saturation_percentile / 100.0)
        upper = stats.eps_quantile(1.0 - saturation_percentile / 100.0)
        if lower > upper:
            lower, upper = upper, lower

        explained_swing = abs(k) * (stats.y_quantile(0.99) - stats.y_quantile(0.01))
        if stats.eps_std == 0.0 or explained_swing < slope_significance * stats.eps_std:
            mean = stats.eps_mean
            return PiecewiseLinearErrorModel(0.0, mean, min(lower, mean), max(upper, mean))
        if upper <= lower:
            # Concentrated error pmfs can collapse the quantile band to a
            # point; clipping would flatten a genuinely sloped fit, so
            # widen to the exact support (same guard as fit_error_model).
            lower = float(stats.eps_values[0])
            upper = float(stats.eps_values[-1])
        return PiecewiseLinearErrorModel(float(k), float(c), lower, upper)


@lru_cache(maxsize=256)
def _cached_prior_model(
    name: str,
    reduce_dim: int,
    act_bits: int,
    weight_bits: int,
    sigma_fraction: float,
    slope_significance: float,
    saturation_percentile: float,
) -> PiecewiseLinearErrorModel:
    """Registry-multiplier models under the default priors, memoized.

    The analytic computation is already milliseconds, but sweeps and
    serving attach the same registry multiplier many times; keyed by name
    this turns repeats into dictionary hits. Only used for registry
    lookups (ad-hoc Multiplier instances bypass it — names may collide).
    """
    from repro.approx.registry import get_multiplier

    return analytic_error_model(
        get_multiplier(name),
        reduce_dim=reduce_dim,
        act_bits=act_bits,
        weight_bits=weight_bits,
        sigma_fraction=sigma_fraction,
        slope_significance=slope_significance,
        saturation_percentile=saturation_percentile,
    )
