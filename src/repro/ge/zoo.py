"""Analytic ranking of the whole multiplier zoo in O(LUT).

Exploring a large multiplier registry with Monte-Carlo costs
O(samples·GEMM) per candidate; the closed-form statistics of
:mod:`repro.ge.analytic` cost milliseconds each, so the *entire* zoo can
be scored before any expensive characterization or accuracy evaluation.
:func:`rank_multipliers` backs the ``repro zoo`` subcommand (table +
JSON) and :func:`prefilter_multipliers` backs ``run_sweep(prefilter=N)``,
which drops the weakest candidates from a sweep grid before any training
happens.

The score is :meth:`AnalyticErrorStats.normalized_error` —
``sqrt(E[ε]² + Var[ε]) / std(y)``, the RMS per-output error in units of
the output spread — so 0 is exact and candidates of very different
absolute error magnitudes compare on one axis. Lower is better.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.approx.registry import available_multipliers, get_multiplier
from repro.errors import MultiplierError
from repro.ge.analytic import analytic_error_model, analytic_error_stats
from repro.obs import profiling as prof


@dataclass(frozen=True)
class ZooEntry:
    """One ranked multiplier: analytic error statistics + fitted model."""

    rank: int
    name: str
    score: float  # normalized RMS error; 0 = exact, lower = better
    eps_mean: float
    eps_std: float
    y_std: float
    k: float
    c: float
    lower: float
    upper: float
    is_constant: bool  # constant f(y): GE degenerates to the plain STE
    energy_savings: float

    def to_dict(self) -> dict:
        return asdict(self)


def rank_multipliers(
    names: list[str] | None = None,
    reduce_dim: int = 72,
    act_bits: int = 8,
    weight_bits: int = 4,
    sigma_fraction: float = 0.35,
    slope_significance: float = 0.25,
) -> list[ZooEntry]:
    """Score every named multiplier analytically and sort best-first.

    ``names`` defaults to the full registry. Unknown names raise
    :class:`~repro.errors.MultiplierError` (callers that tolerate unknown
    candidates — the sweep prefilter — handle them explicitly).
    """
    names = list(names) if names is not None else available_multipliers()
    entries = []
    with prof.timer("ge.zoo_rank"):
        for name in names:
            multiplier = get_multiplier(name)
            stats = analytic_error_stats(
                multiplier,
                reduce_dim=reduce_dim,
                act_bits=act_bits,
                weight_bits=weight_bits,
                sigma_fraction=sigma_fraction,
            )
            model = analytic_error_model(
                multiplier, slope_significance=slope_significance, stats=stats
            )
            entries.append(
                ZooEntry(
                    rank=0,
                    name=name,
                    score=stats.normalized_error(),
                    eps_mean=stats.eps_mean,
                    eps_std=stats.eps_std,
                    y_std=stats.y_std,
                    k=model.k,
                    c=model.c,
                    lower=model.lower,
                    upper=model.upper,
                    is_constant=model.is_constant,
                    energy_savings=multiplier.energy_savings,
                )
            )
    entries.sort(key=lambda e: (e.score, e.name))
    return [
        ZooEntry(**{**entry.to_dict(), "rank": position + 1})
        for position, entry in enumerate(entries)
    ]


def prefilter_multipliers(
    names: list[str],
    keep: int,
    **rank_kwargs,
) -> list[str]:
    """The ``keep`` analytically-best candidates of ``names``, input order.

    Unresolvable names pass straight through (a sweep turns them into
    recorded failure cells rather than silently dropping them), and
    duplicates survive as given. With ``keep`` >= the number of rankable
    candidates this is the identity.
    """
    if keep < 1:
        raise MultiplierError(f"prefilter must keep at least 1 candidate, got {keep}")
    resolvable = []
    for name in names:
        try:
            get_multiplier(name)
            resolvable.append(name)
        except MultiplierError:
            continue
    ranked = rank_multipliers(sorted(set(resolvable)), **rank_kwargs)
    kept = {entry.name for entry in ranked[:keep]}
    return [name for name in names if name in kept or name not in set(resolvable)]
