"""Monte-Carlo profiling of approximate-GEMM errors (section IV-B).

The paper estimates ``f(y)`` from "50 MonteCarlo simulations of a single
convolution with values drawn from normal distributions, within the
corresponding quantization ranges". We reproduce that: random activation and
weight codes are drawn from clipped normal distributions over the symmetric
integer ranges, both exact and approximate GEMMs are evaluated, and the
paired ``(y, ε)`` samples are returned for fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.gemm import approx_matmul, exact_int_matmul
from repro.approx.multiplier import Multiplier
from repro.ge.error_model import PiecewiseLinearErrorModel, fit_error_model
from repro.obs import profiling as prof
from repro.quant.quantizer import qrange
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class ErrorProfile:
    """Paired exact outputs and approximation errors from MC simulation."""

    y: np.ndarray  # exact GEMM outputs (integer-code space)
    eps: np.ndarray  # ỹ - y at the same positions
    multiplier_name: str


def _sample_codes(rng, shape, bits: int, sigma_fraction: float) -> np.ndarray:
    """Normal codes clipped to the symmetric ``bits``-bit range."""
    lo, hi = qrange(bits)
    sigma = sigma_fraction * hi
    codes = np.rint(rng.normal(0.0, sigma, size=shape))
    return np.clip(codes, lo, hi).astype(np.int32)


def profile_multiplier_error(
    multiplier: Multiplier,
    num_simulations: int = 50,
    gemm_rows: int = 64,
    reduce_dim: int = 72,
    out_dim: int = 16,
    act_bits: int = 8,
    weight_bits: int = 4,
    sigma_fraction: float = 0.35,
    rng=None,
) -> ErrorProfile:
    """Run ``num_simulations`` random convolutions-as-GEMMs and collect
    ``(y, ε)`` pairs.

    The default ``reduce_dim=72`` corresponds to a 3×3 convolution over 8
    input channels; ``sigma_fraction`` sets the spread of the sampled codes
    within the quantization range.
    """
    rng = new_rng(rng)
    ys: list[np.ndarray] = []
    errs: list[np.ndarray] = []
    with prof.timer("ge.montecarlo_profile"):
        prof.count("ge.montecarlo_simulations", n=num_simulations)
        for _ in range(num_simulations):
            a = _sample_codes(rng, (gemm_rows, reduce_dim), act_bits, sigma_fraction)
            b = _sample_codes(rng, (reduce_dim, out_dim), weight_bits, sigma_fraction)
            exact = exact_int_matmul(a, b)
            approx = approx_matmul(a, b, multiplier)
            ys.append(exact.reshape(-1))
            errs.append((approx - exact).reshape(-1))
    y = np.concatenate(ys)
    eps = np.concatenate(errs)
    return ErrorProfile(y=y, eps=eps, multiplier_name=multiplier.name)


def estimate_error_model(
    multiplier: Multiplier,
    num_simulations: int = 50,
    slope_significance: float = 0.25,
    rng=None,
    **profile_kwargs,
) -> PiecewiseLinearErrorModel:
    """Profile ``multiplier`` and fit the piecewise-linear error model.

    This is the one-call entry point used by the approximation stage of
    Algorithm 1; it takes well under a second at the default settings.
    """
    profile = profile_multiplier_error(
        multiplier, num_simulations=num_simulations, rng=rng, **profile_kwargs
    )
    return fit_error_model(profile.y, profile.eps, slope_significance=slope_significance)
