"""Monte-Carlo profiling of approximate-GEMM errors (section IV-B).

The paper estimates ``f(y)`` from "50 MonteCarlo simulations of a single
convolution with values drawn from normal distributions, within the
corresponding quantization ranges". We reproduce that: random activation and
weight codes are drawn from clipped normal distributions over the symmetric
integer ranges, both exact and approximate GEMMs are evaluated, and the
paired ``(y, ε)`` samples are returned for fitting.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from functools import partial

from repro.approx.gemm import approx_matmul, exact_int_matmul
from repro.approx.multiplier import Multiplier
from repro.approx.plan import build_plan, plan_caching_enabled
from repro.ge.error_model import PiecewiseLinearErrorModel, fit_error_model
from repro.obs import metrics as met
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.parallel import ParallelConfig, amortized_workers, chunked, map_workers
from repro.quant.quantizer import qrange
from repro.utils.rng import get_rng_state, new_rng, set_rng_state

# Below this many total MACs a worker pool cannot amortise its dispatch and
# fork cost (measured in docs/PERFORMANCE.md): the paper-default profile
# (50 sims of 64x72x16) runs ~3.5x faster serially than on 4 workers.
_MIN_PARALLEL_MC_WORK = float(2**25)


@dataclass(frozen=True)
class ErrorProfile:
    """Paired exact outputs and approximation errors from MC simulation."""

    y: np.ndarray  # exact GEMM outputs (integer-code space)
    eps: np.ndarray  # ỹ - y at the same positions
    multiplier_name: str


def _sample_codes(rng, shape, bits: int, sigma_fraction: float) -> np.ndarray:
    """Normal codes clipped to the symmetric ``bits``-bit range."""
    lo, hi = qrange(bits)
    sigma = sigma_fraction * hi
    codes = np.rint(rng.normal(0.0, sigma, size=shape))
    return np.clip(codes, lo, hi).astype(np.int32)


@dataclass(frozen=True)
class _ChunkSpec:
    """One worker's share of the simulations, by RNG state instead of data.

    ``rng_state`` is the parent generator's bit-generator state captured at
    this chunk's first draw; regenerating ``count`` draws from it yields
    exactly the arrays the parent would have produced, so only states cross
    the process boundary and no worker ever holds more than one draw.
    """

    rng_state: dict | None
    count: int
    gemm_rows: int
    reduce_dim: int
    out_dim: int
    act_bits: int
    weight_bits: int
    sigma_fraction: float


def _draw_pair(rng, spec: _ChunkSpec) -> tuple[np.ndarray, np.ndarray]:
    """One simulation's (activation, weight) draw — the canonical order."""
    a = _sample_codes(rng, (spec.gemm_rows, spec.reduce_dim), spec.act_bits, spec.sigma_fraction)
    b = _sample_codes(rng, (spec.reduce_dim, spec.out_dim), spec.weight_bits, spec.sigma_fraction)
    return a, b


def _simulate_chunk(
    multiplier: Multiplier, spec: _ChunkSpec, rng=None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Exact/approximate GEMM pairs for one chunk of the simulations.

    Module-level so the process backend can pickle it. Draws are generated
    lazily, one simulation at a time — peak memory is a single (a, b) pair
    regardless of ``count``. Workers regenerate their draws from the chunk's
    captured RNG state; the serial path passes the parent generator directly
    (``rng``) so it advances exactly as if it had drawn everything itself.
    """
    out = []
    if rng is None:
        rng = new_rng(0)
        set_rng_state(rng, spec.rng_state)
    use_plans = plan_caching_enabled() and not multiplier.is_exact
    with tr.span("mc.chunk", draws=spec.count):
        for _ in range(spec.count):
            a, b = _draw_pair(rng, spec)
            draw_started = _time.perf_counter() if met.enabled else 0.0
            exact = exact_int_matmul(a, b)
            # Each draw has fresh weights, so there is nothing to cache across
            # draws — but building a plan still wins: one bucketization pass
            # over b instead of 2·whi boolean scans, and every draw gathers
            # into the same pooled workspace buffer.
            plan = build_plan(b, multiplier) if use_plans else None
            approx = approx_matmul(a, b, multiplier, plan=plan)
            out.append((exact.reshape(-1), (approx - exact).reshape(-1)))
            if met.enabled:
                met.observe("mc.draw_seconds", _time.perf_counter() - draw_started)
    return out


def profile_multiplier_error(
    multiplier: Multiplier,
    num_simulations: int = 50,
    gemm_rows: int = 64,
    reduce_dim: int = 72,
    out_dim: int = 16,
    act_bits: int = 8,
    weight_bits: int = 4,
    sigma_fraction: float = 0.35,
    rng=None,
    workers: int | None = None,
) -> ErrorProfile:
    """Run ``num_simulations`` random convolutions-as-GEMMs and collect
    ``(y, ε)`` pairs.

    The default ``reduce_dim=72`` corresponds to a 3×3 convolution over 8
    input channels; ``sigma_fraction`` sets the spread of the sampled codes
    within the quantization range.

    With ``workers > 1`` the GEMM evaluations spread over a worker pool.
    Draws are never materialized up front: the parent captures its RNG
    state at each chunk boundary (advancing the stream in simulation order)
    and each worker regenerates its own chunk's codes from that state, so
    peak memory is one (a, b) pair per live worker while the profile (and
    any error model fitted from it) stays **bit-for-bit identical** to the
    serial one at every worker count — including the final state of a
    caller-provided ``rng``.
    """
    rng = new_rng(rng)

    def spec_for(state: dict | None, count: int) -> _ChunkSpec:
        return _ChunkSpec(
            rng_state=state,
            count=count,
            gemm_rows=gemm_rows,
            reduce_dim=reduce_dim,
            out_dim=out_dim,
            act_bits=act_bits,
            weight_bits=weight_bits,
            sigma_fraction=sigma_fraction,
        )

    with prof.timer("ge.montecarlo_profile"):
        prof.count("ge.montecarlo_simulations", n=num_simulations)
        num_workers = amortized_workers(
            workers,
            tasks=num_simulations,
            work=float(num_simulations) * gemm_rows * reduce_dim * out_dim,
            min_work=_MIN_PARALLEL_MC_WORK,
        )
        if num_workers > 1 and num_simulations > 1:
            # ~2 chunks per worker keeps the pool busy if chunk costs skew.
            # Capture the parent state at each chunk's first simulation and
            # advance the stream by drawing (and dropping) that chunk's
            # codes — same consumption order as the serial path.
            specs = []
            for batch in chunked(list(range(num_simulations)), 2 * num_workers):
                spec = spec_for(get_rng_state(rng), len(batch))
                for _ in batch:
                    _draw_pair(rng, spec)
                specs.append(spec)
            results = map_workers(
                partial(_simulate_chunk, multiplier),
                specs,
                ParallelConfig(workers=num_workers),
            )
            pairs = [pair for batch in results for pair in batch]
        else:
            pairs = _simulate_chunk(multiplier, spec_for(None, num_simulations), rng=rng)
    y = np.concatenate([exact for exact, _ in pairs])
    eps = np.concatenate([err for _, err in pairs])
    return ErrorProfile(y=y, eps=eps, multiplier_name=multiplier.name)


def montecarlo_error_model(
    multiplier: Multiplier,
    num_simulations: int = 50,
    slope_significance: float = 0.25,
    rng=None,
    workers: int | None = None,
    **profile_kwargs,
) -> PiecewiseLinearErrorModel:
    """Profile ``multiplier`` by sampling and fit the piecewise-linear model.

    The sampling ground truth behind :func:`repro.ge.estimate_error_model`
    (which dispatches between this and the closed-form
    :func:`repro.ge.analytic.analytic_error_model`); it takes well under a
    second at the default settings. ``workers`` parallelises the profiling
    without changing the fit (see :func:`profile_multiplier_error`).
    """
    profile = profile_multiplier_error(
        multiplier, num_simulations=num_simulations, rng=rng, workers=workers,
        **profile_kwargs,
    )
    return fit_error_model(profile.y, profile.eps, slope_significance=slope_significance)
