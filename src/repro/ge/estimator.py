"""Estimator seam: one entry point, two error-model engines.

:func:`estimate_error_model` is the call site the rest of the library
uses (Algorithm 1, sweeps, the CLI, serving warmup). It dispatches on the
``error_model_method`` config knob (per-call ``method=`` > scope >
``configure`` > ``--error-model-method`` > ``REPRO_ERROR_MODEL_METHOD`` >
default ``auto``):

- ``"analytic"`` — closed-form model from the LUT and operand
  distributions (:mod:`repro.ge.analytic`), milliseconds, no sampling
  noise;
- ``"montecarlo"`` — the paper's 50-simulation sampling path
  (:mod:`repro.ge.montecarlo`), the ground truth;
- ``"auto"`` — analytic, falling back to Monte-Carlo whenever the
  analytic engine refuses (:class:`~repro.ge.analytic.AnalyticModelError`:
  degenerate operand histograms, codes outside the LUT domain, FFT mass
  loss). The fallback is counted (``ge.analytic_fallbacks``) so it shows
  up in ``repro report``.

:func:`cross_validate` is the agreement harness: it profiles once by
Monte-Carlo, fits both models, and measures their worst prediction
disagreement over the observed output range in units of the error spread
— asserted in tests for every registry multiplier and reported by
``scripts/bench.py --analytic``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.approx.multiplier import Multiplier
from repro.errors import ConfigError, MultiplierError
from repro.ge.analytic import (
    AnalyticModelError,
    OperandDistribution,
    _cached_prior_model,
    analytic_error_model,
)
from repro.ge.error_model import PiecewiseLinearErrorModel, fit_error_model
from repro.ge.montecarlo import montecarlo_error_model, profile_multiplier_error
from repro.obs import metrics as met

_METHODS = ("auto", "analytic", "montecarlo")

# profile_multiplier_error kwargs that also parameterize the analytic
# model, with the shared defaults.
_ANALYTIC_KWARGS = {
    "reduce_dim": 72,
    "act_bits": 8,
    "weight_bits": 4,
    "sigma_fraction": 0.35,
}


def _analytic_dispatch(
    multiplier: Multiplier,
    slope_significance: float,
    act_dist: OperandDistribution | None,
    w_dist: OperandDistribution | None,
    profile_kwargs: dict,
) -> PiecewiseLinearErrorModel:
    kwargs = {name: profile_kwargs.get(name, default) for name, default in _ANALYTIC_KWARGS.items()}
    if act_dist is None and w_dist is None:
        try:
            from repro.approx.registry import get_multiplier

            registry_instance = get_multiplier(multiplier.name) is multiplier
        except MultiplierError:
            registry_instance = False
        if registry_instance:
            # Registry multipliers under the default priors recur across
            # sweep cells, replicas and epochs — memoize by name.
            return _cached_prior_model(
                multiplier.name,
                kwargs["reduce_dim"],
                kwargs["act_bits"],
                kwargs["weight_bits"],
                kwargs["sigma_fraction"],
                slope_significance,
                1.0,
            )
    return analytic_error_model(
        multiplier,
        slope_significance=slope_significance,
        act_dist=act_dist,
        w_dist=w_dist,
        **kwargs,
    )


def estimate_error_model(
    multiplier: Multiplier,
    num_simulations: int = 50,
    slope_significance: float = 0.25,
    rng=None,
    workers: int | None = None,
    method: str | None = None,
    act_dist: OperandDistribution | None = None,
    w_dist: OperandDistribution | None = None,
    **profile_kwargs,
) -> PiecewiseLinearErrorModel:
    """The piecewise-linear error model of ``multiplier``, by the selected
    engine.

    ``method`` overrides the ``error_model_method`` knob for this call.
    ``num_simulations``/``rng``/``workers``/``gemm_rows``/``out_dim`` only
    affect the Monte-Carlo engine; ``act_dist``/``w_dist`` (operand
    distributions, e.g. from a quant observer's ``code_histogram``) only
    the analytic one. Shared shape kwargs (``reduce_dim``, ``act_bits``,
    ``weight_bits``, ``sigma_fraction``) parameterize both, so switching
    engines never changes what is being modeled.
    """
    resolved = str(config.resolve("error_model_method", call=method)).lower()
    if resolved not in _METHODS:
        raise ConfigError(
            f"error_model_method must be one of {', '.join(_METHODS)}; got {resolved!r}"
        )
    if resolved == "analytic":
        return _analytic_dispatch(
            multiplier, slope_significance, act_dist, w_dist, profile_kwargs
        )
    if resolved == "auto":
        try:
            return _analytic_dispatch(
                multiplier, slope_significance, act_dist, w_dist, profile_kwargs
            )
        except AnalyticModelError:
            met.inc("ge.analytic_fallbacks")
    return montecarlo_error_model(
        multiplier,
        num_simulations=num_simulations,
        slope_significance=slope_significance,
        rng=rng,
        workers=workers,
        **profile_kwargs,
    )


@dataclass(frozen=True)
class CrossValidation:
    """Analytic-vs-Monte-Carlo agreement for one multiplier.

    ``max_abs_diff`` is the worst |f_analytic(y) − f_mc(y)| over the
    central (1st–99th percentile) observed output range;
    ``normalized_disagreement`` divides it by the Monte-Carlo error spread
    (floored at 1 code), making tolerances comparable across multipliers
    of wildly different error magnitudes.
    """

    multiplier_name: str
    analytic: PiecewiseLinearErrorModel
    montecarlo: PiecewiseLinearErrorModel
    max_abs_diff: float
    eps_std: float

    @property
    def normalized_disagreement(self) -> float:
        return self.max_abs_diff / max(self.eps_std, 1.0)

    def agrees(self, tolerance: float = 0.25) -> bool:
        """True when the engines agree within ``tolerance``·std(ε)."""
        return self.normalized_disagreement <= tolerance


def cross_validate(
    multiplier: Multiplier,
    num_simulations: int = 50,
    slope_significance: float = 0.25,
    rng=0,
    workers: int | None = None,
    grid_points: int = 257,
    **profile_kwargs,
) -> CrossValidation:
    """Fit both engines on identical settings and measure their agreement.

    One Monte-Carlo profile supplies both the sampled fit and the ``y``
    evaluation grid, so the comparison sees exactly the data the sampling
    engine saw.
    """
    profile = profile_multiplier_error(
        multiplier,
        num_simulations=num_simulations,
        rng=rng,
        workers=workers,
        **profile_kwargs,
    )
    mc_model = fit_error_model(
        profile.y, profile.eps, slope_significance=slope_significance
    )
    analytic_model = _analytic_dispatch(
        multiplier, slope_significance, None, None, profile_kwargs
    )
    grid = np.linspace(
        float(np.percentile(profile.y, 1.0)),
        float(np.percentile(profile.y, 99.0)),
        grid_points,
    )
    max_abs_diff = float(np.max(np.abs(analytic_model(grid) - mc_model(grid))))
    return CrossValidation(
        multiplier_name=multiplier.name,
        analytic=analytic_model,
        montecarlo=mc_model,
        max_abs_diff=max_abs_diff,
        eps_std=float(np.asarray(profile.eps, dtype=np.float64).std()),
    )
