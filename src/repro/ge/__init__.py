"""Gradient estimation of approximate GEMMs (section III-B of the paper)."""

from repro.ge.error_model import PiecewiseLinearErrorModel, fit_error_model
from repro.ge.montecarlo import (
    ErrorProfile,
    estimate_error_model,
    profile_multiplier_error,
)

__all__ = [
    "PiecewiseLinearErrorModel",
    "fit_error_model",
    "ErrorProfile",
    "profile_multiplier_error",
    "estimate_error_model",
]
