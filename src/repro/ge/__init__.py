"""Gradient estimation of approximate GEMMs (section III-B of the paper)."""

from repro.ge.analytic import (
    AnalyticErrorStats,
    AnalyticModelError,
    OperandDistribution,
    analytic_error_model,
    analytic_error_stats,
)
from repro.ge.error_model import PiecewiseLinearErrorModel, fit_error_model
from repro.ge.estimator import CrossValidation, cross_validate, estimate_error_model
from repro.ge.montecarlo import (
    ErrorProfile,
    montecarlo_error_model,
    profile_multiplier_error,
)
from repro.ge.zoo import ZooEntry, prefilter_multipliers, rank_multipliers

__all__ = [
    "PiecewiseLinearErrorModel",
    "fit_error_model",
    "ErrorProfile",
    "profile_multiplier_error",
    "montecarlo_error_model",
    "estimate_error_model",
    "AnalyticErrorStats",
    "AnalyticModelError",
    "OperandDistribution",
    "analytic_error_model",
    "analytic_error_stats",
    "CrossValidation",
    "cross_validate",
    "ZooEntry",
    "rank_multipliers",
    "prefilter_multipliers",
]
