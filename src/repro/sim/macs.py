"""MAC and parameter counting via a shape-probing forward pass.

The GEMM layer classes are temporarily patched so a single probe forward
records every convolution/linear invocation with its actual input geometry —
robust to arbitrary model topologies (residual connections, reuse, etc.).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.im2col import conv_out_size
from repro.autograd.tensor import Tensor
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.quant.qlayers import QuantConv2d, QuantLinear


@dataclass(frozen=True)
class LayerMacs:
    """Per-layer MAC record (per single input sample)."""

    layer_type: str
    macs: int
    output_shape: tuple[int, ...]


@dataclass
class MacReport:
    """MACs and parameters of a model for one input geometry."""

    layers: list[LayerMacs] = field(default_factory=list)
    params: int = 0

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)


def _conv_macs(layer, x_shape) -> LayerMacs:
    _, c, h, w = x_shape
    k = layer.kernel_size
    oh = conv_out_size(h, k, layer.stride, layer.padding)
    ow = conv_out_size(w, k, layer.stride, layer.padding)
    macs = oh * ow * layer.out_channels * (layer.in_channels // layer.groups) * k * k
    return LayerMacs(type(layer).__name__, macs, (layer.out_channels, oh, ow))


def _linear_macs(layer, x_shape) -> LayerMacs:
    macs = layer.in_features * layer.out_features
    return LayerMacs(type(layer).__name__, macs, (layer.out_features,))


@contextlib.contextmanager
def _recording(report: MacReport):
    originals = {
        Conv2d: Conv2d.forward,
        QuantConv2d: QuantConv2d.forward,
        Linear: Linear.forward,
        QuantLinear: QuantLinear.forward,
    }

    def _wrap(cls, counter):
        original = originals[cls]

        def patched(self, x):
            report.layers.append(counter(self, x.shape))
            return original(self, x)

        return patched

    Conv2d.forward = _wrap(Conv2d, _conv_macs)
    QuantConv2d.forward = _wrap(QuantConv2d, _conv_macs)
    Linear.forward = _wrap(Linear, _linear_macs)
    QuantLinear.forward = _wrap(QuantLinear, _linear_macs)
    try:
        yield
    finally:
        for cls, fn in originals.items():
            cls.forward = fn


def count_macs(model: Module, input_shape: tuple[int, int, int]) -> MacReport:
    """MACs per sample for ``input_shape = (channels, height, width)``.

    Works on float and quantized models alike. Calibration state is not
    required: quantized layers are probed through their float fallback when
    uncalibrated.
    """
    report = MacReport(params=model.num_parameters())
    probe = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
    was_training = model.training
    model.eval()
    # Uncalibrated quantized layers can only run their calibration path.
    quant = [m for m in model.modules() if isinstance(m, (QuantConv2d, QuantLinear))]
    uncalibrated = [m for m in quant if not m.is_calibrated]
    for m in uncalibrated:
        m.calibrating = True
    try:
        with no_grad(), _recording(report):
            model(probe)
    finally:
        for m in uncalibrated:
            m.calibrating = False
        model.train(was_training)
    return report
