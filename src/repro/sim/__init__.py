"""ProxSim-style approximate execution and MAC/parameter accounting."""

from repro.sim.macs import LayerMacs, MacReport, count_macs
from repro.sim.faults import FaultReport, fault_sensitivity_sweep, inject_weight_faults
from repro.sim.resiliency import (
    LayerResiliency,
    attach_multiplier_map,
    greedy_heterogeneous_assignment,
    layer_resiliency,
    partial_approximation_energy,
)
from repro.sim.proxsim import (
    approximate_execution,
    attach_multiplier,
    detach_multiplier,
    evaluate_accuracy,
    resolve_multiplier,
)

__all__ = [
    "LayerMacs",
    "MacReport",
    "count_macs",
    "attach_multiplier",
    "detach_multiplier",
    "approximate_execution",
    "evaluate_accuracy",
    "resolve_multiplier",
    "LayerResiliency",
    "layer_resiliency",
    "attach_multiplier_map",
    "greedy_heterogeneous_assignment",
    "partial_approximation_energy",
    "FaultReport",
    "inject_weight_faults",
    "fault_sensitivity_sweep",
]
