"""ProxSim-style execution management for approximate CNNs.

The original ProxSim [5] is a TensorFlow framework that swaps exact GEMM
kernels for approximate-multiplier kernels during training and inference.
This module provides the same control surface for our quantized models:
attach a multiplier (by object or registry name) to every quantized GEMM
layer, optionally with a gradient-estimation error model, run evaluations,
and restore exact execution afterwards.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.approx.registry import get_multiplier
from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.dataloader import iterate_batches
from repro.ge.error_model import PiecewiseLinearErrorModel
from repro.ge.estimator import estimate_error_model
from repro.nn.module import Module
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.quant.convert import quant_layers


def resolve_multiplier(multiplier: Multiplier | str | None) -> Multiplier | None:
    """Accept a Multiplier instance, a registry name, or None."""
    if multiplier is None or isinstance(multiplier, Multiplier):
        return multiplier
    return get_multiplier(multiplier)


def attach_multiplier(
    model: Module,
    multiplier: Multiplier | str | None,
    error_model: PiecewiseLinearErrorModel | str | None = None,
    rng=0,
) -> Multiplier | None:
    """Attach ``multiplier`` to every quantized layer of ``model``.

    ``error_model`` may be a fitted :class:`PiecewiseLinearErrorModel`, the
    string ``"auto"`` (profile the multiplier by Monte-Carlo simulation, as
    the paper does), or None (plain STE backward).
    """
    mult = resolve_multiplier(multiplier)
    if error_model == "auto":
        if mult is None or mult.is_exact:
            error_model = None
        else:
            error_model = estimate_error_model(mult, rng=rng)
    count = 0
    for layer in quant_layers(model):
        layer.set_multiplier(mult, error_model)
        count += 1
    if count == 0:
        raise ValueError("attach_multiplier: model has no quantized layers")
    return mult


def detach_multiplier(model: Module) -> None:
    """Restore exact integer execution on every quantized layer."""
    for layer in quant_layers(model):
        layer.set_multiplier(None, None)


@contextlib.contextmanager
def approximate_execution(
    model: Module,
    multiplier: Multiplier | str | None,
    error_model: PiecewiseLinearErrorModel | str | None = None,
):
    """Context manager: approximate execution inside, previous state after.

    Only safe when all quantized layers share the same multiplier state
    (the uniform-approximation setting used throughout the paper).
    """
    previous = [(layer, layer.multiplier, layer.error_model) for layer in quant_layers(model)]
    attach_multiplier(model, multiplier, error_model)
    try:
        yield model
    finally:
        for layer, mult, em in previous:
            layer.set_multiplier(mult, em)


def evaluate_accuracy(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 128,
) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)`` in eval mode."""
    was_training = model.training
    model.eval()
    correct = 0
    with tr.span("eval", samples=len(y)), no_grad():
        for xb, yb in iterate_batches(x, y, batch_size, shuffle=False):
            batch_started = time.perf_counter() if met.enabled else 0.0
            logits = model(Tensor(xb))
            correct += int((logits.data.argmax(axis=1) == yb).sum())
            if met.enabled:
                met.observe("eval.batch_seconds", time.perf_counter() - batch_started)
    model.train(was_training)
    return correct / len(y)
