"""Weight-memory fault injection for reliability analysis.

Approximate-computing deployments care not only about designed error
(approximate multipliers) but also about random hardware faults. This
module injects stuck-at faults into the *stored integer weight codes* of a
quantized model — the standard memory-fault model — and measures the
accuracy impact. Faults are applied to the sign-magnitude code bits used by
the approximate datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.quant.convert import quant_layers
from repro.quant.quantizer import qrange
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class FaultReport:
    """Outcome of one fault-injection trial."""

    bit_error_rate: float
    faults_injected: int
    total_bits: int
    accuracy: float


def _inject_into_codes(codes: np.ndarray, bits: int, ber: float, rng) -> tuple[np.ndarray, int]:
    """Flip each magnitude/sign bit independently with probability ``ber``."""
    magnitude_bits = bits - 1
    mags = np.abs(codes)
    signs = codes < 0
    flipped = 0
    for bit in range(magnitude_bits):
        mask = rng.random(codes.shape) < ber
        mags = np.where(mask, mags ^ (1 << bit), mags)
        flipped += int(mask.sum())
    sign_mask = rng.random(codes.shape) < ber
    signs = np.where(sign_mask, ~signs, signs)
    flipped += int(sign_mask.sum())
    lo, hi = qrange(bits)
    out = np.clip(np.where(signs, -mags, mags), lo, hi)
    return out.astype(codes.dtype), flipped


def inject_weight_faults(
    model: Module,
    bit_error_rate: float,
    rng=0,
) -> int:
    """Corrupt the quantized weights of ``model`` in place.

    Weights are quantized to codes with each layer's current step, bits are
    flipped with probability ``bit_error_rate``, and the corrupted codes are
    dequantized back into the float weight storage (so both exact and
    approximate execution see the faults). Returns the number of flipped
    bits. Use on a clone — there is no undo.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ConfigError(f"bit_error_rate must be in [0, 1], got {bit_error_rate}")
    rng = new_rng(rng)
    layers = list(quant_layers(model))
    if not layers:
        raise ConfigError("fault injection requires a quantized model")
    total_flipped = 0
    for layer in layers:
        if not layer.is_calibrated:
            raise ConfigError("calibrate the model before injecting faults")
        step = layer.weight_step
        if isinstance(step, np.ndarray):
            # Per-channel steps broadcast along the output-channel axis.
            shape = (-1,) + (1,) * (layer.weight.data.ndim - 1)
            step_b = step.reshape(shape)
        else:
            step_b = float(step)
        bits = layer.qconfig.weight_bits
        lo, hi = qrange(bits)
        codes = np.clip(np.rint(layer.weight.data / step_b), lo, hi).astype(np.int32)
        corrupted, flipped = _inject_into_codes(codes, bits, bit_error_rate, rng)
        layer.weight.data = (corrupted * step_b).astype(np.float32)
        total_flipped += flipped
    return total_flipped


def fault_sensitivity_sweep(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    bit_error_rates: list[float],
    trials: int = 3,
    rng=0,
) -> list[FaultReport]:
    """Measure mean accuracy under increasing weight bit-error rates.

    Each (rate, trial) pair corrupts a fresh clone of ``model``; the
    returned reports average accuracy over trials per rate.
    """
    from repro.distill.teacher import clone_model
    from repro.sim.proxsim import evaluate_accuracy

    rngs = new_rng(rng)
    reports = []
    total_bits = sum(
        layer.weight.size * layer.qconfig.weight_bits for layer in quant_layers(model)
    )
    for rate in bit_error_rates:
        accs, injected = [], 0
        for _ in range(max(1, trials)):
            victim = clone_model(model)
            injected = inject_weight_faults(victim, rate, rng=rngs)
            accs.append(evaluate_accuracy(victim, x, y))
        reports.append(
            FaultReport(
                bit_error_rate=rate,
                faults_injected=injected,
                total_bits=total_bits,
                accuracy=float(np.mean(accs)),
            )
        )
    return reports
