"""Per-layer resiliency analysis and heterogeneous (partial) approximation.

The paper evaluates *uniform* approximation (one multiplier for all layers)
and cites resiliency-based partial approximation [12]-[14] as the
alternative; its outlook proposes mixing approximation techniques. This
module implements that extension:

- :func:`layer_resiliency` approximates one quantized layer at a time and
  measures the accuracy drop — the classic sensitivity analysis used to
  decide which layers tolerate aggressive multipliers.
- :func:`attach_multiplier_map` assigns a (possibly different) multiplier
  to each quantized layer by qualified name.
- :func:`greedy_heterogeneous_assignment` builds a per-layer assignment
  that maximises energy savings subject to an accuracy budget, using the
  resiliency ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.approx.registry import get_multiplier
from repro.errors import ConfigError
from repro.ge.error_model import PiecewiseLinearErrorModel
from repro.nn.module import Module
from repro.quant.convert import named_quant_layers
from repro.sim.proxsim import evaluate_accuracy, resolve_multiplier


@dataclass(frozen=True)
class LayerResiliency:
    """Accuracy impact of approximating one layer in isolation."""

    layer_name: str
    accuracy: float
    drop: float


def layer_resiliency(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    multiplier: Multiplier | str,
    batch_size: int = 128,
) -> list[LayerResiliency]:
    """Measure the accuracy drop of approximating each layer alone.

    Layers are restored to their previous multiplier state afterwards.
    Results are sorted most-resilient first.
    """
    mult = resolve_multiplier(multiplier)
    layers = list(named_quant_layers(model))
    if not layers:
        raise ConfigError("layer_resiliency requires a quantized model")
    baseline = evaluate_accuracy(model, x, y, batch_size)
    results = []
    for name, layer in layers:
        saved = (layer.multiplier, layer.error_model)
        layer.set_multiplier(mult, None)
        acc = evaluate_accuracy(model, x, y, batch_size)
        layer.set_multiplier(*saved)
        results.append(LayerResiliency(name, acc, baseline - acc))
    results.sort(key=lambda r: r.drop)
    return results


def attach_multiplier_map(
    model: Module,
    assignment: dict[str, Multiplier | str | None],
    error_models: dict[str, PiecewiseLinearErrorModel] | None = None,
) -> None:
    """Assign per-layer multipliers by qualified layer name.

    Layers absent from ``assignment`` are left unchanged. Unknown names in
    ``assignment`` raise, so typos do not silently leave layers exact.
    """
    layers = dict(named_quant_layers(model))
    unknown = set(assignment) - set(layers)
    if unknown:
        raise ConfigError(
            f"unknown quantized layers in assignment: {sorted(unknown)}; "
            f"known: {sorted(layers)}"
        )
    error_models = error_models or {}
    for name, mult in assignment.items():
        layers[name].set_multiplier(resolve_multiplier(mult), error_models.get(name))


def greedy_heterogeneous_assignment(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    multiplier: Multiplier | str,
    accuracy_budget: float,
    batch_size: int = 128,
) -> dict[str, str]:
    """Greedily approximate layers (most-resilient first) while the total
    accuracy drop stays within ``accuracy_budget``.

    Returns the assignment actually applied: layer name → multiplier name.
    The model is left with the returned assignment attached.
    """
    if accuracy_budget < 0:
        raise ConfigError(f"accuracy budget must be >= 0, got {accuracy_budget}")
    mult = resolve_multiplier(multiplier)
    baseline = evaluate_accuracy(model, x, y, batch_size)
    ranking = layer_resiliency(model, x, y, mult, batch_size)
    layers = dict(named_quant_layers(model))
    assignment: dict[str, str] = {}
    for entry in ranking:
        layer = layers[entry.layer_name]
        saved = (layer.multiplier, layer.error_model)
        layer.set_multiplier(mult, None)
        acc = evaluate_accuracy(model, x, y, batch_size)
        if baseline - acc <= accuracy_budget:
            assignment[entry.layer_name] = mult.name
        else:
            layer.set_multiplier(*saved)
    return assignment


def partial_approximation_energy(
    model: Module,
    input_shape: tuple[int, int, int],
    assignment: dict[str, str],
) -> float:
    """Fractional multiplier-energy savings of a heterogeneous assignment.

    MACs of layers in ``assignment`` are costed at their multiplier's
    savings; remaining layers run exact.
    """
    from repro.sim.macs import count_macs

    layers = [name for name, _ in named_quant_layers(model)]
    report = count_macs(model, input_shape)
    if len(report.layers) != len(layers):
        raise ConfigError(
            "layer count mismatch between MAC probe and quantized layers; "
            "is the model fully quantized?"
        )
    total = saved = 0
    for name, layer_macs in zip(layers, report.layers):
        total += layer_macs.macs
        if name in assignment:
            saved += layer_macs.macs * get_multiplier(assignment[name]).energy_savings
    return saved / total if total else 0.0
