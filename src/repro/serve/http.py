"""Stdlib HTTP front end for a :class:`repro.serve.server.Server`.

A thin translation layer — all queueing, batching, backpressure and
swap semantics live in the server. Endpoints:

- ``GET /healthz`` — liveness + stats snapshot;
- ``GET /metrics`` — Prometheus exposition
  (:func:`repro.obs.metrics.to_prometheus`), so the serve counters and
  latency histograms scrape with zero extra code;
- ``POST /v1/predict`` — body ``{"inputs": <nested list>}``; treated as
  one sample when ``"single": true``, else as a ``(batch, ...)`` array
  (the rank is never guessed — the client says which). Replies
  ``{"logits": ..., "weights_version": ..., "replica": ...,
  "latency_s": ...}``. Backpressure maps to ``429`` with a
  ``Retry-After`` header; a stopped server maps to ``503``.
- ``POST /v1/swap`` — body ``{"checkpoint": "<path.npz>"}``; loads the
  archive server-side and publishes it as the next weight version.

Built on :class:`http.server.ThreadingHTTPServer`: each connection gets
a thread that blocks on its future while replica workers do the math —
adequate for benchmarks and demos, deliberately not a production
network stack.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro.errors import BackpressureError, ReproError, ServeError
from repro.obs import metrics as met
from repro.serve.server import Server


class HttpFrontend:
    """Serve a :class:`Server` over HTTP on ``host:port`` (0 = ephemeral)."""

    def __init__(self, server: Server, host: str = "127.0.0.1", port: int = 0):
        self._server = server
        handler = _make_handler(server)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` — read the port after an ephemeral bind."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HttpFrontend":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _make_handler(server: Server) -> type:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # silence per-request stderr
            pass

        def _reply(self, status: int, payload: dict, headers: dict | None = None):
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._reply(
                    200 if server.running else 503,
                    {"ok": server.running, "stats": server.stats()},
                )
            elif self.path == "/metrics":
                body = met.to_prometheus(met.get_metrics()).encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": f"bad JSON body: {exc}"})
                return
            if self.path == "/v1/predict":
                self._predict(payload)
            elif self.path == "/v1/swap":
                self._swap(payload)
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def _predict(self, payload: dict) -> None:
            if "inputs" not in payload:
                self._reply(400, {"error": "body must carry 'inputs'"})
                return
            try:
                x = np.asarray(payload["inputs"], dtype=np.float32)
            except (ValueError, TypeError) as exc:
                self._reply(400, {"error": f"inputs not numeric: {exc}"})
                return
            single = bool(payload.get("single", False))
            try:
                future = server.submit(x) if single else server.submit_batch(x)
                prediction = future.result(timeout=float(payload.get("timeout_s", 60)))
            except BackpressureError as exc:
                self._reply(
                    429,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
                )
                return
            except ServeError as exc:
                self._reply(503, {"error": str(exc)})
                return
            self._reply(
                200,
                {
                    "logits": prediction.logits.tolist(),
                    "weights_version": prediction.weights_version,
                    "replica": prediction.replica,
                    "latency_s": prediction.latency_s,
                },
            )

        def _swap(self, payload: dict) -> None:
            path = payload.get("checkpoint")
            if not path:
                self._reply(400, {"error": "body must carry 'checkpoint' (npz path)"})
                return
            try:
                with np.load(Path(path)) as archive:
                    arrays = {key: archive[key] for key in archive.files}
                version = server.swap_weights(arrays)
            except (ReproError, OSError, ValueError) as exc:
                self._reply(400, {"error": f"swap failed: {exc}"})
                return
            self._reply(200, {"weights_version": version})

    return Handler
