"""In-process client for :class:`repro.serve.server.Server`.

Wraps the raw future API with the polite-load behaviours a caller would
otherwise re-implement: synchronous ``predict`` with bounded retry on
:class:`~repro.errors.BackpressureError` (sleeping the server's
``retry_after_s`` hint between attempts), and ``map`` for closed-loop
batch scoring.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Iterable, Sequence

import numpy as np

from repro.errors import BackpressureError, ServeError
from repro.serve.server import Prediction, Server


class Client:
    """Submission helper bound to one server.

    ``retries`` bounds how many backpressure rejections a blocking call
    absorbs before re-raising; ``timeout_s`` bounds the wait for any one
    result.
    """

    def __init__(self, server: Server, retries: int = 8, timeout_s: float = 60.0):
        self._server = server
        self.retries = int(retries)
        self.timeout_s = float(timeout_s)

    # -- async passthrough -------------------------------------------------
    def submit(self, x: np.ndarray) -> Future:
        """One sample, no retry — backpressure raises immediately."""
        return self._server.submit(x)

    def submit_batch(self, xs: np.ndarray) -> Future:
        return self._server.submit_batch(xs)

    # -- blocking with retry ------------------------------------------------
    def predict(self, x: np.ndarray, timeout_s: float | None = None) -> Prediction:
        """One sample's :class:`Prediction`, retrying through backpressure."""
        return self._submit_with_retry(x, batch=False).result(
            timeout=self.timeout_s if timeout_s is None else timeout_s
        )

    def predict_batch(
        self, xs: np.ndarray, timeout_s: float | None = None
    ) -> Prediction:
        """A batch's :class:`Prediction` (2-D logits), retrying through
        backpressure; the batch is served indivisibly."""
        return self._submit_with_retry(xs, batch=True).result(
            timeout=self.timeout_s if timeout_s is None else timeout_s
        )

    def map(self, samples: Iterable[np.ndarray]) -> list[Prediction]:
        """Score every sample; submission retries through backpressure.

        Closed-loop in submission order: results come back in the same
        order as ``samples`` regardless of how requests were batched.
        """
        futures = [self._submit_with_retry(x, batch=False) for x in samples]
        return [f.result(timeout=self.timeout_s) for f in futures]

    def _submit_with_retry(self, x: np.ndarray, batch: bool) -> Future:
        submit = self._server.submit_batch if batch else self._server.submit
        attempts = 0
        while True:
            try:
                return submit(x)
            except BackpressureError as exc:
                attempts += 1
                if attempts > self.retries:
                    raise
                time.sleep(exc.retry_after_s)
            except ServeError:
                raise


def as_samples(xs: Sequence[np.ndarray] | np.ndarray) -> list[np.ndarray]:
    """Split a stacked ``(N, ...)`` array into per-sample arrays."""
    arr = np.asarray(xs)
    return [arr[i] for i in range(arr.shape[0])]
