"""Load generator and SLO reporting for :mod:`repro.serve`.

Drives a :class:`~repro.serve.server.Server` with a mix of single-sample
and batch requests drawn from any :class:`repro.data.DatasetProtocol`
implementation (the generator never reaches into loader internals), and
reports the numbers ``BENCH_serve.json`` is built from: client-observed
latency quantiles (p50/p95/p99), throughput, whether the p95 SLO held,
batch occupancy from the server's own stats, and — when reference models
are supplied — a bitwise comparison of every response against direct
unbatched evaluation under the weight version it was served with.

Two load models are supported (``mode=``):

- ``"closed"`` (default) — a fixed pool of client threads, each issuing
  its next request as soon as the previous one returns. Throughput is
  self-limiting: a slow server slows the clients down.
- ``"open"`` — requests arrive on a Poisson process at ``offered_rps``,
  independent of how fast the server answers (each arrival gets its own
  thread). This is how real traffic behaves: latency under an offered
  rate the server can't absorb shows up as queueing, not as a politely
  throttled client. The report carries ``offered_rps`` and the
  ``achieved_rps`` the dispatcher actually sustained.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.protocol import DatasetProtocol
from repro.errors import ServeError
from repro.nn.module import Module
from repro.serve.client import Client
from repro.serve.server import Prediction, Server
from repro.utils.rng import new_rng


@dataclass
class LoadReport:
    """What one load run measured (JSON-safe via :meth:`to_dict`)."""

    requests: int
    samples: int
    duration_s: float
    throughput_rps: float
    throughput_sps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    slo_p95_ms: float
    slo_met: bool
    rejected_retries: int
    failed_requests: int
    bitwise_checked: int
    bitwise_mismatches: int
    mode: str = "closed"
    offered_rps: float | None = None
    achieved_rps: float | None = None
    server_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


def dataset_samples(dataset: DatasetProtocol, limit: int | None = None) -> np.ndarray:
    """Held-out samples drawn through the dataset protocol, stacked."""
    rows = []
    for x, _ in dataset.test_batches(64):
        rows.append(np.asarray(x, dtype=np.float32))
        if limit is not None and sum(r.shape[0] for r in rows) >= limit:
            break
    stacked = np.concatenate(rows)
    return stacked[:limit] if limit is not None else stacked


def run_load(
    server: Server,
    dataset: DatasetProtocol,
    *,
    requests: int = 128,
    concurrency: int = 4,
    batch_fraction: float = 0.0,
    batch_size: int = 8,
    slo_p95_ms: float = 250.0,
    timeout_s: float = 60.0,
    reference_models: dict[int, Module] | None = None,
    seed: int = 0,
    mode: str = "closed",
    offered_rps: float | None = None,
) -> LoadReport:
    """Drive ``server`` under load and measure latency/throughput/SLO.

    In the default closed loop, ``concurrency`` client threads issue
    ``requests`` total requests, each starting its next as the previous
    returns. With ``mode="open"``, requests instead arrive on a Poisson
    process at ``offered_rps`` requests/second regardless of server
    speed (``concurrency`` is ignored; every arrival is dispatched on
    its own thread at its scheduled time). Each request is a batch of
    ``batch_size`` samples with probability ``batch_fraction``, else a
    single sample. Samples come from the dataset's held-out split via
    the protocol. Latency is measured client-side around the blocking
    call, so it includes queueing, batching wait and backpressure
    retries — what a caller experiences.

    ``reference_models`` maps weight version → a model holding exactly
    those weights; every successful response is then re-evaluated alone
    on the matching reference and compared bitwise
    (``np.array_equal``). Responses whose version has no reference are
    skipped, not failed.
    """
    if requests < 1:
        raise ServeError(f"requests must be >= 1, got {requests}")
    if mode not in ("closed", "open"):
        raise ServeError(f"load mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (offered_rps is None or offered_rps <= 0):
        raise ServeError(f"open-loop load needs offered_rps > 0, got {offered_rps}")
    pool = dataset_samples(dataset)
    rng = new_rng(seed)
    # Pre-draw the request plan so worker threads only pop.
    plan: list[np.ndarray] = []
    for _ in range(requests):
        if batch_fraction > 0 and rng.random() < batch_fraction:
            idx = rng.integers(0, pool.shape[0], size=batch_size)
            plan.append(pool[idx])
        else:
            plan.append(pool[int(rng.integers(0, pool.shape[0]))])

    client = Client(server, retries=64, timeout_s=timeout_s)
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes: list[tuple[np.ndarray, Prediction] | None] = [None] * requests
    failures = [0]
    retries_before = server.stats()["rejected"]
    cursor = [0]

    def issue(index: int) -> None:
        x = plan[index]
        start = time.perf_counter()
        try:
            if x.ndim == pool.ndim:  # batch request
                prediction = client.predict_batch(x, timeout_s=timeout_s)
            else:
                prediction = client.predict(x, timeout_s=timeout_s)
        except Exception:
            with lock:
                failures[0] += 1
            return
        elapsed = time.perf_counter() - start
        with lock:
            latencies.append(elapsed)
            outcomes[index] = (x, prediction)

    def worker() -> None:
        while True:
            with lock:
                if cursor[0] >= requests:
                    return
                index = cursor[0]
                cursor[0] += 1
            issue(index)

    achieved_rps: float | None = None
    if mode == "open":
        # Poisson arrivals: i.i.d. exponential inter-arrival gaps at the
        # offered rate, dispatched at their absolute schedule times so a
        # slow server never throttles the arrival process.
        arrivals = np.cumsum(rng.exponential(1.0 / offered_rps, size=requests))
        threads = [
            threading.Thread(target=issue, args=(i,), name=f"repro-loadgen-{i}", daemon=True)
            for i in range(requests)
        ]
        wall_start = time.perf_counter()
        for index, thread in enumerate(threads):
            delay = wall_start + arrivals[index] - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            thread.start()
        dispatch_elapsed = time.perf_counter() - wall_start
        achieved_rps = requests / dispatch_elapsed if dispatch_elapsed > 0 else 0.0
    else:
        threads = [
            threading.Thread(target=worker, name=f"repro-loadgen-{i}", daemon=True)
            for i in range(max(1, concurrency))
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - wall_start

    checked = mismatches = 0
    if reference_models:
        for outcome in outcomes:
            if outcome is None:
                continue
            x, prediction = outcome
            reference = reference_models.get(prediction.weights_version)
            if reference is None:
                continue
            batch = x if x.ndim == pool.ndim else x[None]
            with no_grad():
                expected = np.concatenate(
                    [reference(Tensor(batch[i : i + 1])).data for i in range(len(batch))]
                )
            got = prediction.logits if prediction.logits.ndim == 2 else prediction.logits[None]
            checked += len(batch)
            if not np.array_equal(expected, got):
                mismatches += 1

    done = [o for o in outcomes if o is not None]
    samples = sum(
        (o[0].shape[0] if o[0].ndim == pool.ndim else 1) for o in done
    )
    lat_ms = np.asarray(sorted(latencies)) * 1e3 if latencies else np.array([0.0])
    p50, p95, p99 = (float(np.percentile(lat_ms, q)) for q in (50, 95, 99))
    stats = server.stats()
    return LoadReport(
        requests=len(done),
        samples=samples,
        duration_s=duration,
        throughput_rps=len(done) / duration if duration > 0 else 0.0,
        throughput_sps=samples / duration if duration > 0 else 0.0,
        latency_p50_ms=p50,
        latency_p95_ms=p95,
        latency_p99_ms=p99,
        slo_p95_ms=slo_p95_ms,
        slo_met=p95 <= slo_p95_ms,
        rejected_retries=stats["rejected"] - retries_before,
        failed_requests=failures[0],
        bitwise_checked=checked,
        bitwise_mismatches=mismatches,
        mode=mode,
        offered_rps=offered_rps,
        achieved_rps=achieved_rps,
        server_stats=stats,
    )
