"""The inference server: replica workers over the plan-cached eval path.

Architecture (``docs/SERVING.md``): a :class:`Server` owns one bounded
:class:`~repro.serve.batching.RequestQueue` and ``replicas`` worker
threads on the :func:`repro.parallel.persistent_executor`. Each replica
holds its own ``deepcopy`` of the model — plan caches deepcopy *empty*
by design, so every replica builds warm, private
:class:`~repro.approx.plan.PlanCache` entries on first forward and the
replicas never contend on cache locks. Workers pull micro-batches,
concatenate the samples into one plan-cached GEMM batch, and scatter the
logits back to each request's future.

Weight swap is zero-downtime and torn-batch-free: ``swap_weights``
publishes ``(version, arrays)`` atomically; each replica applies the
newest published version *between* batches, so any one micro-batch runs
entirely under a single weight version, and in-flight batches drain
under the version they started with. Loading new arrays rebinds
``Parameter.data``, which bumps ``Parameter.version`` and invalidates
stale plans by construction — no cache flush call exists or is needed.

Results are bitwise identical to unbatched evaluation: the quantized
integer path is batch-invariant (every operation is exact integer
arithmetic carried in floats), so the response for a sample does not
depend on which requests it was coalesced with.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro import config as cfg
from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.errors import ServeError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.parallel import cpu_parallelism, persistent_executor
from repro.serve.batching import Request, RequestQueue
from repro.utils.serialization import load_model_arrays, model_state_arrays


@dataclass(frozen=True)
class ServeConfig:
    """Serving knobs; ``None`` fields resolve through :mod:`repro.config`.

    Every field follows the standard precedence chain (per-call value
    here > scope > ``configure()`` > CLI > env > default):

    - ``deadline_ms`` (``REPRO_SERVE_DEADLINE_MS``): micro-batching
      latency budget measured from the oldest queued request;
    - ``max_batch`` (``REPRO_SERVE_MAX_BATCH``): samples per micro-batch;
    - ``queue_depth`` (``REPRO_SERVE_QUEUE_DEPTH``): queued-sample bound
      past which admission raises ``BackpressureError``;
    - ``replicas`` (``REPRO_SERVE_REPLICAS``): model copies / worker
      threads; the default ``None`` auto-sizes to
      :func:`repro.parallel.cpu_parallelism`.
    """

    deadline_ms: float | None = None
    max_batch: int | None = None
    queue_depth: int | None = None
    replicas: int | None = None

    def resolved(self) -> "ServeConfig":
        """This config with every ``None`` resolved to a concrete value."""
        deadline_ms = float(cfg.resolve("serve_deadline_ms", self.deadline_ms))
        max_batch = int(cfg.resolve("serve_max_batch", self.max_batch))
        queue_depth = int(cfg.resolve("serve_queue_depth", self.queue_depth))
        replicas = cfg.resolve("serve_replicas", self.replicas)
        replicas = max(1, cpu_parallelism()) if replicas is None else int(replicas)
        if deadline_ms < 0:
            raise ServeError(f"deadline_ms must be >= 0, got {deadline_ms}")
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if queue_depth < max_batch:
            raise ServeError(
                f"queue_depth ({queue_depth}) must be >= max_batch ({max_batch}); "
                "a full micro-batch must fit in the queue"
            )
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {replicas}")
        return ServeConfig(deadline_ms, max_batch, queue_depth, replicas)


@dataclass(frozen=True)
class Prediction:
    """One served response.

    ``logits`` has shape ``(num_classes,)`` for single-sample submits and
    ``(batch, num_classes)`` for batch submits. ``weights_version`` is the
    server weight generation the response was computed under (0 = the
    weights the server was constructed with); ``latency_s`` is
    queue-to-response, measured server-side.
    """

    logits: np.ndarray
    weights_version: int
    replica: int
    latency_s: float


class _Replica:
    """One model copy bound to one worker thread."""

    __slots__ = ("index", "model", "version")

    def __init__(self, index: int, model: Module):
        self.index = index
        self.model = model
        self.version = 0


class Server:
    """Micro-batching inference server; see the module docstring.

    Lifecycle: ``start()`` → ``submit()/submit_batch()/swap_weights()`` →
    ``stop()``. Also usable as a context manager (enters started, exits
    drained and stopped).
    """

    def __init__(self, model: Module, config: ServeConfig | None = None):
        if not isinstance(model, Module):
            raise ServeError(f"Server needs a Module, got {type(model).__name__}")
        self.config = (config or ServeConfig()).resolved()
        self._queue = RequestQueue(self.config.queue_depth, self._retry_after_hint)
        self._replicas = [
            _Replica(i, copy.deepcopy(model).eval())
            for i in range(self.config.replicas)
        ]
        self._pool = None
        self._worker_futures: list[Future] = []
        self._state_lock = threading.Lock()
        # Published weights: (version, arrays). Version 0 = construction
        # weights, already present in every replica.
        self._published: tuple[int, dict | None] = (0, None)
        self._faults: dict[int, BaseException] = {}
        # Stats (under _state_lock).
        self._served_requests = 0
        self._served_samples = 0
        self._batches = 0
        self._rejected = 0
        self._fault_count = 0
        self._swap_count = 0
        self._ewma_rate = 0.0  # samples/s over recent batches

    # -- lifecycle ---------------------------------------------------------
    def start(self, warm: np.ndarray | None = None) -> "Server":
        """Launch the replica workers (idempotent).

        ``warm`` — an optional sample batch run once through every replica
        before serving starts, so plan caches are built ahead of the first
        request instead of on it.
        """
        if self._pool is not None:
            return self
        if self._queue.closed:
            raise ServeError("server was stopped; build a new Server to serve again")
        if warm is not None:
            batch = np.asarray(warm, dtype=np.float32)
            with no_grad():
                for replica in self._replicas:
                    replica.model(Tensor(batch))
        self._pool = persistent_executor(
            self.config.replicas, thread_name_prefix="repro-serve"
        )
        self._worker_futures = [
            self._pool.submit(self._replica_loop, replica)
            for replica in self._replicas
        ]
        obs_events.get_event_log().emit(
            "serve_start",
            replicas=self.config.replicas,
            max_batch=self.config.max_batch,
            deadline_ms=self.config.deadline_ms,
            queue_depth=self.config.queue_depth,
        )
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop serving. ``drain=True`` serves queued requests first;
        ``drain=False`` fails them with :class:`~repro.errors.ServeError`."""
        self._queue.close(drain=drain)
        if self._pool is not None:
            for future in self._worker_futures:
                future.result(timeout=timeout)  # surfaces worker crashes
            self._pool.shutdown(wait=True)
            self._pool = None
        obs_events.get_event_log().emit("serve_stop", drained=drain, **self.stats())

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._pool is not None and not self._queue.closed

    # -- request submission ------------------------------------------------
    def submit(self, x: np.ndarray) -> Future:
        """Queue ONE sample; the future resolves to a :class:`Prediction`
        whose ``logits`` is a single row.

        Raises :class:`~repro.errors.BackpressureError` (with
        ``retry_after_s``) when the queue is at depth — never blocks or
        hangs on a full queue.
        """
        x = np.asarray(x, dtype=np.float32)
        return self._enqueue(x[None], single=True)

    def submit_batch(self, xs: np.ndarray) -> Future:
        """Queue a batch of samples as one indivisible request.

        The whole batch is served by one replica under one weight version;
        a batch larger than ``max_batch`` runs as its own oversize
        micro-batch. Resolves to a :class:`Prediction` with 2-D logits.
        """
        xs = np.asarray(xs, dtype=np.float32)
        if xs.ndim < 2:
            raise ServeError(
                f"submit_batch needs a (batch, ...) array, got shape {xs.shape}; "
                "use submit() for a single sample"
            )
        if xs.shape[0] == 0:
            raise ServeError("submit_batch got an empty batch")
        return self._enqueue(xs, single=False)

    def _enqueue(self, x: np.ndarray, single: bool) -> Future:
        enqueued_ns = tr.get_trace_recorder().now_ns() if tr.enabled else 0
        request = Request(x, single=single, enqueued_ns=enqueued_ns)
        try:
            self._queue.put(request)
        except ServeError:
            with self._state_lock:
                self._rejected += 1
            met.inc("serve.rejected")
            raise
        met.set_gauge("serve.queue_depth", self._queue.depth_samples())
        return request.future

    # -- weight swap ---------------------------------------------------------
    def swap_weights(self, source: Module | dict) -> int:
        """Publish new weights with zero downtime; returns the new version.

        ``source`` is a model of the same architecture (its state is
        snapshotted now) or an arrays dict from
        :func:`repro.utils.serialization.model_state_arrays` /  a loaded
        ``.npz`` checkpoint. Serving never pauses: replicas pick the new
        version up between micro-batches, in-flight batches finish under
        the old weights, and every response reports the version it was
        computed under. Quantization step state travels with the arrays,
        and the ``Parameter.version`` bump makes each replica rebuild its
        GEMM plans on first use of the new weights.
        """
        if isinstance(source, Module):
            arrays = model_state_arrays(source)
        else:
            arrays = dict(source)
        with self._state_lock:
            version = self._published[0] + 1
            self._published = (version, arrays)
            self._swap_count += 1
        met.inc("serve.weight_swaps_published")
        obs_events.get_event_log().emit("serve_weight_swap", version=version)
        return version

    @property
    def weights_version(self) -> int:
        """The most recently published weight version."""
        return self._published[0]

    # -- chaos hook ----------------------------------------------------------
    def inject_replica_fault(self, replica: int = 0, exc: BaseException | None = None) -> None:
        """Arm a one-shot fault on a replica (test/chaos hook).

        The replica's *next* micro-batch fails with ``exc`` (default
        ``ServeError``): its requests get the exception on their futures,
        the failure is counted and logged, and the replica keeps serving —
        a fault is isolated to the batch that hit it.
        """
        if not 0 <= replica < len(self._replicas):
            raise ServeError(
                f"no replica {replica}; server has {len(self._replicas)}"
            )
        with self._state_lock:
            self._faults[replica] = exc or ServeError(
                f"injected fault on replica {replica}"
            )

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """Point-in-time serving statistics (plain scalars, JSON-safe)."""
        with self._state_lock:
            batches = self._batches
            samples = self._served_samples
            stats = {
                "replicas": self.config.replicas,
                "max_batch": self.config.max_batch,
                "deadline_ms": self.config.deadline_ms,
                "queue_depth_limit": self.config.queue_depth,
                "queue_depth": self._queue.depth_samples(),
                "served_requests": self._served_requests,
                "served_samples": samples,
                "batches": batches,
                "mean_batch_size": (samples / batches) if batches else 0.0,
                "batch_occupancy": (
                    samples / (batches * self.config.max_batch) if batches else 0.0
                ),
                "rejected": self._rejected,
                "replica_faults": self._fault_count,
                "weight_swaps": self._swap_count,
                "weights_version": self._published[0],
                "replica_versions": [r.version for r in self._replicas],
                "throughput_estimate_sps": self._ewma_rate,
            }
        return stats

    def _retry_after_hint(self) -> float:
        """Backpressure hint: time to drain the queue at the recent rate,
        floored at one batching deadline."""
        floor = max(self.config.deadline_ms / 1000.0, 0.001)
        with self._state_lock:
            rate = self._ewma_rate
        if rate <= 0:
            return max(floor, 0.05)
        return min(max(self._queue.depth_samples() / rate, floor), 5.0)

    # -- replica worker --------------------------------------------------------
    def _replica_loop(self, replica: _Replica) -> None:
        deadline_s = self.config.deadline_ms / 1000.0
        while True:
            batch = self._queue.next_batch(self.config.max_batch, deadline_s)
            if batch is None:
                return
            self._apply_swap(replica)
            self._run_batch(replica, batch)

    def _apply_swap(self, replica: _Replica) -> None:
        version, arrays = self._published
        if version == replica.version or arrays is None:
            return
        with tr.span("serve.weight_swap", replica=replica.index, version=version):
            load_model_arrays(
                replica.model, arrays, context=f"weight swap v{version}"
            )
        replica.version = version
        met.inc("serve.weight_swaps_applied")

    def _run_batch(self, replica: _Replica, batch: list[Request]) -> None:
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not live:
            return
        total = sum(r.samples for r in live)
        start = time.perf_counter()
        fault = self._faults.pop(replica.index, None)
        batch_span_id = None
        try:
            with tr.span(
                "serve.batch",
                replica=replica.index,
                samples=total,
                requests=len(live),
                weights_version=replica.version,
            ):
                batch_span_id = tr.current_span_id()
                if fault is not None:
                    raise fault
                xs = live[0].x if len(live) == 1 else np.concatenate([r.x for r in live])
                with no_grad():
                    logits = replica.model(Tensor(xs)).data
        except BaseException as exc:
            with self._state_lock:
                self._fault_count += 1
            met.inc("serve.replica_faults")
            obs_events.get_event_log().emit(
                "serve_replica_fault",
                level=obs_events.ERROR,
                replica=replica.index,
                requests=len(live),
                error=f"{type(exc).__name__}: {exc}",
            )
            for request in live:
                request.future.set_exception(exc)
            return
        done = time.perf_counter()
        done_ns = tr.get_trace_recorder().now_ns() if tr.enabled else 0
        offset = 0
        for request in live:
            rows = logits[offset : offset + request.samples]
            offset += request.samples
            latency = done - request.enqueued_perf
            request.future.set_result(
                Prediction(
                    logits=rows[0] if request.single else rows,
                    weights_version=replica.version,
                    replica=replica.index,
                    latency_s=latency,
                )
            )
            met.observe("serve.request_latency_s", latency)
            if request.enqueued_ns:
                tr.record_span(
                    "serve.request",
                    request.enqueued_ns,
                    done_ns,
                    parent_id=batch_span_id,
                    samples=request.samples,
                    replica=replica.index,
                )
        met.observe("serve.batch_size", total)
        met.observe("serve.batch_occupancy", total / self.config.max_batch)
        met.set_gauge("serve.queue_depth", self._queue.depth_samples())
        duration = done - start
        with self._state_lock:
            self._served_requests += len(live)
            self._served_samples += total
            self._batches += 1
            if duration > 0:
                rate = total / duration
                self._ewma_rate = (
                    rate if self._ewma_rate == 0.0
                    else 0.7 * self._ewma_rate + 0.3 * rate
                )
