"""Batched inference serving on the plan-cached evaluation path.

``repro.serve`` turns the weight-stationary fast path
(:mod:`repro.approx.plan`) into an inference service (``docs/SERVING.md``):

- :class:`~repro.serve.server.Server` — model-replica workers on the
  :mod:`repro.parallel` thread executor, each holding a warm per-replica
  plan cache, fed by a request queue with dynamic micro-batching
  (single-sample requests coalesce into one plan-cached GEMM batch under
  a configurable latency deadline);
- admission control — bounded-queue backpressure raising
  :class:`~repro.errors.BackpressureError` with a ``retry_after_s`` hint
  past the depth threshold;
- zero-downtime weight swap — :meth:`~repro.serve.server.Server.swap_weights`
  publishes a new weight version; in-flight batches drain under the old
  version and plans rebuild by construction via ``Parameter.version``;
- :class:`~repro.serve.client.Client` — sync/future submission with
  backpressure-aware retry;
- :class:`~repro.serve.http.HttpFrontend` — optional stdlib HTTP front
  end (``/v1/predict``, ``/healthz``, Prometheus ``/metrics``);
- :func:`~repro.serve.loadgen.run_load` — the closed-loop load generator
  behind ``BENCH_serve.json`` (throughput at a p95 latency SLO, batch
  occupancy, bitwise response verification).

Every response is bitwise identical to evaluating the same sample alone
under the weight version it was served with: the quantized integer path
is batch-invariant (exact integer arithmetic), so coalescing requests
changes speed only, never results.
"""

from repro.errors import BackpressureError, ServeError
from repro.serve.batching import Request, RequestQueue
from repro.serve.client import Client
from repro.serve.http import HttpFrontend
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import Prediction, ServeConfig, Server

__all__ = [
    "BackpressureError",
    "Client",
    "HttpFrontend",
    "LoadReport",
    "Prediction",
    "Request",
    "RequestQueue",
    "ServeConfig",
    "ServeError",
    "Server",
    "run_load",
]
