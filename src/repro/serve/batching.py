"""Request queue and dynamic micro-batching for :mod:`repro.serve`.

The queue is the serving system's admission-control point and its batch
former. Requests are indivisible units of one or more samples; replica
workers pull *micro-batches* — runs of queued requests coalesced up to
``max_batch`` samples — waiting at most the configured deadline measured
from the oldest queued request's arrival. The deadline math
(``docs/SERVING.md``): a request admitted at time ``t`` starts executing
no later than ``t + deadline`` as long as a replica is free, because the
batch containing it is released the moment its oldest member's deadline
expires, full or not.

Admission control is a bound on queued *samples*: a submit that would
push the queue past ``max_samples`` raises
:class:`~repro.errors.BackpressureError` immediately (reject-with-
retry-after, never a hang), with a retry hint computed by the server
from its recent throughput.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable

import numpy as np

from repro.errors import BackpressureError, ServeError


class Request:
    """One queued inference request: samples plus the future to resolve.

    ``single`` marks requests submitted as one bare sample — their future
    resolves to a single logits row rather than a batch.
    """

    __slots__ = ("x", "future", "samples", "single", "enqueued_perf", "enqueued_ns")

    def __init__(self, x: np.ndarray, single: bool, enqueued_ns: int = 0):
        self.x = x
        self.future: Future = Future()
        self.samples = int(x.shape[0])
        self.single = single
        self.enqueued_perf = time.perf_counter()
        self.enqueued_ns = enqueued_ns  # trace-anchored; 0 when tracing is off


class RequestQueue:
    """Bounded FIFO of :class:`Request` with micro-batch extraction.

    ``retry_after_hint`` supplies the backpressure hint (seconds) at
    rejection time — the server wires in a throughput-based estimate.
    """

    def __init__(self, max_samples: int, retry_after_hint: Callable[[], float] | None = None):
        if max_samples < 1:
            raise ServeError(f"queue depth must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._retry_after_hint = retry_after_hint
        self._cond = threading.Condition()
        self._items: deque[Request] = deque()
        self._samples = 0
        self._closed = False

    # -- producer side ----------------------------------------------------
    def put(self, request: Request) -> None:
        """Admit ``request`` or reject it; never blocks.

        Raises :class:`~repro.errors.ServeError` once the queue is closed
        and :class:`~repro.errors.BackpressureError` when admission would
        exceed the sample bound. A single oversize request (more samples
        than the bound) is rejected outright — it could never be admitted.
        """
        with self._cond:
            if self._closed:
                raise ServeError("serving queue is closed; the server is stopping")
            if self._samples + request.samples > self.max_samples:
                hint = self._retry_after_hint() if self._retry_after_hint else 0.05
                raise BackpressureError(
                    f"serving queue at depth {self._samples}/{self.max_samples} "
                    f"samples cannot admit {request.samples} more; retry in "
                    f"~{hint:.3f}s",
                    retry_after_s=hint,
                )
            self._items.append(request)
            self._samples += request.samples
            self._cond.notify()

    # -- consumer side ----------------------------------------------------
    def next_batch(self, max_batch: int, deadline_s: float) -> list[Request] | None:
        """The next micro-batch, or ``None`` once closed and drained.

        Blocks until at least one request is queued, then coalesces whole
        requests while the batch stays within ``max_batch`` samples and
        the oldest member's deadline has not expired. A first request
        larger than ``max_batch`` ships alone (requests are indivisible).
        Closing the queue releases partial batches immediately.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait()
            first = self._items.popleft()
            batch = [first]
            total = first.samples
            release_at = first.enqueued_perf + deadline_s
            while total < max_batch:
                if self._items:
                    if total + self._items[0].samples > max_batch:
                        break
                    request = self._items.popleft()
                    batch.append(request)
                    total += request.samples
                    continue
                if self._closed:
                    break
                remaining = release_at - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            self._samples -= total
            self._cond.notify()
            return batch

    # -- lifecycle / introspection ----------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop admission. ``drain=False`` also fails every queued future."""
        with self._cond:
            self._closed = True
            if not drain:
                while self._items:
                    request = self._items.popleft()
                    self._samples -= request.samples
                    if request.future.set_running_or_notify_cancel():
                        request.future.set_exception(
                            ServeError("server stopped before the request ran")
                        )
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def depth_samples(self) -> int:
        """Samples currently queued (the admission-control quantity)."""
        with self._cond:
            return self._samples

    def depth_requests(self) -> int:
        with self._cond:
            return len(self._items)
