"""Error metrics for approximate multipliers (Eq. 14 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.approx.multiplier import Multiplier


def mean_relative_error(multiplier: Multiplier) -> float:
    """Exhaustive Mean Relative Error over the unsigned domain (Eq. 14).

    ``MRE = mean_{j,k} |g(j,k) - g̃(j,k)| / max(g(j,k), 1)`` over all
    ``2^Nx × 2^Nw`` operand pairs.
    """
    a = np.arange(2**multiplier.x_bits, dtype=np.int64)[:, None]
    b = np.arange(2**multiplier.w_bits, dtype=np.int64)[None, :]
    exact = a * b
    err = np.abs(exact - multiplier.lut.astype(np.int64))
    return float(np.mean(err / np.maximum(exact, 1)))


def mean_error(multiplier: Multiplier) -> float:
    """Signed mean error (bias) of the multiplier over the unsigned domain."""
    return float(multiplier.error_table().mean())


def max_absolute_error(multiplier: Multiplier) -> int:
    """Worst-case absolute error over the unsigned domain."""
    return int(np.abs(multiplier.error_table()).max())


def error_bias_ratio(multiplier: Multiplier) -> float:
    """|mean error| / mean |error| — 1.0 for fully one-sided (biased) errors,
    ~0 for symmetric (unbiased) errors.

    Truncated multipliers score near 1 (their error is always ≤ 0);
    EvoApprox-style multipliers score near 0. The gradient-estimation stage
    uses the same distinction when deciding whether ``∂f/∂y`` is zero.
    """
    table = multiplier.error_table().astype(np.float64)
    denom = np.abs(table).mean()
    if denom == 0:
        return 0.0
    return float(abs(table.mean()) / denom)
