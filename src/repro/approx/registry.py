"""Registry of the multipliers evaluated in the paper.

Names:
- ``exact`` — reference multiplier.
- ``truncated1`` .. ``truncated5`` — truncated array multipliers [21].
- ``evoapprox470`` etc. — synthetic EvoApprox8b stand-ins (see
  :mod:`repro.approx.evoapprox`).

``paper_mre`` records the MRE the paper reports for each design so benches
can print paper-vs-measured side by side.
"""

from __future__ import annotations

from functools import lru_cache

from repro.approx.evoapprox import EVOAPPROX_SPECS, EvoApproxMultiplier
from repro.approx.multiplier import ExactMultiplier, Multiplier
from repro.approx.truncated import TruncatedMultiplier
from repro.errors import MultiplierError

# MRE values from Table V (fallback Table III/VI) of the paper, fractional.
PAPER_MRE: dict[str, float] = {
    "truncated1": 0.005,
    "truncated2": 0.021,
    "truncated3": 0.055,
    "truncated4": 0.110,
    "truncated5": 0.198,
    "evoapprox470": 0.021,
    "evoapprox29": 0.079,
    "evoapprox111": 0.116,
    "evoapprox104": 0.192,
    "evoapprox469": 0.205,
    "evoapprox228": 0.189,
    "evoapprox145": 0.205,
    "evoapprox249": 0.488,
}

# The multiplier sets each paper table evaluates.
TABLE3_MULTIPLIERS = [
    "truncated3",
    "truncated4",
    "truncated5",
    "evoapprox470",
    "evoapprox29",
    "evoapprox111",
    "evoapprox104",
    "evoapprox469",
    "evoapprox228",
    "evoapprox145",
    "evoapprox249",
]
TABLE5_MULTIPLIERS = [
    "truncated1",
    "truncated2",
    "truncated3",
    "truncated4",
    "truncated5",
    "evoapprox470",
    "evoapprox29",
    "evoapprox228",
    "evoapprox249",
]
TABLE6_MULTIPLIERS = [
    "truncated1",
    "truncated2",
    "truncated3",
    "truncated4",
    "truncated5",
    "evoapprox29",
    "evoapprox111",
    "evoapprox104",
    "evoapprox469",
    "evoapprox228",
    "evoapprox145",
]
TABLE7_MULTIPLIERS = [
    "truncated1",
    "truncated2",
    "truncated3",
    "truncated4",
    "truncated5",
    "evoapprox470",
    "evoapprox228",
]


def get_multiplier(name: str) -> Multiplier:
    """Instantiate (and cache) a multiplier by registry name."""
    return _get_multiplier_cached(name.lower())


@lru_cache(maxsize=None)
def _get_multiplier_cached(key: str) -> Multiplier:
    if key == "exact":
        return ExactMultiplier()
    if key.startswith("truncated"):
        suffix = key.removeprefix("truncated")
        corrected = suffix.endswith("bc")
        if corrected:
            suffix = suffix.removesuffix("bc")
        try:
            lsbs = int(suffix)
        except ValueError:
            raise MultiplierError(f"bad truncated multiplier name {key!r}") from None
        if corrected:
            from repro.approx.truncated import BiasCorrectedTruncatedMultiplier

            return BiasCorrectedTruncatedMultiplier(lsbs)
        return TruncatedMultiplier(lsbs)
    if key == "mitchell":
        from repro.approx.logarithmic import MitchellMultiplier

        return MitchellMultiplier()
    if key.startswith("drum"):
        from repro.approx.logarithmic import DrumMultiplier

        try:
            k = int(key.removeprefix("drum"))
        except ValueError:
            raise MultiplierError(f"bad DRUM multiplier name {key!r}") from None
        return DrumMultiplier(k)
    if key.startswith("evoapprox"):
        try:
            ident = int(key.removeprefix("evoapprox"))
        except ValueError:
            raise MultiplierError(f"bad EvoApprox multiplier name {key!r}") from None
        return EvoApproxMultiplier(ident)
    raise MultiplierError(f"unknown multiplier {key!r}")


def available_multipliers() -> list[str]:
    """All multiplier names evaluated in the paper, plus ``exact``."""
    truncated = [f"truncated{t}" for t in range(1, 6)]
    evo = [f"evoapprox{i}" for i in sorted(EVOAPPROX_SPECS)]
    return ["exact", *truncated, *evo]


def paper_mre(name: str) -> float | None:
    """Paper-reported MRE for ``name`` (fractional), if recorded."""
    return PAPER_MRE.get(name.lower())
