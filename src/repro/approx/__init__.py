"""Approximate multipliers, approximate GEMM and energy accounting."""

from repro.approx.analysis import (
    MultiplierSummary,
    compare_multipliers,
    error_by_operand_magnitude,
    error_histogram,
    summarize_multiplier,
)
from repro.approx.compose import compose_truncated_accumulation
from repro.approx.logarithmic import DrumMultiplier, MitchellMultiplier

from repro.approx.energy import EnergyReport, network_energy
from repro.approx.evoapprox import (
    EVOAPPROX_SPECS,
    EvoApproxMultiplier,
    EvoApproxSpec,
    synthesize_evoapprox_lut,
)
from repro.approx.gemm import (
    approx_matmul,
    approx_matmul_with_exact,
    exact_int_matmul,
)
from repro.approx.metrics import (
    error_bias_ratio,
    max_absolute_error,
    mean_error,
    mean_relative_error,
)
from repro.approx.multiplier import ExactMultiplier, Multiplier, exact_lut
from repro.approx.plan import (
    GemmPlan,
    PlanCache,
    WorkspacePool,
    build_plan,
    cache_stats,
    disable_plan_cache,
    enable_plan_cache,
    plan_cache_disabled,
    plan_caching_enabled,
    workspace_pool,
)
from repro.approx.registry import (
    PAPER_MRE,
    TABLE3_MULTIPLIERS,
    TABLE5_MULTIPLIERS,
    TABLE6_MULTIPLIERS,
    TABLE7_MULTIPLIERS,
    available_multipliers,
    get_multiplier,
    paper_mre,
)
from repro.approx.truncated import (
    BiasCorrectedTruncatedMultiplier,
    TruncatedMultiplier,
    bias_corrected_truncated_lut,
    truncated_lut,
)

__all__ = [
    "Multiplier",
    "ExactMultiplier",
    "exact_lut",
    "TruncatedMultiplier",
    "truncated_lut",
    "BiasCorrectedTruncatedMultiplier",
    "bias_corrected_truncated_lut",
    "EvoApproxMultiplier",
    "EvoApproxSpec",
    "EVOAPPROX_SPECS",
    "synthesize_evoapprox_lut",
    "approx_matmul",
    "approx_matmul_with_exact",
    "exact_int_matmul",
    "GemmPlan",
    "PlanCache",
    "WorkspacePool",
    "build_plan",
    "cache_stats",
    "enable_plan_cache",
    "disable_plan_cache",
    "plan_cache_disabled",
    "plan_caching_enabled",
    "workspace_pool",
    "mean_relative_error",
    "mean_error",
    "max_absolute_error",
    "error_bias_ratio",
    "EnergyReport",
    "network_energy",
    "get_multiplier",
    "available_multipliers",
    "paper_mre",
    "PAPER_MRE",
    "MultiplierSummary",
    "summarize_multiplier",
    "compare_multipliers",
    "error_histogram",
    "error_by_operand_magnitude",
    "MitchellMultiplier",
    "DrumMultiplier",
    "compose_truncated_accumulation",
    "TABLE3_MULTIPLIERS",
    "TABLE5_MULTIPLIERS",
    "TABLE6_MULTIPLIERS",
    "TABLE7_MULTIPLIERS",
]
