"""Static energy model for approximate CNN inference.

Follows the paper's accounting: each multiplier design has a fixed relative
energy (from [20], [21]); the energy of a network is the number of MAC
operations times the per-MAC cost, and "savings" are reported relative to
computing the same quantized network with exact multipliers. Adder energy
can be included as a constant per-MAC overhead, which dilutes the savings
exactly as it would on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.multiplier import Multiplier


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one network/multiplier pairing."""

    macs: int
    multiplier_name: str
    multiplier_savings: float
    adder_fraction: float
    total_relative_energy: float  # vs. the exact-multiplier network

    @property
    def savings(self) -> float:
        """Fractional energy saved vs. the exact design."""
        return 1.0 - self.total_relative_energy

    @property
    def savings_percent(self) -> float:
        return 100.0 * self.savings


def network_energy(
    macs: int,
    multiplier: Multiplier,
    adder_fraction: float = 0.0,
) -> EnergyReport:
    """Energy report for running ``macs`` MACs on ``multiplier``.

    ``adder_fraction`` is the share of exact per-MAC energy spent in the
    (unchanged) accumulator; 0 reproduces the paper's multiplier-only
    accounting, where network savings equal the multiplier savings.
    """
    if not 0.0 <= adder_fraction < 1.0:
        raise ValueError(f"adder_fraction must be in [0, 1), got {adder_fraction}")
    if macs < 0:
        raise ValueError(f"MAC count must be non-negative, got {macs}")
    mult_fraction = 1.0 - adder_fraction
    relative = adder_fraction + mult_fraction * (1.0 - multiplier.energy_savings)
    return EnergyReport(
        macs=macs,
        multiplier_name=multiplier.name,
        multiplier_savings=multiplier.energy_savings,
        adder_fraction=adder_fraction,
        total_relative_energy=relative,
    )
