"""Composing approximation techniques (the paper's outlook).

The paper's conclusion proposes incorporating "more than one approximation
technique into the CNN computation". This module composes a second
approximation — truncated accumulation — on top of any multiplier:

If the accumulator drops its ``t`` least-significant bits at every addition
of a partial product, each product effectively enters the sum truncated to
a multiple of ``2^t``. That elementwise effect composes into the
multiplier's LUT, so the combined unit is itself a :class:`Multiplier` and
every simulator/GE/KD path works on it unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.errors import MultiplierError


def compose_truncated_accumulation(
    multiplier: Multiplier,
    adder_lsbs: int,
    extra_savings: float = 0.02,
) -> Multiplier:
    """Return ``multiplier`` followed by a ``t``-LSB truncating accumulator.

    Parameters
    ----------
    adder_lsbs:
        Number of least-significant bits the accumulator drops per addition.
    extra_savings:
        Additional fractional energy saved per truncated adder bit-slice
        (accumulators are cheap relative to multipliers; the default is a
        conservative 2% per composition, applied once).
    """
    if adder_lsbs < 0 or adder_lsbs >= multiplier.x_bits + multiplier.w_bits:
        raise MultiplierError(
            f"adder truncation depth {adder_lsbs} outside "
            f"[0, {multiplier.x_bits + multiplier.w_bits - 1}]"
        )
    if adder_lsbs == 0:
        return multiplier
    mask = ~np.int64((1 << adder_lsbs) - 1)
    lut = (multiplier.lut.astype(np.int64) & mask).astype(np.int32)
    savings = min(0.95, multiplier.energy_savings + extra_savings)
    return Multiplier(
        f"{multiplier.name}+acc{adder_lsbs}",
        lut,
        multiplier.x_bits,
        multiplier.w_bits,
        energy_savings=savings,
    )
