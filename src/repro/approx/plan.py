"""Weight-stationary kernel plans for the approximate GEMM engine.

The paper's whole evaluation protocol (per-multiplier accuracy tables,
truncation sweeps, Monte-Carlo ε(y) profiling) runs the approximate GEMM
with **frozen weights**: the weight operand ``B`` of ``ỹ = g̃(A) · B`` is
identical across every batch of an evaluation, sweep cell or simulation.
A :class:`GemmPlan` hoists every weight-dependent quantity out of the
per-batch path:

- the **active weight values** (the ``v`` with ``±v`` present in ``B``),
  found in one bucketization pass instead of ``2·whi`` boolean scans;
- the **mask matrix** ``H`` with ``H[k·V + i, n] = sign(B[k, n])`` when
  ``|B[k, n]|`` equals the i-th active value (the (K, V)-interleaved
  layout lets the per-batch gather be a single ``np.take``);
- the **dtype/precision decision** (float32 BLAS while every partial sum
  stays below 2^23, float64 otherwise) and the operand-magnitude check
  on ``B``;
- a packed ``(2·xhi+1, V)`` LUT slice so the activation gather reads
  ``V`` contiguous products per activation code.

``plan.execute(a)`` then gathers LUT products for a batch directly into a
pooled workspace buffer (no list-append / ``np.concatenate``) and runs
one BLAS call. Every product and partial sum is an exactly-represented
integer, so the result is **bitwise identical** to the uncached
:func:`repro.approx.gemm.approx_matmul` path — reordering exact integer
sums cannot change them.

:class:`PlanCache` is the per-layer memo keyed by a weight-version
counter (see :class:`repro.nn.parameter.Parameter`); a training step
bumps the version, so a stale plan is impossible by construction.
Cache hits/misses/bytes are counted on the profiler registry
(``approx.plan_cache_*``) and surfaced by ``repro report``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.errors import MultiplierError, ShapeError
from repro.obs import metrics as met
from repro.obs import profiling as prof

# float32 partial sums of integer products are exact below 2^24 (the
# mantissa bound); we gate at 2^23 to keep a 2x safety margin. The full
# tier table lives in docs/PERFORMANCE.md.
_EXACT_FLOAT32_BOUND = 2.0**23

_caching_enabled = True
_train_plans_enabled = True


def enable_plan_cache() -> None:
    """Re-enable plan caching (the default state)."""
    global _caching_enabled
    _caching_enabled = True


def disable_plan_cache() -> None:
    """Disable plan caching: every lookup rebuilds, nothing is stored."""
    global _caching_enabled
    _caching_enabled = False


def plan_caching_enabled() -> bool:
    """Whether :class:`PlanCache` lookups may reuse stored plans."""
    return _caching_enabled


class plan_cache_disabled:
    """Context manager running a block with plan caching off.

    The uncached path is the reference implementation; benchmarks and the
    bitwise-equivalence tests use this to compare against it.
    """

    def __enter__(self) -> None:
        self._previous = _caching_enabled
        disable_plan_cache()

    def __exit__(self, *exc) -> None:
        if self._previous:
            enable_plan_cache()


def enable_train_plans() -> None:
    """Re-enable the training-path plan extensions (the default state)."""
    global _train_plans_enabled
    _train_plans_enabled = True


def disable_train_plans() -> None:
    """Disable the training-path plan extensions only.

    The forward plan cache keeps working exactly as it did before the
    training-path extensions existed: every weight-version bump is a full
    miss/rebuild, backward state is recomputed per step and im2col runs
    unplanned. Benchmarks use this to measure what this layer buys.
    """
    global _train_plans_enabled
    _train_plans_enabled = False


def train_plans_enabled() -> bool:
    """Whether the training-path plan extensions are active.

    Covers code-level plan revalidation across optimizer steps, cached
    backward operands (fake-quantized weights, exact-GEMM conversions)
    and the shape-keyed im2col plans. Implied off while plan caching as a
    whole is disabled.
    """
    return _caching_enabled and _train_plans_enabled


class train_plans_disabled:
    """Context manager running a block with only the training-path plan
    extensions off (forward plan caching stays on)."""

    def __enter__(self) -> None:
        self._previous = _train_plans_enabled
        disable_train_plans()

    def __exit__(self, *exc) -> None:
        if self._previous:
            enable_train_plans()


def check_magnitude(codes: np.ndarray, bound: int, name: str, operand: str) -> None:
    """Reject operand codes outside the symmetric ``[-bound, bound]`` range."""
    if codes.size:
        mag = np.abs(codes).max()
        if mag > bound:
            raise MultiplierError(
                f"{name}: magnitude of operand {operand} exceeds the symmetric "
                f"range (max {int(mag)} > {bound}); quantize into the symmetric "
                "range first"
            )


class WorkspacePool:
    """Reusable gather buffers shared across plans and threads.

    ``take`` hands out a 1-D buffer of at least the requested size
    (power-of-two rounded so consecutive batch sizes reuse one
    allocation); ``give`` returns it. Concurrent row-block threads each
    take a distinct buffer, so plan execution never shares scratch
    memory. The pool keeps at most ``max_buffers`` per dtype.
    """

    def __init__(self, max_buffers: int = 8):
        self._lock = threading.Lock()
        self._free: dict[str, list[np.ndarray]] = {}
        self._allocated_bytes = 0
        self.max_buffers = max_buffers

    def take(self, size: int, dtype: np.dtype) -> np.ndarray:
        key = np.dtype(dtype).str
        with self._lock:
            free = self._free.get(key, [])
            best = None
            for index, buf in enumerate(free):
                if buf.size >= size and (best is None or buf.size < free[best].size):
                    best = index
            if best is not None:
                return free.pop(best)
        rounded = 1 << max(int(size) - 1, 0).bit_length()
        buf = np.empty(rounded, dtype=dtype)
        with self._lock:
            self._allocated_bytes += buf.nbytes
        prof.count("approx.plan_workspace_alloc", n=1, nbytes=buf.nbytes)
        return buf

    def give(self, buf: np.ndarray) -> None:
        key = buf.dtype.str
        with self._lock:
            free = self._free.setdefault(key, [])
            if len(free) < self.max_buffers:
                free.append(buf)
            else:
                self._allocated_bytes -= buf.nbytes

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._allocated_bytes = 0

    def stats(self) -> dict:
        with self._lock:
            pooled = sum(len(bufs) for bufs in self._free.values())
            return {"pooled_buffers": pooled, "allocated_bytes": self._allocated_bytes}


# Process-wide pool: evaluation loops, sweeps and Monte-Carlo draws all
# gather into the same recycled buffers.
_workspace = WorkspacePool()


def workspace_pool() -> WorkspacePool:
    """The process-wide gather-buffer pool."""
    return _workspace


class LayerKernelState:
    """Cached weight-derived kernel state for one quantized-layer tag.

    Holds the quantized weight codes, the clipped-STE mask and the
    forward plan (``None`` on the exact path, a list for grouped
    convolutions), plus two lazily populated side tables used by the
    training path:

    - ``bwd`` — fake-quantized weight layouts for the backward GEMMs
      (``∂C/∂X`` multiplies by ``wq·step``, which is batch-invariant);
    - ``exact_ops`` — dtype-converted weight operands for the exact GEMM
      that gradient estimation runs alongside the approximate one.

    Both survive code-level revalidation: when an optimizer step leaves
    the integer codes (and steps) unchanged, ``wq·step`` is unchanged
    too, so the cached arrays remain bitwise-valid.
    """

    __slots__ = ("wq", "w_mask", "plan", "bwd", "exact_ops")

    def __init__(self, wq: np.ndarray, w_mask: np.ndarray, plan: Any = None):
        self.wq = wq
        self.w_mask = w_mask
        self.plan = plan
        self.bwd: dict = {}
        self.exact_ops: dict = {}

    def adopt(self, other: "LayerKernelState") -> "LayerKernelState":
        """Carry another state's plan and lazy side tables (revalidation)."""
        self.plan = other.plan
        self.bwd = other.bwd
        self.exact_ops = other.exact_ops
        return self


class GemmPlan:
    """Precomputed weight-stationary state for one ``A @ B`` operand ``B``.

    Built once per (weights, multiplier) via :func:`build_plan`; executed
    per batch via :meth:`execute`. Instances are safe to share across
    threads for execution (scratch space comes from the pool); the single
    sanctioned mutation is :func:`repair_plan`, which the training loop
    applies between batches to absorb sparse weight-code drift.
    """

    __slots__ = (
        "multiplier_name", "k", "n", "values", "lut_rows", "big_h",
        "dtype", "use_f32", "xhi", "whi", "nbytes",
    )

    def __init__(
        self,
        multiplier_name: str,
        k: int,
        n: int,
        values: np.ndarray,
        lut_rows: np.ndarray,
        big_h: np.ndarray,
        dtype: np.dtype,
        use_f32: bool,
        xhi: int,
        whi: int,
    ):
        self.multiplier_name = multiplier_name
        self.k = k
        self.n = n
        self.values = values
        self.lut_rows = lut_rows
        self.big_h = big_h
        self.dtype = dtype
        self.use_f32 = use_f32
        self.xhi = xhi
        self.whi = whi
        self.nbytes = int(big_h.nbytes + lut_rows.nbytes + values.nbytes)

    @property
    def num_values(self) -> int:
        return len(self.values)

    def execute(self, a: np.ndarray) -> np.ndarray:
        """The approximate GEMM ``a @ B`` for one (row block of) ``a``.

        ``a`` must hold integer codes within the multiplier's symmetric
        x-range (the caller checks, exactly like the uncached path).
        """
        m, k = a.shape
        if k != self.k:
            raise ShapeError(
                f"plan for reduce dim {self.k} applied to operand with {k} columns"
            )
        v = self.num_values
        if v == 0:
            return np.zeros((m, self.n), dtype=np.int64)
        itemsize = self.dtype.itemsize
        buf = _workspace.take(m * k * v, self.dtype)
        idx_buf = _workspace.take(m * k, np.dtype(np.int32))
        try:
            gathered = buf[: m * k * v].reshape(m * k, v)
            with prof.timer("approx.lut_gather", nbytes=a.nbytes):
                # Shift codes into LUT row indices in a pooled int32 buffer:
                # xhi < 2^15, so the shifted index always fits, and skipping
                # the intp conversion avoids a fresh m*k allocation per batch.
                idx = idx_buf[: m * k].reshape(m, k)
                np.add(a, self.xhi, out=idx, casting="unsafe")
                np.take(self.lut_rows, idx.reshape(-1), axis=0, out=gathered)
            prof.count("approx.lut_gathered_values", n=v, nbytes=m * k * v * itemsize)
            with prof.timer(
                "approx.matmul_blas", nbytes=(m * k * v + k * v * self.n) * itemsize
            ):
                y = gathered.reshape(m, k * v) @ self.big_h
        finally:
            _workspace.give(buf)
            _workspace.give(idx_buf)
        return np.rint(y).astype(np.int64)


def build_plan(b: np.ndarray, multiplier: Multiplier) -> GemmPlan:
    """Build the weight-stationary plan for operand ``b`` of ``a @ b``.

    One bucketization pass over ``b`` finds the active weight values and
    scatters the ±1 mask matrix, replacing the ``2·whi`` boolean scans of
    the uncached path.
    """
    b = np.asarray(b)
    if b.ndim != 2:
        raise ShapeError(f"plan operand must be 2-D, got shape {b.shape}")
    if b.dtype.kind not in "iu":
        raise MultiplierError("build_plan operates on integer weight codes")
    xhi = 2 ** (multiplier.x_bits - 1) - 1
    whi = 2 ** (multiplier.w_bits - 1) - 1
    check_magnitude(b, whi, multiplier.name, "b")

    k, n = b.shape
    max_product = float(np.abs(multiplier.lut).max())
    use_f32 = max_product * k < _EXACT_FLOAT32_BOUND
    lut = multiplier.signed_lut_f32() if use_f32 else multiplier.signed_lut_f64()
    dtype = np.dtype(np.float32) if use_f32 else np.dtype(np.float64)

    with prof.timer("approx.plan_build", nbytes=b.nbytes):
        mag = np.abs(b)
        values = np.unique(mag)
        values = values[values > 0]
        v = len(values)
        big_h = np.zeros((k * v, n), dtype=dtype)
        if v:
            # v = 0 contributes g̃(a, 0) = 0 under sign-magnitude evaluation.
            slot = np.full(whi + 1, -1, dtype=np.intp)
            slot[values] = np.arange(v)
            kk, nn = np.nonzero(mag)
            big_h[kk * v + slot[mag[kk, nn]], nn] = np.sign(b[kk, nn])
            lut_rows = np.ascontiguousarray(lut[:, whi + values])
        else:
            lut_rows = np.zeros((lut.shape[0], 0), dtype=dtype)
    plan = GemmPlan(
        multiplier.name, k, n, values, lut_rows, big_h, dtype, use_f32, xhi, whi
    )
    prof.count("approx.plan_built", n=1, nbytes=plan.nbytes)
    return plan


def repair_plan(
    plan: GemmPlan,
    old_b: np.ndarray,
    new_b: np.ndarray,
    changed: tuple[np.ndarray, np.ndarray] | None = None,
) -> bool:
    """Patch ``plan`` in place for a sparse weight-code change.

    An optimizer step typically flips a handful of 4-bit codes out of
    hundreds of thousands; rebuilding the whole plan for that is the
    training-loop regression this module fixes. Each flipped position
    ``(k, n)`` moves at most one ±1 entry of ``big_h`` between value
    rows — an O(changed) scatter — provided every new magnitude already
    has a value slot. Returns False (plan untouched at the affected
    positions' final state is then irrelevant — caller rebuilds) when a
    magnitude appears that the plan has no slot for.

    After a successful repair ``big_h`` is exactly the matrix
    :func:`build_plan` would scatter for ``new_b``, except that value
    slots no longer used anywhere keep their (now all-zero) rows —
    zero-mask rows contribute exactly 0.0 to every partial sum, so
    :meth:`GemmPlan.execute` stays bitwise identical to a fresh build.
    This is the single sanctioned mutation of a plan; callers must not
    run it concurrently with :meth:`GemmPlan.execute` on other threads.

    ``changed`` optionally passes the differing positions ``(kk, nn)``
    in ``b`` coordinates when the caller already diffed the operands,
    skipping a redundant comparison pass.
    """
    if old_b.shape != new_b.shape or (plan.k, plan.n) != old_b.shape:
        return False
    kk, nn = np.nonzero(old_b != new_b) if changed is None else changed
    if kk.size == 0:
        return True
    v = plan.num_values
    if v == 0:
        return False  # plan built on all-zero weights has no slots at all
    with prof.timer("approx.plan_repair", nbytes=int(kk.size)):
        slot = np.full(plan.whi + 1, -1, dtype=np.intp)
        slot[plan.values] = np.arange(v)
        new_vals = np.asarray(new_b[kk, nn])
        new_mag = np.abs(new_vals)
        live = new_mag > 0
        if live.any() and (slot[new_mag[live]] < 0).any():
            return False
        old_vals = np.asarray(old_b[kk, nn])
        old_mag = np.abs(old_vals)
        olive = old_mag > 0
        # Clear the old ±1 entries first, then scatter the new ones — a
        # sign flip at an unchanged magnitude lands on the same slot and
        # must end at the new sign.
        plan.big_h[kk[olive] * v + slot[old_mag[olive]], nn[olive]] = 0
        plan.big_h[kk[live] * v + slot[new_mag[live]], nn[live]] = np.sign(
            new_vals[live]
        ).astype(plan.dtype)
    prof.count("approx.plan_repaired", n=1, nbytes=int(kk.size))
    met.inc("plan_cache.repair")
    return True


class PlanCache:
    """Per-layer memo of weight-stationary GEMM state.

    One entry per ``tag`` (a layer keeps separate tags for e.g. grouped
    convolution paths). An entry is valid only while both its ``key`` —
    the layer's weight-version tuple — and the attached multiplier object
    are unchanged; a weight update bumps the version
    (:class:`repro.nn.parameter.Parameter`), so reusing a stale plan is
    impossible by construction. Cloned or pickled models start with an
    empty cache (plans hold large buffers and rebuild cheaply).
    """

    def __init__(self):
        self._entries: dict[str, tuple[Any, Multiplier | None, Any]] = {}

    def get(
        self,
        tag: str,
        key: Any,
        multiplier: Multiplier | None,
        build: Callable[[], Any],
        revalidate: Callable[[Any], tuple[Any, bool]] | None = None,
    ) -> Any:
        """The cached payload for ``(tag, key, multiplier)``, building on miss.

        ``revalidate`` extends the cache to the training loop: it is
        consulted when the stored key differs from the requested one
        *only in its leading component* (the weight version — tuple keys
        are ``(weight_version, step_version, weight_bits)``). The
        callback receives the stale payload and returns ``(payload,
        reused)``; ``reused=True`` means the expensive parts of the old
        payload were kept (e.g. an optimizer step left the quantized
        codes unchanged, so the plan is still bitwise-valid), counted as
        ``approx.plan_cache_revalidate`` instead of a miss. Either way
        the entry is re-keyed to the current version.
        """
        if not _caching_enabled:
            prof.count("approx.plan_cache_bypass")
            met.inc("plan_cache.bypass")
            return build()
        entry = self._entries.get(tag)
        if entry is not None and entry[0] == key and entry[1] is multiplier:
            prof.count("approx.plan_cache_hit")
            met.inc("plan_cache.hit")
            return entry[2]
        if (
            revalidate is not None
            and _train_plans_enabled
            and entry is not None
            and entry[1] is multiplier
            and isinstance(key, tuple)
            and isinstance(entry[0], tuple)
            and len(key) == len(entry[0])
            and key[1:] == entry[0][1:]
        ):
            payload, reused = revalidate(entry[2])
            self._entries[tag] = (key, multiplier, payload)
            if reused:
                prof.count("approx.plan_cache_revalidate")
                met.inc("plan_cache.revalidate")
            else:
                prof.count("approx.plan_cache_miss")
                met.inc("plan_cache.miss")
            return payload
        prof.count("approx.plan_cache_miss")
        met.inc("plan_cache.miss")
        payload = build()
        self._entries[tag] = (key, multiplier, payload)
        return payload

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # Plans must not travel with clones or into worker processes: the
    # copy rebuilds from its own weights on first use.
    def __deepcopy__(self, memo) -> "PlanCache":
        return PlanCache()

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self._entries = {}


def cache_stats() -> dict:
    """Process-wide plan-cache counter snapshot (hits/misses/bytes).

    Reads the profiler registry, so it is only populated while profiling
    is enabled (``repro ... --profile`` or :class:`repro.obs.profiled`).
    """
    report = prof.profile_report()
    out = {}
    for name in (
        "approx.plan_cache_hit",
        "approx.plan_cache_miss",
        "approx.plan_cache_revalidate",
        "approx.plan_cache_bypass",
        "approx.plan_built",
        "approx.plan_repaired",
        "approx.plan_workspace_alloc",
    ):
        stat = report.counter(name)
        short = name.rsplit(".", 1)[1]
        out[short] = int(stat.calls) if stat is not None else 0
        if stat is not None and stat.bytes:
            out[f"{short}_bytes"] = int(stat.bytes)
    return out
