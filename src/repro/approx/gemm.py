"""Approximate integer GEMM (Eq. 4 of the paper).

Computes ``ỹ[i,j] = Σ_k g̃(A[i,k], B[k,j])`` where ``g̃`` is an approximate
multiplication realised as a LUT. Signed operands are evaluated in
sign-magnitude form.

The engine exploits the small weight alphabet: a 4-bit symmetric weight only
takes 15 values, so the GEMM decomposes as

    ỹ = Σ_{v=1..whi} G_v (1[B = v] - 1[B = -v]),   G_v[i,k] = g̃(A[i,k], v)

— one LUT gather plus one BLAS matmul per positive weight value (the v = -v
term uses the sign-magnitude odd symmetry ``g̃(a, -v) = -g̃(a, v)``). All
products and partial sums are integers far below 2^53, so float64 BLAS is
exact.

When the weight operand is frozen (every evaluation loop, sweep cell and
Monte-Carlo run), callers pass a precomputed weight-stationary
:class:`~repro.approx.plan.GemmPlan` — the per-batch work collapses to one
pooled-workspace gather plus one BLAS call, bitwise identical to the
uncached path (``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import numpy as np

from repro.approx.backend import (
    GemmBackend,
    get_backend,
    tiered_exact_int_matmul,
)
from repro.approx.multiplier import Multiplier
from repro.approx.plan import GemmPlan, check_magnitude
from repro.errors import MultiplierError, ShapeError
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.parallel import ParallelConfig, amortized_workers, map_workers

# Row-block size of the threaded GEMM path. Each output row depends only on
# the matching row of ``a``, so row blocks evaluate independently and the
# chunked result is bitwise identical to the single-shot one. Blocks much
# smaller than this are dominated by dispatch overhead.
ROW_BLOCK = 256


def exact_int_matmul(
    a: np.ndarray, b: np.ndarray, backend: str | GemmBackend | None = None
) -> np.ndarray:
    """Exact integer GEMM through the active backend.

    The reference strategy is tiered float32/float64 BLAS — exact for the
    bounded operands produced by the quantizer (docs/PERFORMANCE.md lists
    the tier bounds) — with int64 accumulation above the float64 tier. A
    backend may substitute its own exact kernel (e.g. int8-accumulate)
    or decline, in which case the tiered reference runs; the result is
    bitwise identical either way.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    with prof.timer("approx.exact_matmul", nbytes=a.nbytes + b.nbytes):
        y = get_backend(backend).exact_int(a, b)
        if y is None:
            y = tiered_exact_int_matmul(a, b)
        return y


def exact_int_matmul_cached(a: np.ndarray, b: np.ndarray, cache: dict) -> np.ndarray:
    """:func:`exact_int_matmul` with memoized conversions of operand ``b``.

    Gradient estimation runs an exact GEMM alongside every approximate one
    with the *same* weight operand each batch; ``cache`` (owned by the
    layer's :class:`~repro.approx.plan.LayerKernelState`) memoizes the
    dtype conversion and magnitude of ``b`` across batches. The tier
    decision and arithmetic are identical to the tiered reference, so the
    result is bitwise identical — only the ``astype`` of ``b`` is reused.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    with prof.timer("approx.exact_matmul", nbytes=a.nbytes + b.nbytes):
        if not (a.size and b.size):
            return a.astype(np.int64) @ b.astype(np.int64)
        bmax = cache.get("absmax")
        if bmax is None:
            bmax = cache["absmax"] = float(np.abs(b).max())
        max_sum = float(np.abs(a).max()) * bmax * a.shape[1]
        if max_sum < 2.0**23:
            b32 = cache.get("f4")
            if b32 is None:
                b32 = cache["f4"] = b.astype(np.float32)
            return np.rint(a.astype(np.float32) @ b32).astype(np.int64)
        if max_sum < 2.0**52:
            b64 = cache.get("f8")
            if b64 is None:
                b64 = cache["f8"] = b.astype(np.float64)
            return np.rint(a.astype(np.float64) @ b64).astype(np.int64)
        if max_sum >= 2.0**63:
            raise MultiplierError(
                "exact integer GEMM would overflow the int64 accumulator: "
                f"worst-case partial sum {max_sum:.3g} >= 2^63 for shapes "
                f"{a.shape} x {b.shape}; rescale or requantize the operands"
            )
        b_i8 = cache.get("i8")
        if b_i8 is None:
            b_i8 = cache["i8"] = b.astype(np.int64)
        return a.astype(np.int64) @ b_i8


def approx_matmul(
    a: np.ndarray,
    b: np.ndarray,
    multiplier: Multiplier,
    workers: int | None = None,
    plan: GemmPlan | None = None,
    backend: str | GemmBackend | None = None,
) -> np.ndarray:
    """Approximate integer GEMM ``a @ b`` using ``multiplier`` elementwise.

    Parameters
    ----------
    a:
        Signed integer codes of shape (M, K); magnitudes must fit the
        multiplier's ``x_bits`` unsigned domain.
    b:
        Signed integer codes of shape (K, N); magnitudes must fit the
        multiplier's ``w_bits`` unsigned domain.
    workers:
        Evaluate independent row blocks of ``a`` on this many threads when
        M spans several blocks and the machine has more than one usable
        CPU (``docs/PERFORMANCE.md``); ``None`` uses the process-wide
        default (the CLI's ``--workers``). The result is bitwise identical
        at any worker count.
    plan:
        A weight-stationary :class:`~repro.approx.plan.GemmPlan` built
        from this exact ``b`` and ``multiplier``
        (:func:`repro.approx.plan.build_plan`). Skips every
        weight-dependent scan and gathers into a pooled workspace; the
        result is bitwise identical to the plan-less call.
    backend:
        GEMM backend name or instance
        (:mod:`repro.approx.backend`); ``None`` uses the process-wide
        default. Backends whose ``use_plans`` is False (``exact-blas``)
        ignore ``plan`` and run the uncached reference scans — every
        backend choice is bitwise identical.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"incompatible GEMM shapes {a.shape} x {b.shape}")
    if a.dtype.kind not in "iu" or b.dtype.kind not in "iu":
        raise MultiplierError("approx_matmul operates on integer codes")
    resolved = get_backend(backend)
    if multiplier.is_exact:
        return exact_int_matmul(a, b, backend=resolved)
    if not resolved.use_plans:
        plan = None

    xhi = 2 ** (multiplier.x_bits - 1) - 1
    whi = 2 ** (multiplier.w_bits - 1) - 1
    check_magnitude(a, xhi, multiplier.name, "a")
    if plan is None:
        check_magnitude(b, whi, multiplier.name, "b")
    elif plan.k != a.shape[1] or plan.n != b.shape[1]:
        raise ShapeError(
            f"plan built for ({plan.k}, {plan.n}) weights applied to GEMM "
            f"{a.shape} x {b.shape}"
        )

    with tr.span(
        "approx.matmul",
        m=int(a.shape[0]),
        k=int(a.shape[1]),
        n=int(b.shape[1]),
        planned=plan is not None,
    ):
        num_workers = amortized_workers(workers, tasks=a.shape[0] // ROW_BLOCK)
        if num_workers > 1 and a.shape[0] >= 2 * ROW_BLOCK:
            blocks = min(num_workers, -(-a.shape[0] // ROW_BLOCK))
            bounds = np.linspace(0, a.shape[0], blocks + 1, dtype=int)
            rows = [a[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]
            with prof.timer("approx.matmul_chunked", nbytes=a.nbytes + b.nbytes):
                parts = map_workers(
                    lambda block: _run_block(block, b, multiplier, xhi, whi, plan),
                    rows,
                    ParallelConfig(workers=blocks, backend="thread"),
                )
            return np.concatenate(parts, axis=0)
        return _run_block(a, b, multiplier, xhi, whi, plan)


def _run_block(
    a: np.ndarray,
    b: np.ndarray,
    multiplier: Multiplier,
    xhi: int,
    whi: int,
    plan: GemmPlan | None,
) -> np.ndarray:
    if plan is not None:
        return plan.execute(a)
    return _approx_matmul_block(a, b, multiplier, xhi, whi)


def _approx_matmul_block(
    a: np.ndarray, b: np.ndarray, multiplier: Multiplier, xhi: int, whi: int
) -> np.ndarray:
    """The LUT-decomposition GEMM on one (row block of) operand ``a``.

    This is the uncached reference path; the plan path must stay bitwise
    identical to it (``tests/approx/test_plan.py``).
    """
    # float32 accumulation is exact while every partial sum of integer
    # products stays below 2^24 (the float32 mantissa bound); gate at 2^23
    # for a 2x margin, fall back to float64 otherwise (docs/PERFORMANCE.md).
    max_product = float(np.abs(multiplier.lut).max())
    use_f32 = max_product * a.shape[1] < 2.0**23
    lut = multiplier.signed_lut_f32() if use_f32 else multiplier.signed_lut_f64()
    dtype = np.float32 if use_f32 else np.float64
    itemsize = np.dtype(dtype).itemsize

    a_idx = (a.astype(np.intp) + xhi).ravel()
    m, k = a.shape
    n = b.shape[1]
    gathered: list[np.ndarray] = []
    masks: list[np.ndarray] = []
    with prof.timer("approx.lut_gather", nbytes=a.nbytes + b.nbytes):
        for v in range(1, whi + 1):
            # v = 0 contributes g̃(a, 0) = 0 under sign-magnitude evaluation.
            pos = b == v
            neg = b == -v
            any_pos, any_neg = pos.any(), neg.any()
            if not (any_pos or any_neg):
                continue
            gathered.append(lut[:, whi + v].take(a_idx).reshape(m, k))
            mask = pos.astype(dtype)
            if any_neg:
                mask -= neg
            masks.append(mask)
    if not gathered:
        return np.zeros((m, n), dtype=np.int64)
    prof.count(
        "approx.lut_gathered_values",
        n=len(gathered),
        nbytes=len(gathered) * m * k * itemsize,
    )
    # One fused BLAS call over all active weight values.
    with prof.timer(
        "approx.matmul_blas", nbytes=len(gathered) * (m * k + k * n) * itemsize
    ):
        big_g = np.concatenate(gathered, axis=1)
        big_h = np.concatenate(masks, axis=0)
        return np.rint(big_g @ big_h).astype(np.int64)


def approx_matmul_with_exact(
    a: np.ndarray, b: np.ndarray, multiplier: Multiplier
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ỹ, y)`` — approximate and exact GEMM on the same operands.

    Used by gradient estimation, which needs the exact output ``y`` to decide
    which entries fall in the linear region of the fitted error function.
    """
    exact = exact_int_matmul(a, b)
    approx = approx_matmul(a, b, multiplier)
    return approx, exact
