"""Synthetic stand-ins for the EvoApprox8b multipliers used in the paper.

The original EvoApprox8b library [20] ships gate-level C models that are not
available offline. The paper characterises each selected multiplier purely
through (a) its exhaustive MRE (Eq. 14), (b) its energy savings, and (c) the
empirical observation that its approximation error is *unbiased* — zero-mean
and independent of the GEMM output, so the fitted error function is constant
and gradient estimation degenerates to the plain STE (section IV-B, Fig. 3).

We therefore synthesise, for each paper multiplier ID, a behavioural LUT
with a symmetric multiplicative error ``g̃(a,b) = a*b + round(a*b*δ(a,b))``
where ``δ ~ U(-d, d)`` is drawn deterministically per ID, and ``d`` is
calibrated by bisection so the exhaustive MRE matches the paper's value.
This preserves exactly the properties the paper's methodology interacts
with; the substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.metrics import mean_relative_error
from repro.approx.multiplier import Multiplier, exact_lut
from repro.errors import MultiplierError


@dataclass(frozen=True)
class EvoApproxSpec:
    """Paper-reported characteristics of one EvoApprox8b multiplier."""

    ident: int
    mre: float  # fractional, e.g. 0.079 for 7.9%
    energy_savings: float  # fractional
    seed: int


# MRE / savings as reported in Tables III, V and VI of the paper.
EVOAPPROX_SPECS: dict[int, EvoApproxSpec] = {
    470: EvoApproxSpec(470, 0.021, 0.01, seed=470),
    29: EvoApproxSpec(29, 0.079, 0.09, seed=29),
    111: EvoApproxSpec(111, 0.116, 0.12, seed=111),
    104: EvoApproxSpec(104, 0.192, 0.18, seed=104),
    469: EvoApproxSpec(469, 0.205, 0.18, seed=469),
    228: EvoApproxSpec(228, 0.189, 0.19, seed=228),
    145: EvoApproxSpec(145, 0.205, 0.21, seed=145),
    249: EvoApproxSpec(249, 0.488, 0.61, seed=249),
}


def _lut_for_amplitude(d: float, exact: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """LUT with symmetric multiplicative error of half-width ``d``."""
    noisy = exact + np.rint(exact * delta * d)
    return np.clip(noisy, 0, None).astype(np.int32)


def synthesize_evoapprox_lut(
    target_mre: float,
    seed: int,
    x_bits: int = 8,
    w_bits: int = 4,
    tolerance: float = 0.02,
) -> np.ndarray:
    """Bisect the error amplitude until the exhaustive MRE matches.

    ``tolerance`` is relative (2% of the target by default).
    """
    if not 0.0 < target_mre < 2.0:
        raise MultiplierError(f"target MRE {target_mre} out of plausible range")
    exact = exact_lut(x_bits, w_bits).astype(np.float64)
    rng = np.random.default_rng(seed)
    delta = rng.uniform(-1.0, 1.0, size=exact.shape)

    def measured(d: float) -> float:
        lut = _lut_for_amplitude(d, exact, delta)
        probe = Multiplier("probe", lut, x_bits, w_bits)
        return mean_relative_error(probe)

    lo, hi = 0.0, 2.0 * target_mre + 0.5
    while measured(hi) < target_mre:
        hi *= 2.0
        if hi > 64.0:
            raise MultiplierError(f"cannot reach MRE {target_mre} with this model")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if measured(mid) < target_mre:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9:
            break
    d = 0.5 * (lo + hi)
    final = measured(d)
    if abs(final - target_mre) > tolerance * target_mre + 1e-4:
        raise MultiplierError(
            f"calibration failed: wanted MRE {target_mre:.4f}, got {final:.4f}"
        )
    return _lut_for_amplitude(d, exact, delta)


class EvoApproxMultiplier(Multiplier):
    """Synthetic EvoApprox8b multiplier matching a paper-reported MRE."""

    def __init__(self, ident: int, x_bits: int = 8, w_bits: int = 4):
        if ident not in EVOAPPROX_SPECS:
            raise MultiplierError(
                f"unknown EvoApprox id {ident}; known: {sorted(EVOAPPROX_SPECS)}"
            )
        spec = EVOAPPROX_SPECS[ident]
        lut = synthesize_evoapprox_lut(spec.mre, spec.seed, x_bits, w_bits)
        super().__init__(
            f"evoapprox{ident}", lut, x_bits, w_bits, energy_savings=spec.energy_savings
        )
        self.ident = ident
        self.spec = spec
