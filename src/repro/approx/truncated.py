"""Truncated multipliers (Kidambi et al. [21]) without bias correction.

A truncated array multiplier discards the ``t`` least-significant columns of
the partial-product matrix before summation: every partial-product bit
``a_i · b_j`` with ``i + j < t`` is dropped, so
``g̃(a,b) = Σ_{i+j ≥ t} a_i b_j 2^(i+j) ≤ a*b`` — a one-sided (biased) error.

Under sign-magnitude evaluation of signed codes, products contributing
positively to a GEMM output accumulate negative error and vice versa, which
produces the negative-slope error function of Fig. 2.

Note on MRE calibration: the exhaustive 8×4 MRE of this bit-accurate model
is lower than the values the paper reports for "truncated t" (e.g. 8.7% vs
19.8% at t=5); the paper's figures appear to derive from a wider base
multiplier. The registry keeps both the measured MRE and the paper-reported
MRE so benches can print the comparison (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.approx.multiplier import Multiplier, exact_lut
from repro.errors import MultiplierError

# Energy savings per truncation depth, as reported in the paper (Table V,
# derived from [21]): LSBs truncated -> fraction of multiplier energy saved.
TRUNCATED_ENERGY_SAVINGS: dict[int, float] = {1: 0.02, 2: 0.08, 3: 0.16, 4: 0.28, 5: 0.38}


def truncated_lut(lsbs: int, x_bits: int = 8, w_bits: int = 4) -> np.ndarray:
    """LUT of the array multiplier with ``lsbs`` partial-product columns cut."""
    if lsbs < 0 or lsbs >= x_bits + w_bits:
        raise MultiplierError(
            f"truncation depth {lsbs} outside [0, {x_bits + w_bits - 1}]"
        )
    a = np.arange(2**x_bits, dtype=np.int64)[:, None]
    b = np.arange(2**w_bits, dtype=np.int64)[None, :]
    out = np.zeros((2**x_bits, 2**w_bits), dtype=np.int64)
    for i in range(x_bits):
        for j in range(w_bits):
            if i + j >= lsbs:
                out += ((a >> i) & 1) * ((b >> j) & 1) * (1 << (i + j))
    return out.astype(np.int32)


def bias_corrected_truncated_lut(lsbs: int, x_bits: int = 8, w_bits: int = 4) -> np.ndarray:
    """Truncated LUT with a constant additive bias correction.

    The paper evaluates truncated multipliers *without* bias correction;
    this variant adds back the expected value of the dropped partial
    products (a single constant adder in hardware), turning the one-sided
    error into an approximately zero-mean one. Provided for the ablation
    of that design choice.
    """
    lut = truncated_lut(lsbs, x_bits, w_bits).astype(np.int64)
    exact = exact_lut(x_bits, w_bits).astype(np.int64)
    # Expected dropped amount over the nonzero operand domain.
    drop = (exact - lut)[1:, 1:]
    correction = int(np.rint(drop.mean()))
    corrected = lut + correction
    corrected[0, :] = 0  # keep g̃(0, b) = g̃(a, 0) = 0
    corrected[:, 0] = 0
    return np.clip(corrected, 0, None).astype(np.int32)


class BiasCorrectedTruncatedMultiplier(Multiplier):
    """Truncated multiplier plus constant bias correction (ablation)."""

    def __init__(self, lsbs: int, x_bits: int = 8, w_bits: int = 4):
        savings = TRUNCATED_ENERGY_SAVINGS.get(lsbs, min(0.95, 0.08 * lsbs))
        super().__init__(
            f"truncated{lsbs}bc",
            bias_corrected_truncated_lut(lsbs, x_bits, w_bits),
            x_bits,
            w_bits,
            energy_savings=max(0.0, savings - 0.01),  # the extra adder costs a little
        )
        self.lsbs = lsbs


class TruncatedMultiplier(Multiplier):
    """``t``-LSB truncated 8×4 multiplier ("truncated t" in the paper)."""

    def __init__(self, lsbs: int, x_bits: int = 8, w_bits: int = 4):
        savings = TRUNCATED_ENERGY_SAVINGS.get(lsbs, min(0.95, 0.08 * lsbs))
        super().__init__(
            f"truncated{lsbs}",
            truncated_lut(lsbs, x_bits, w_bits),
            x_bits,
            w_bits,
            energy_savings=savings,
        )
        self.lsbs = lsbs
