"""Additional literature-standard approximate multipliers.

Beyond the paper's truncated and EvoApprox designs, two classic families are
provided for extension experiments:

- **Mitchell's logarithmic multiplier** (Mitchell, 1962): operands are
  approximated by piecewise-linear base-2 logarithms; the product always
  *underestimates* the exact result (one-sided error, up to ~11.1%
  relative), so gradient estimation applies just as it does to truncated
  multipliers.
- **DRUM(k)** (Hashemi et al., ICCAD'15): each operand is dynamically
  truncated to its ``k`` leading bits with the dropped part compensated by
  forcing the new LSB to 1 — an (approximately) *unbiased* design, so the
  fitted error model is constant and GE degenerates to the STE.

Both are realised as exhaustive behavioural LUTs over the 8×4 domain.
"""

from __future__ import annotations

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.errors import MultiplierError


def _mitchell_product(a: int, b: int) -> int:
    """Mitchell's approximate product of two non-negative integers."""
    if a == 0 or b == 0:
        return 0
    k1, k2 = a.bit_length() - 1, b.bit_length() - 1
    x1 = a / (1 << k1) - 1.0  # fractional parts in [0, 1)
    x2 = b / (1 << k2) - 1.0
    if x1 + x2 < 1.0:
        approx = (1 << (k1 + k2)) * (1.0 + x1 + x2)
    else:
        approx = (1 << (k1 + k2 + 1)) * (x1 + x2)
    return int(approx)


def mitchell_lut(x_bits: int = 8, w_bits: int = 4) -> np.ndarray:
    """Exhaustive LUT of Mitchell's logarithmic multiplier."""
    lut = np.zeros((2**x_bits, 2**w_bits), dtype=np.int32)
    for a in range(2**x_bits):
        for b in range(2**w_bits):
            lut[a, b] = _mitchell_product(a, b)
    return lut


class MitchellMultiplier(Multiplier):
    """Mitchell's logarithmic multiplier (biased low, like truncation)."""

    def __init__(self, x_bits: int = 8, w_bits: int = 4):
        # Log-domain addition replaces the multiplier array; published
        # implementations report large energy reductions (~50% class).
        super().__init__(
            "mitchell", mitchell_lut(x_bits, w_bits), x_bits, w_bits, energy_savings=0.5
        )


def _drum_operand(value: int, k: int) -> tuple[int, int]:
    """DRUM operand reduction: (approximated value, shift) for ``value``."""
    n = value.bit_length()
    if n <= k:
        return value, 0
    shift = n - k
    kept = value >> shift
    kept |= 1  # force LSB to 1: unbiased compensation for the dropped tail
    return kept, shift


def drum_lut(k: int, x_bits: int = 8, w_bits: int = 4) -> np.ndarray:
    """Exhaustive LUT of DRUM(k) over the unsigned 8×4 domain."""
    if k < 2:
        raise MultiplierError(f"DRUM needs k >= 2 leading bits, got {k}")
    lut = np.zeros((2**x_bits, 2**w_bits), dtype=np.int32)
    for a in range(2**x_bits):
        ra, sa = _drum_operand(a, k)
        for b in range(2**w_bits):
            rb, sb = _drum_operand(b, k)
            lut[a, b] = (ra * rb) << (sa + sb)
    return lut


class DrumMultiplier(Multiplier):
    """DRUM(k) dynamic-range unbiased multiplier."""

    def __init__(self, k: int, x_bits: int = 8, w_bits: int = 4):
        # Savings grow as fewer leading bits are kept; values follow the
        # published trend (DRUM6 on 16-bit saves ~58%; scaled here).
        savings = {3: 0.45, 4: 0.30, 5: 0.18, 6: 0.10}.get(k, 0.05)
        super().__init__(
            f"drum{k}", drum_lut(k, x_bits, w_bits), x_bits, w_bits, energy_savings=savings
        )
        self.k = k
