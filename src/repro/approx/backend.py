"""Pluggable GEMM execution backends.

Every integer GEMM in the repo — the approximate LUT engine, the exact
integer reference it is compared against, and the float GEMMs of the
autograd layer — funnels through one small dispatch seam instead of
hard-coding a strategy at each call site. Three backends ship:

- ``exact-blas`` — the tiered float32/float64/int64 reference path
  (:func:`tiered_exact_int_matmul`). For *approximate* GEMMs it forces
  the uncached LUT-decomposition scans, ignoring any prepared plan;
  selecting it is a way to run the reference path end to end.
- ``plan-lut`` — the default: approximate GEMMs use a weight-stationary
  :class:`~repro.approx.plan.GemmPlan` when the caller prepared one,
  exact GEMMs take the same tiered path.
- ``int8-accumulate`` — an ``igemm``-style integer-accumulation backend:
  when both operands fit int8 and the worst-case sum fits int32, the
  exact GEMM runs as an int32-accumulated integer matmul (exact
  arithmetic, hence bitwise identical); anything it cannot handle falls
  back to ``exact-blas``. :func:`int8_scaled_matmul` exposes the
  per-axis-scaled float variant as an explicit opt-in — it is lossy, so
  no backend ever applies it implicitly.

The selection contract is that backends may only change *how fast* a
result is produced, never the result: every backend either computes the
bitwise-identical answer or declines (returns ``None``) and the caller
falls back to the reference. This is asserted in
``tests/approx/test_backend.py``.

Selection follows the documented :mod:`repro.config` precedence, most
specific wins:

1. per call — ``approx_matmul(..., backend="exact-blas")``;
2. scoped — ``with gemm_backend("int8-accumulate"): ...``;
3. process-wide — ``set_default_backend(name)``, which installs the
   ``gemm_backend`` knob's :func:`repro.config.configure` tier;
4. CLI — the ``--gemm-backend`` flag (``repro.cli`` installs it on the
   knob's CLI tier);
5. environment — ``REPRO_GEMM_BACKEND``;
6. otherwise ``plan-lut``.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.errors import MultiplierError

# float32 partial sums of integer products are exact below 2^24 (the
# mantissa bound); gated at 2^23 for a 2x margin. float64 likewise exact
# below 2^52 (2^53 mantissa bound). See docs/PERFORMANCE.md.
_EXACT_FLOAT32_BOUND = 2.0**23
_EXACT_FLOAT64_BOUND = 2.0**52
# int64 accumulation wraps silently past 2^63; reject instead.
_EXACT_INT64_BOUND = 2.0**63

_INT8_MAX = 127
_INT32_BOUND = 2.0**31


def tiered_exact_int_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The exact integer GEMM reference: tiered f32/f64/int64 accumulation.

    Picks the cheapest dtype whose accumulation is provably exact for the
    operands' worst-case partial sum ``max|a|·max|b|·K``; raises
    :class:`~repro.errors.MultiplierError` when even int64 could wrap
    (``≥ 2^63``) rather than returning silently-overflowed garbage.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size and b.size:
        max_sum = float(np.abs(a).max()) * float(np.abs(b).max()) * a.shape[1]
        if max_sum < _EXACT_FLOAT32_BOUND:
            return np.rint(a.astype(np.float32) @ b.astype(np.float32)).astype(np.int64)
        if max_sum < _EXACT_FLOAT64_BOUND:
            return np.rint(a.astype(np.float64) @ b.astype(np.float64)).astype(np.int64)
        if max_sum >= _EXACT_INT64_BOUND:
            raise MultiplierError(
                "exact integer GEMM would overflow the int64 accumulator: "
                f"worst-case partial sum {max_sum:.3g} >= 2^63 for shapes "
                f"{a.shape} x {b.shape}; rescale or requantize the operands"
            )
    return a.astype(np.int64) @ b.astype(np.int64)


class GemmBackend:
    """One GEMM execution strategy; subclasses override what they accelerate.

    ``exact_int`` may return ``None`` to decline an operand combination —
    the caller then falls back to :func:`tiered_exact_int_matmul`, so an
    unsupported case is always bitwise-exact, never an error.
    ``use_plans`` decides whether approximate GEMMs may consume a
    prepared :class:`~repro.approx.plan.GemmPlan`.
    """

    name = "base"
    use_plans = True

    def exact_int(self, a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
        return None

    def float_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b


class ExactBlasBackend(GemmBackend):
    """The tiered reference path; approximate GEMMs run unplanned scans."""

    name = "exact-blas"
    use_plans = False

    def exact_int(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return tiered_exact_int_matmul(a, b)


class PlanLutBackend(GemmBackend):
    """The default: plan-accelerated approximate GEMMs, tiered exact path."""

    name = "plan-lut"
    use_plans = True

    def exact_int(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return tiered_exact_int_matmul(a, b)


class Int8AccumulateBackend(GemmBackend):
    """Integer accumulation for int8-ranged operands, else exact fallback.

    Mirrors the ``igemm`` kernels of GPU int8 stacks: operands within
    ``[-127, 127]`` whose worst-case sum fits int32 multiply-accumulate
    in int32 — exact integer arithmetic, so the result is bitwise
    identical to the reference. Operands outside that envelope return
    ``None`` and the caller falls back to ``exact-blas``. On a
    numpy/CPU substrate the int32 matmul has no BLAS kernel, so this
    backend is for experimentation and correctness work, not speed.
    """

    name = "int8-accumulate"
    use_plans = True

    def exact_int(self, a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
        if not (a.size and b.size):
            return None
        amax = float(np.abs(a).max())
        bmax = float(np.abs(b).max())
        if amax > _INT8_MAX or bmax > _INT8_MAX:
            return None
        if amax * bmax * a.shape[1] >= _INT32_BOUND:
            return None
        return (a.astype(np.int32) @ b.astype(np.int32)).astype(np.int64)


def quantize_per_axis(
    x: np.ndarray, axis: int, bits: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-axis quantization to ``bits``-bit signed codes.

    Returns ``(codes, scales)`` with ``scales`` shaped to broadcast
    against ``x`` (one scale per index along ``axis``); all-zero slices
    get scale 1.0 so dequantization is always defined.
    """
    x = np.asarray(x, dtype=np.float32)
    hi = 2 ** (bits - 1) - 1
    reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
    absmax = np.abs(x).max(axis=reduce_axes, keepdims=True)
    scales = np.where(absmax > 0, absmax / hi, 1.0).astype(np.float32)
    codes = np.clip(np.rint(x / scales), -hi, hi).astype(np.int8)
    return codes, scales


def int8_scaled_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Approximate float GEMM via per-row/per-column int8 quantization.

    ``a`` is quantized per row, ``b`` per column (the axes whose scale
    factors out of the dot product exactly), the integer product
    accumulates in int32 and the result is rescaled. This is the lossy
    per-axis-scale path of the ``int8-accumulate`` backend, exposed as
    an explicit function precisely because it is *not* bitwise-exact —
    no dispatch path applies it implicitly.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise MultiplierError(
            f"int8_scaled_matmul expects compatible 2-D operands, got "
            f"{a.shape} x {b.shape}"
        )
    if _INT8_MAX * _INT8_MAX * a.shape[1] >= _INT32_BOUND:
        raise MultiplierError(
            f"int8_scaled_matmul reduce dim {a.shape[1]} could overflow the "
            "int32 accumulator"
        )
    aq, sa = quantize_per_axis(a, axis=0)  # (M, K), scales (M, 1)
    bq, sb = quantize_per_axis(b, axis=1)  # (K, N), scales (1, N)
    y = aq.astype(np.int32) @ bq.astype(np.int32)
    return y.astype(np.float32) * (sa * sb)


_BACKENDS: dict[str, GemmBackend] = {
    backend.name: backend
    for backend in (ExactBlasBackend(), PlanLutBackend(), Int8AccumulateBackend())
}

_DEFAULT_NAME = "plan-lut"


def available_backends() -> list[str]:
    """Names of the registered GEMM backends."""
    return sorted(_BACKENDS)


def get_backend(backend: str | GemmBackend | None = None) -> GemmBackend:
    """Resolve a backend argument: instance, registered name, or the default."""
    if backend is None:
        return default_backend()
    if isinstance(backend, GemmBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise MultiplierError(
            f"unknown GEMM backend {backend!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def default_backend() -> GemmBackend:
    """The ambient backend under the :mod:`repro.config` precedence.

    Resolves the ``gemm_backend`` knob — :func:`set_default_backend` tier,
    then CLI flag, then ``REPRO_GEMM_BACKEND`` — falling back to
    ``plan-lut``.
    """
    value = config.resolve("gemm_backend")
    if value is None:
        return _BACKENDS[_DEFAULT_NAME]
    return get_backend(value)


def set_default_backend(backend: str | GemmBackend | None) -> str | None:
    """Install the process-wide backend; returns the previous installed name.

    ``None`` clears the override so resolution falls back to the CLI
    flag / environment / default tiers on next use.
    """
    resolved = None if backend is None else get_backend(backend)
    previous = config.configure(gemm_backend=resolved)["gemm_backend"]
    if previous is None:
        return None
    return get_backend(previous).name


class gemm_backend:
    """Context manager scoping the process-wide backend to a block."""

    def __init__(self, backend: str | GemmBackend):
        self._backend = backend

    def __enter__(self) -> GemmBackend:
        self._previous = set_default_backend(self._backend)
        return default_backend()

    def __exit__(self, *exc) -> None:
        set_default_backend(self._previous)


def float_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Float GEMM through the active backend (all backends keep it exact)."""
    return default_backend().float_matmul(a, b)
