"""Behavioural models of (approximate) unsigned multipliers.

A multiplier is fully described by its lookup table over the unsigned input
domain ``0..2^x_bits-1 × 0..2^w_bits-1`` (8×4 bit in the paper). Signed
integer codes from the symmetric quantizer are evaluated in sign-magnitude
form: ``g̃(a, b) = sign(a)·sign(b)·LUT[|a|, |b|]``, matching how the paper
adapts the unsigned EvoApprox8b circuits to signed 8×4 operation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MultiplierError


class Multiplier:
    """An unsigned ``x_bits × w_bits`` multiplier defined by a LUT.

    Parameters
    ----------
    name:
        Identifier used in registries, tables and energy lookups.
    lut:
        Integer array of shape ``(2^x_bits, 2^w_bits)`` with
        ``lut[a, b] ≈ a*b``.
    energy_savings:
        Fraction of multiplier energy saved relative to the exact design
        (0 = exact cost, 0.38 = 38% cheaper).
    """

    def __init__(self, name: str, lut: np.ndarray, x_bits: int = 8, w_bits: int = 4,
                 energy_savings: float = 0.0):
        lut = np.asarray(lut)
        expected = (2**x_bits, 2**w_bits)
        if lut.shape != expected:
            raise MultiplierError(
                f"multiplier {name!r}: LUT shape {lut.shape} != expected {expected}"
            )
        if lut.dtype.kind not in "iu":
            raise MultiplierError(f"multiplier {name!r}: LUT must be integer-typed")
        if lut.min() < 0:
            raise MultiplierError(f"multiplier {name!r}: unsigned LUT has negative entries")
        self.name = name
        self.x_bits = x_bits
        self.w_bits = w_bits
        self.lut = np.ascontiguousarray(lut, dtype=np.int32)
        self.energy_savings = float(energy_savings)

    # -- evaluation -----------------------------------------------------
    def apply_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Evaluate on unsigned operands (broadcasting like ``a*b``)."""
        a = np.asarray(a)
        b = np.asarray(b)
        self._check_unsigned_range(a, b)
        return self.lut[a, b]

    def apply_signed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Evaluate on signed operands via sign-magnitude decomposition."""
        a = np.asarray(a)
        b = np.asarray(b)
        mags = self.lut[np.abs(a), np.abs(b)]
        return np.sign(a) * np.sign(b) * mags

    def signed_lut(self) -> np.ndarray:
        """Signed LUT ``L[a + xhi, b + whi] = g̃(a, b)`` over the symmetric
        code ranges, cached after first use.

        Sign-magnitude evaluation gives the odd symmetry
        ``L[:, whi + v] = -L[:, whi - v]`` that the GEMM engine exploits.
        """
        cached = getattr(self, "_signed_lut", None)
        if cached is not None:
            return cached
        xhi = 2 ** (self.x_bits - 1) - 1
        whi = 2 ** (self.w_bits - 1) - 1
        a = np.arange(-xhi, xhi + 1)
        b = np.arange(-whi, whi + 1)
        signs = np.sign(a)[:, None] * np.sign(b)[None, :]
        table = (signs * self.lut[np.abs(a)][:, np.abs(b)]).astype(np.int32)
        self._signed_lut = table
        return table

    def _check_unsigned_range(self, a: np.ndarray, b: np.ndarray) -> None:
        if a.size and (a.min() < 0 or a.max() >= 2**self.x_bits):
            raise MultiplierError(
                f"{self.name}: operand a out of unsigned {self.x_bits}-bit range"
            )
        if b.size and (b.min() < 0 or b.max() >= 2**self.w_bits):
            raise MultiplierError(
                f"{self.name}: operand b out of unsigned {self.w_bits}-bit range"
            )

    def signed_lut_f32(self) -> np.ndarray:
        """:meth:`signed_lut` as float32 (cached).

        All entries are integers below 2^24, so float32 represents them
        exactly — the GEMM engine exploits this for fast exact BLAS.
        """
        cached = getattr(self, "_signed_lut_f32", None)
        if cached is None:
            cached = self.signed_lut().astype(np.float32)
            self._signed_lut_f32 = cached
        return cached

    def signed_lut_f64(self) -> np.ndarray:
        """:meth:`signed_lut` as float64 (cached).

        The GEMM engine's wide-accumulation path gathers from this table on
        every call; converting per call would dominate small GEMMs.
        """
        cached = getattr(self, "_signed_lut_f64", None)
        if cached is None:
            cached = self.signed_lut().astype(np.float64)
            self._signed_lut_f64 = cached
        return cached

    # -- properties ------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when the LUT equals the exact product everywhere (cached)."""
        cached = getattr(self, "_is_exact", None)
        if cached is None:
            a = np.arange(2**self.x_bits)[:, None]
            b = np.arange(2**self.w_bits)[None, :]
            cached = bool(np.array_equal(self.lut, a * b))
            self._is_exact = cached
        return cached

    def error_table(self) -> np.ndarray:
        """Signed error ``g̃(a,b) - a*b`` over the full unsigned domain."""
        a = np.arange(2**self.x_bits)[:, None]
        b = np.arange(2**self.w_bits)[None, :]
        return self.lut.astype(np.int64) - a * b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Multiplier({self.name!r}, {self.x_bits}x{self.w_bits})"


def exact_lut(x_bits: int = 8, w_bits: int = 4) -> np.ndarray:
    """LUT of the exact unsigned multiplier."""
    a = np.arange(2**x_bits, dtype=np.int64)[:, None]
    b = np.arange(2**w_bits, dtype=np.int64)[None, :]
    return (a * b).astype(np.int32)


class ExactMultiplier(Multiplier):
    """Reference exact multiplier (zero error, zero savings)."""

    def __init__(self, x_bits: int = 8, w_bits: int = 4):
        super().__init__("exact", exact_lut(x_bits, w_bits), x_bits, w_bits, 0.0)
