"""Statistical analysis of approximate-multiplier errors.

Complements the scalar metrics in :mod:`repro.approx.metrics` with richer
characterisations used by the examples and for multiplier selection:
error histograms, per-operand-magnitude profiles, and a compact summary
combining everything a designer looks at before picking a multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.metrics import (
    error_bias_ratio,
    max_absolute_error,
    mean_error,
    mean_relative_error,
)
from repro.approx.multiplier import Multiplier


@dataclass(frozen=True)
class MultiplierSummary:
    """Everything the paper reports (or uses implicitly) per multiplier."""

    name: str
    mre: float
    mean_error: float
    max_abs_error: int
    bias_ratio: float
    energy_savings: float
    error_free_fraction: float  # share of operand pairs computed exactly

    @property
    def is_biased(self) -> bool:
        """One-sided error (truncation-like): bias ratio above 0.5."""
        return self.bias_ratio > 0.5


def summarize_multiplier(multiplier: Multiplier) -> MultiplierSummary:
    """Compute the full characterisation of ``multiplier``."""
    table = multiplier.error_table()
    return MultiplierSummary(
        name=multiplier.name,
        mre=mean_relative_error(multiplier),
        mean_error=mean_error(multiplier),
        max_abs_error=max_absolute_error(multiplier),
        bias_ratio=error_bias_ratio(multiplier),
        energy_savings=multiplier.energy_savings,
        error_free_fraction=float((table == 0).mean()),
    )


def error_histogram(
    multiplier: Multiplier, bins: int = 21
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of the signed error over the unsigned operand domain.

    Returns ``(counts, bin_edges)`` like ``numpy.histogram``.
    """
    table = multiplier.error_table().reshape(-1)
    lo, hi = table.min(), table.max()
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    return np.histogram(table, bins=bins, range=(float(lo), float(hi)))


def error_by_operand_magnitude(
    multiplier: Multiplier, num_bins: int = 8
) -> list[tuple[float, float]]:
    """Mean |relative error| binned by the activation operand's magnitude.

    Returns ``[(bin_center, mean_relative_error), ...]``. Useful to see
    whether a design concentrates its error on small or large operands —
    e.g. DRUM is exact for small operands, truncation hurts them most.
    """
    a = np.arange(2**multiplier.x_bits, dtype=np.int64)[:, None]
    b = np.arange(2**multiplier.w_bits, dtype=np.int64)[None, :]
    exact = a * b
    rel = np.abs(exact - multiplier.lut.astype(np.int64)) / np.maximum(exact, 1)
    edges = np.linspace(0, 2**multiplier.x_bits, num_bins + 1)
    profile = []
    for lo, hi in zip(edges, edges[1:]):
        mask = (a[:, 0] >= lo) & (a[:, 0] < hi)
        if not mask.any():
            continue
        profile.append((float(0.5 * (lo + hi)), float(rel[mask].mean())))
    return profile


def compare_multipliers(names_or_multipliers) -> list[MultiplierSummary]:
    """Summaries for a collection of multipliers, sorted by energy savings."""
    from repro.approx.registry import get_multiplier

    summaries = []
    for item in names_or_multipliers:
        mult = item if isinstance(item, Multiplier) else get_multiplier(item)
        summaries.append(summarize_multiplier(mult))
    return sorted(summaries, key=lambda s: s.energy_savings)
