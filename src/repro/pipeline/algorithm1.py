"""Algorithm 1 of the paper: ApproxKD + Gradient Estimation.

Two sequential stages over a pre-trained full-precision model:

1. **Quantization stage** — convert to 8A4W (folding BN where configured),
   calibrate step sizes, then fine-tune with KD from the FP teacher at
   temperature ``T1`` (or plain cross-entropy for the "normal FT" baseline).
2. **Approximation stage** — attach an approximate multiplier to every
   quantized GEMM layer and fine-tune with one of five methods:
   ``normal`` (passive retraining, STE), ``ge`` (gradient estimation),
   ``alpha`` (alpha regularization), ``approxkd`` (KD from the frozen
   quantized teacher at ``T2``), or ``approxkd_ge`` (the paper's full
   proposal).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.approx.multiplier import Multiplier
from repro.data.dataloader import iterate_batches
from repro.data.synthetic_cifar import Dataset
from repro.distill.teacher import clone_model, kd_batch_loss, precompute_teacher_logits
from repro.errors import ConfigError, ReproError
from repro.ge.estimator import estimate_error_model
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import trace as tr
from repro.quant.convert import calibrate_model, quantize_model, refresh_weight_steps
from repro.quant.qconfig import QConfig
from repro.sim.proxsim import attach_multiplier, detach_multiplier, evaluate_accuracy, resolve_multiplier
from repro.train.baselines import alpha_regularization_loss, remove_alpha_regularization
from repro.train.trainer import (
    History,
    TrainConfig,
    cross_entropy_loss,
    history_from_dict,
    history_to_dict,
    train_model,
)

if TYPE_CHECKING:  # imported lazily at runtime to keep import costs low
    from repro.resilience.checkpoint import CheckpointManager
    from repro.resilience.guard import DivergenceGuard, GuardConfig

METHODS = ("normal", "ge", "alpha", "approxkd", "approxkd_ge")


@dataclass(frozen=True)
class StageResult:
    """Outcome of one fine-tuning stage."""

    accuracy_before: float
    accuracy_after: float
    history: History


def quantization_stage(
    fp_model: Module,
    data: Dataset,
    qconfig: QConfig | None = None,
    train_config: TrainConfig | None = None,
    temperature: float = 1.0,
    use_kd: bool = True,
    fold_bn: bool = True,
    calibration_batches: int = 4,
    callbacks: list | None = None,
    guard: "DivergenceGuard | None" = None,
    checkpoints: "CheckpointManager | None" = None,
    resume: bool = False,
) -> tuple[Module, StageResult]:
    """Quantize ``fp_model`` and fine-tune it (first half of Algorithm 1).

    Returns the trained quantized model and the stage result. ``fp_model``
    is not modified. ``callbacks`` are forwarded to the fine-tuning loop;
    note they observe the internal quantized student, not ``fp_model``.
    ``guard``/``checkpoints``/``resume`` (see ``docs/RESILIENCE.md``) are
    forwarded as well — a resumed stage re-runs calibration, then the
    checkpoint overwrites the calibrated state with the saved one.
    """
    train_config = train_config or TrainConfig()
    log = obs_events.get_event_log()
    started = time.perf_counter()
    log.stage("quantization", "start", use_kd=use_kd, temperature=temperature)
    with tr.span("stage.quantization", use_kd=use_kd, temperature=temperature):
        student = quantize_model(clone_model(fp_model), qconfig, fold_bn=fold_bn)
        calibrate_model(
            student,
            iterate_batches(
                data.train_x, data.train_y, train_config.batch_size, shuffle=False
            ),
            max_batches=calibration_batches,
        )
        accuracy_before = evaluate_accuracy(student, data.test_x, data.test_y)
        log.eval("quantization/before_ft", accuracy_before)
        if use_kd:
            teacher_logits = precompute_teacher_logits(
                fp_model, data.train_x, train_config.batch_size
            )
            loss = kd_batch_loss(teacher_logits, temperature)
        else:
            loss = cross_entropy_loss()
        history = train_model(
            student,
            data,
            loss,
            train_config,
            callbacks=callbacks,
            guard=guard,
            checkpoints=checkpoints,
            resume=resume,
        )
        accuracy_after = evaluate_accuracy(student, data.test_x, data.test_y)
        log.eval("quantization/after_ft", accuracy_after)
    log.stage(
        "quantization",
        "end",
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
        duration=time.perf_counter() - started,
    )
    return student, StageResult(accuracy_before, accuracy_after, history)


def approximation_stage(
    quant_model: Module,
    data: Dataset,
    multiplier: Multiplier | str,
    method: str = "approxkd_ge",
    train_config: TrainConfig | None = None,
    temperature: float = 5.0,
    alpha: float = 1e-11,
    rng: int = 0,
    callbacks: list | None = None,
    guard: "DivergenceGuard | None" = None,
    checkpoints: "CheckpointManager | None" = None,
    resume: bool = False,
) -> tuple[Module, StageResult]:
    """Attach ``multiplier`` and fine-tune (second half of Algorithm 1).

    ``quant_model`` is not modified; the student starts from a deep copy.
    The frozen quantized model (exact integer execution) serves as the KD
    teacher for the ``approxkd*`` methods, per the paper's Fig. 1.
    ``callbacks`` are forwarded to the fine-tuning loop; note they observe
    the internal student copy, not ``quant_model``. ``guard`` is
    especially relevant here — approximate retraining is where losses
    spike — and ``checkpoints``/``resume`` continue a killed fine-tune
    from its last epoch (see ``docs/RESILIENCE.md``).
    """
    if method not in METHODS:
        raise ConfigError(f"unknown method {method!r}; choose from {METHODS}")
    train_config = train_config or TrainConfig()
    mult = resolve_multiplier(multiplier)
    log = obs_events.get_event_log()
    started = time.perf_counter()
    log.stage(
        "approximation",
        "start",
        multiplier=mult.name if mult is not None else None,
        method=method,
        temperature=temperature,
    )

    with tr.span(
        "stage.approximation",
        multiplier=mult.name if mult is not None else None,
        method=method,
        temperature=temperature,
    ):
        student = clone_model(quant_model)
        remove_alpha_regularization(student)
        refresh_weight_steps(student)

        error_model = None
        if method.endswith("ge") and mult is not None and not mult.is_exact:
            error_model = estimate_error_model(mult, rng=rng)
        attach_multiplier(student, mult, error_model)
        accuracy_before = evaluate_accuracy(student, data.test_x, data.test_y)
        log.eval("approximation/before_ft", accuracy_before)

        if method in ("approxkd", "approxkd_ge"):
            teacher = clone_model(quant_model)
            detach_multiplier(teacher)
            remove_alpha_regularization(teacher)
            teacher_logits = precompute_teacher_logits(
                teacher, data.train_x, train_config.batch_size
            )
            loss = kd_batch_loss(teacher_logits, temperature)
        elif method == "alpha":
            loss = alpha_regularization_loss(student, alpha)
        else:  # normal, ge
            loss = cross_entropy_loss()

        history = train_model(
            student,
            data,
            loss,
            train_config,
            callbacks=callbacks,
            guard=guard,
            checkpoints=checkpoints,
            resume=resume,
        )
        remove_alpha_regularization(student)
        accuracy_after = evaluate_accuracy(student, data.test_x, data.test_y)
        log.eval("approximation/after_ft", accuracy_after)
    log.stage(
        "approximation",
        "end",
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
        duration=time.perf_counter() - started,
    )
    return student, StageResult(accuracy_before, accuracy_after, history)


@dataclass(frozen=True)
class Algorithm1Result:
    """Full two-stage outcome."""

    quantized_model: Module
    approximate_model: Module
    quantization: StageResult
    approximation: StageResult


def run_algorithm1(
    fp_model: Module,
    data: Dataset,
    multiplier: Multiplier | str,
    t1: float = 1.0,
    t2: float = 5.0,
    quant_config: TrainConfig | None = None,
    approx_config: TrainConfig | None = None,
    qconfig: QConfig | None = None,
    method: str = "approxkd_ge",
    fold_bn: bool = True,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    guard_config: "GuardConfig | None" = None,
) -> Algorithm1Result:
    """Run both stages of Algorithm 1 and return all artifacts.

    With ``checkpoint_dir`` set, each stage checkpoints every epoch under
    its own subdirectory and the finished quantization stage is persisted
    as a stage artifact; ``resume=True`` then skips the whole quantization
    stage when its artifact exists (falling back to its epoch checkpoints
    otherwise) and continues the approximation stage from its last epoch.
    ``guard_config`` arms a fresh :class:`~repro.resilience.DivergenceGuard`
    per stage.
    """
    quant_ckpts = approx_ckpts = None
    quant_artifact = quant_result_path = None
    if checkpoint_dir is not None:
        from repro.resilience.checkpoint import CheckpointManager

        checkpoint_dir = Path(checkpoint_dir)
        quant_ckpts = CheckpointManager(checkpoint_dir / "quantization")
        approx_ckpts = CheckpointManager(checkpoint_dir / "approximation")
        quant_artifact = checkpoint_dir / "quantized-model.npz"
        quant_result_path = checkpoint_dir / "quantized-stage.json"

    def make_guard():
        if guard_config is None:
            return None
        from repro.resilience.guard import DivergenceGuard

        return DivergenceGuard(guard_config)

    quant_model = quant_result = None
    if resume and quant_artifact is not None and quant_artifact.exists():
        quant_model, quant_result = _load_quantization_artifact(
            fp_model, quant_artifact, quant_result_path, qconfig, fold_bn
        )
    if quant_model is None:
        quant_model, quant_result = quantization_stage(
            fp_model,
            data,
            qconfig=qconfig,
            train_config=quant_config,
            temperature=t1,
            fold_bn=fold_bn,
            guard=make_guard(),
            checkpoints=quant_ckpts,
            resume=resume,
        )
        if quant_artifact is not None:
            from repro.utils.serialization import save_model, save_results

            save_model(quant_model, quant_artifact)
            save_results(
                {
                    "accuracy_before": quant_result.accuracy_before,
                    "accuracy_after": quant_result.accuracy_after,
                    "history": history_to_dict(quant_result.history),
                },
                quant_result_path,
            )
    approx_model, approx_result = approximation_stage(
        quant_model,
        data,
        multiplier,
        method=method,
        train_config=approx_config,
        temperature=t2,
        guard=make_guard(),
        checkpoints=approx_ckpts,
        resume=resume,
    )
    return Algorithm1Result(quant_model, approx_model, quant_result, approx_result)


def _load_quantization_artifact(
    fp_model: Module,
    artifact: Path,
    result_path: Path | None,
    qconfig: QConfig | None,
    fold_bn: bool,
) -> tuple[Module, StageResult] | tuple[None, None]:
    """Rebuild the stage-1 output from its persisted artifact, if intact.

    Any corruption degrades to re-running the stage (returning
    ``(None, None)``) rather than failing the pipeline.
    """
    from repro.utils.serialization import load_model, load_results

    log = obs_events.get_event_log()
    try:
        student = quantize_model(clone_model(fp_model), qconfig, fold_bn=fold_bn)
        load_model(student, artifact)
        payload = load_results(result_path) if result_path and result_path.exists() else {}
    except ReproError as exc:
        if log.enabled:
            log.checkpoint("corrupt", path=str(artifact), error=str(exc))
        return None, None
    result = StageResult(
        accuracy_before=float(payload.get("accuracy_before", 0.0)),
        accuracy_after=float(payload.get("accuracy_after", 0.0)),
        history=history_from_dict(payload.get("history", {})),
    )
    if log.enabled:
        log.checkpoint("stage_resume", stage="quantization", path=str(artifact))
    return student, result
