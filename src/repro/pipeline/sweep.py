"""Parameter-sweep harness over multipliers, methods and temperatures.

Productises what the table benchmarks do: run the approximation stage of
Algorithm 1 over a grid, collect a structured result set, and export it as
JSON for downstream analysis. Used by the examples and available to
library users who want the paper's protocol on their own models.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.approx.metrics import mean_relative_error
from repro.approx.multiplier import Multiplier
from repro.data.synthetic_cifar import Dataset
from repro.distill.approxkd import recommended_t2
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.pipeline.algorithm1 import METHODS, approximation_stage
from repro.sim.proxsim import resolve_multiplier
from repro.train.trainer import TrainConfig
from repro.utils.serialization import save_results


@dataclass(frozen=True)
class SweepPoint:
    """One (multiplier, method, temperature) cell of the sweep grid."""

    multiplier: str
    method: str
    temperature: float
    mre: float
    energy_savings: float
    initial_accuracy: float
    final_accuracy: float
    best_accuracy: float
    wall_time: float


@dataclass
class SweepResult:
    """All points of one sweep plus its configuration."""

    points: list[SweepPoint] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    def best_point(self) -> SweepPoint:
        if not self.points:
            raise ConfigError("empty sweep")
        return max(self.points, key=lambda p: p.final_accuracy)

    def filter(self, multiplier: str | None = None, method: str | None = None):
        """Points matching the given multiplier and/or method."""
        return [
            p
            for p in self.points
            if (multiplier is None or p.multiplier == multiplier)
            and (method is None or p.method == method)
        ]

    def to_json(self, path: str | Path) -> None:
        """Serialise the sweep (points + config) to a JSON file."""
        save_results(
            {"config": self.config, "points": [asdict(p) for p in self.points]},
            path,
        )


def run_sweep(
    quant_model: Module,
    data: Dataset,
    multipliers: list[str | Multiplier],
    methods: tuple[str, ...] = ("normal", "approxkd_ge"),
    temperatures: tuple[float, ...] | None = None,
    train_config: TrainConfig | None = None,
    rng: int = 0,
) -> SweepResult:
    """Run the approximation stage for every grid cell.

    ``temperatures=None`` uses the paper's MRE-based policy per multiplier
    (one temperature each); passing a tuple sweeps every temperature for
    every multiplier (the Table III protocol).
    """
    for method in methods:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; choose from {METHODS}")
    train_config = train_config or TrainConfig()
    result = SweepResult(
        config={
            "methods": list(methods),
            "temperatures": list(temperatures) if temperatures else "auto",
            "epochs": train_config.epochs,
            "batch_size": train_config.batch_size,
            "lr": train_config.lr,
        }
    )
    log = obs_events.get_event_log()
    for item in multipliers:
        mult = resolve_multiplier(item)
        mre = mean_relative_error(mult)
        temps = temperatures or (recommended_t2(mre),)
        for temperature in temps:
            for method in methods:
                cell = f"sweep[{mult.name}/{method}/T{temperature:g}]"
                log.stage(cell, "start")
                _, stage = approximation_stage(
                    quant_model,
                    data,
                    mult,
                    method=method,
                    train_config=train_config,
                    temperature=temperature,
                    rng=rng,
                )
                log.stage(
                    cell,
                    "end",
                    accuracy_before=stage.accuracy_before,
                    accuracy_after=stage.accuracy_after,
                    duration=stage.history.wall_time,
                )
                result.points.append(
                    SweepPoint(
                        multiplier=mult.name,
                        method=method,
                        temperature=temperature,
                        mre=mre,
                        energy_savings=mult.energy_savings,
                        initial_accuracy=stage.accuracy_before,
                        final_accuracy=stage.accuracy_after,
                        best_accuracy=stage.history.best_accuracy,
                        wall_time=stage.history.wall_time,
                    )
                )
    return result
