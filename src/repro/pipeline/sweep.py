"""Parameter-sweep harness over multipliers, methods and temperatures.

Productises what the table benchmarks do: run the approximation stage of
Algorithm 1 over a grid, collect a structured result set, and export it as
JSON for downstream analysis. Used by the examples and available to
library users who want the paper's protocol on their own models.

The sweep is fault-isolated (``docs/RESILIENCE.md``): every cell runs
inside a try/except boundary with optional per-cell retries, so one bad
multiplier becomes a recorded :class:`SweepPoint` failure (error type,
message, traceback, attempt count) instead of killing the grid. With
``state_path`` set, the partial result is persisted atomically after
every cell, and ``resume=True`` skips already-completed cells — an
interrupted sweep continues from the next cell, not from scratch.

Grid cells are independent, so ``workers > 1`` runs them across a worker
pool (``docs/PERFORMANCE.md``) while keeping every resilience property:
cells still retry and fail in isolation (inside the worker), the partial
state is still persisted after every completed cell, ``resume`` still
skips by cell key, and the returned points are ordered exactly like a
serial sweep's — on a fixed seed the parallel result is point-for-point
identical to the serial one.
"""

from __future__ import annotations

import time as _time
from dataclasses import asdict, dataclass, field, fields
from functools import partial
from pathlib import Path

from repro.approx.metrics import mean_relative_error
from repro.approx.multiplier import Multiplier
from repro.data.synthetic_cifar import Dataset
from repro.distill.approxkd import recommended_t2
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.parallel import (
    amortized_workers,
    get_default_config,
    map_workers,
    resolve_backend,
)
from repro.pipeline.algorithm1 import METHODS, approximation_stage
from repro.resilience.retry import FailureRecord, call_with_retry
from repro.sim.proxsim import resolve_multiplier
from repro.train.trainer import TrainConfig
from repro.utils.serialization import load_results, save_results


@dataclass(frozen=True)
class SweepPoint:
    """One (multiplier, method, temperature) cell of the sweep grid.

    ``status`` is ``"ok"`` for a completed cell and ``"failed"`` for one
    whose every attempt raised; failed cells carry the error as data
    (``error_type``/``error``/``traceback``/``attempts``) and ``None`` in
    the accuracy fields.
    """

    multiplier: str
    method: str
    temperature: float
    mre: float
    energy_savings: float
    initial_accuracy: float | None
    final_accuracy: float | None
    best_accuracy: float | None
    wall_time: float
    status: str = "ok"
    error_type: str | None = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepResult:
    """All points of one sweep plus its configuration."""

    points: list[SweepPoint] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    def best_point(self) -> SweepPoint:
        candidates = [p for p in self.points if p.ok]
        if not candidates:
            raise ConfigError(
                "empty sweep" if not self.points else "sweep has no successful points"
            )
        return max(candidates, key=lambda p: p.final_accuracy)

    def filter(
        self,
        multiplier: str | None = None,
        method: str | None = None,
        include_failed: bool = False,
    ):
        """Successful points matching the given multiplier and/or method.

        ``include_failed=True`` also returns the recorded failure cells.
        """
        return [
            p
            for p in self.points
            if (include_failed or p.ok)
            and (multiplier is None or p.multiplier == multiplier)
            and (method is None or p.method == method)
        ]

    def failures(self) -> list[SweepPoint]:
        """The recorded failure cells of the sweep."""
        return [p for p in self.points if not p.ok]

    def to_json(self, path: str | Path) -> None:
        """Serialise the sweep (points + config) to a JSON file (atomic)."""
        save_results(
            {"config": self.config, "points": [asdict(p) for p in self.points]},
            path,
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "SweepResult":
        """Load a sweep saved by :meth:`to_json` (old files load fine —
        pre-resilience points default to ``status="ok"``)."""
        payload = load_results(path)
        known = {f.name for f in fields(SweepPoint)}
        points = [
            SweepPoint(**{k: v for k, v in p.items() if k in known})
            for p in payload.get("points", [])
        ]
        return cls(points=points, config=payload.get("config", {}))


def _item_name(item: "str | Multiplier") -> str:
    """Canonical grid name of a sweep input, resolvable or not.

    Both the failed-resolve path and the successful path key their cells
    through this, so a cell keeps one identity across runs — a resume
    after a transient resolve failure neither duplicates nor skips it.
    """
    return item.name if isinstance(item, Multiplier) else str(item)


def _cell_key(multiplier: str, method: str, temperature: float) -> tuple[str, str, float]:
    """The resume identity of one grid cell."""
    return (str(multiplier), str(method), float(temperature))


@dataclass(frozen=True)
class _Cell:
    """One grid cell scheduled for execution, in grid order."""

    index: int
    name: str
    method: str
    temperature: float
    mult: Multiplier | None  # None when the multiplier failed to resolve
    mre: float
    energy_savings: float
    resolve_failure: FailureRecord | None

    @property
    def key(self) -> tuple[str, str, float]:
        return _cell_key(self.name, self.method, self.temperature)


@dataclass(frozen=True)
class _CellContext:
    """Everything a worker needs to run one cell (picklable)."""

    quant_model: Module
    data: Dataset
    train_config: TrainConfig
    rng: int
    retries: int


def _failed_point(cell: _Cell, failure: FailureRecord) -> SweepPoint:
    return SweepPoint(
        multiplier=cell.name,
        method=cell.method,
        temperature=float(cell.temperature),
        mre=cell.mre,
        energy_savings=cell.energy_savings,
        initial_accuracy=None,
        final_accuracy=None,
        best_accuracy=None,
        wall_time=0.0,
        status="failed",
        error_type=failure.error_type,
        error=failure.error,
        traceback=failure.traceback,
        attempts=failure.attempts,
    )


def _run_cell(context: _CellContext, cell: _Cell) -> SweepPoint:
    """Execute one resolved grid cell behind the fault-isolation boundary.

    Module-level so the process backend can pickle it; events emitted here
    land on the worker's captured log and are merged back by the parent.
    """
    log = obs_events.get_event_log()
    where = f"sweep[{cell.name}/{cell.method}/T{cell.temperature:g}]"
    log.stage(where, "start")
    cell_started = _time.perf_counter()
    with tr.span(
        "sweep.cell",
        multiplier=cell.name,
        method=cell.method,
        temperature=cell.temperature,
    ):
        stage, failure = call_with_retry(
            lambda: approximation_stage(
                context.quant_model,
                context.data,
                cell.mult,
                method=cell.method,
                train_config=context.train_config,
                temperature=cell.temperature,
                rng=context.rng,
            )[1],
            where=where,
            retries=context.retries,
        )
    if met.enabled:
        met.observe("sweep.cell_seconds", _time.perf_counter() - cell_started)
    if failure is not None:
        log.stage(where, "end", status="failed", error=failure.error)
        return _failed_point(cell, failure)
    log.stage(
        where,
        "end",
        accuracy_before=stage.accuracy_before,
        accuracy_after=stage.accuracy_after,
        duration=stage.history.wall_time,
    )
    return SweepPoint(
        multiplier=cell.name,
        method=cell.method,
        temperature=cell.temperature,
        mre=cell.mre,
        energy_savings=cell.energy_savings,
        initial_accuracy=stage.accuracy_before,
        final_accuracy=stage.accuracy_after,
        best_accuracy=stage.history.best_accuracy,
        wall_time=stage.history.wall_time,
    )


def _build_grid(
    multipliers: "list[str | Multiplier]",
    methods: tuple[str, ...],
    temperatures: "tuple[float, ...] | None",
) -> list[_Cell]:
    """Resolve every multiplier and lay out the grid in serial cell order.

    Resolution failures are retried once and recorded on their cells (one
    per method/temperature, so the grid shape stays predictable).
    """
    cells: list[_Cell] = []
    for item in multipliers:
        name = _item_name(item)
        resolved, failure = call_with_retry(
            lambda item=item: _resolve(item), where=f"sweep[{name}]"
        )
        if failure is not None:
            mult, mre, savings = None, 0.0, 0.0
            temps = temperatures or (0.0,)
        else:
            mult, mre = resolved
            savings = mult.energy_savings
            temps = temperatures or (recommended_t2(mre),)
        for temperature in temps:
            for method in methods:
                cells.append(
                    _Cell(
                        index=len(cells),
                        name=name,
                        method=method,
                        temperature=float(temperature),
                        mult=mult,
                        mre=mre,
                        energy_savings=savings,
                        resolve_failure=failure,
                    )
                )
    return cells


def run_sweep(
    quant_model: Module,
    data: Dataset,
    multipliers: list[str | Multiplier],
    methods: tuple[str, ...] = ("normal", "approxkd_ge"),
    temperatures: tuple[float, ...] | None = None,
    train_config: TrainConfig | None = None,
    rng: int = 0,
    retries: int = 0,
    state_path: str | Path | None = None,
    resume: bool = False,
    workers: int | None = None,
    prefilter: int | None = None,
) -> SweepResult:
    """Run the approximation stage for every grid cell.

    ``temperatures=None`` uses the paper's MRE-based policy per multiplier
    (one temperature each); passing a tuple sweeps every temperature for
    every multiplier (the Table III protocol).

    ``prefilter=N`` ranks the requested multipliers by their analytic
    error statistics (:func:`repro.ge.zoo.prefilter_multipliers`,
    milliseconds per candidate) and sweeps only the ``N`` most promising —
    the dropped candidates never cost a training cell. Unresolvable names
    pass the filter untouched and fail in their cells as usual.

    A raising cell is retried ``retries`` times, then recorded as a
    structured failure — the grid always completes. ``state_path``
    persists the partial result atomically after every cell;
    ``resume=True`` reloads it and skips cells already present (completed
    *or* recorded as failed), so a killed sweep restarts from the
    interrupted cell.

    ``workers > 1`` executes the cells on a worker pool (``None`` uses the
    process-wide :mod:`repro.parallel` default). Each cell is seeded
    independently of schedule, and points are assembled in grid order, so
    the result is point-for-point identical to the serial sweep.
    """
    for method in methods:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; choose from {METHODS}")
    train_config = train_config or TrainConfig()
    parallel_config = get_default_config().with_workers(workers)
    log = obs_events.get_event_log()
    if prefilter is not None:
        from repro.ge.zoo import prefilter_multipliers

        names = [_item_name(item) for item in multipliers]
        kept = set(prefilter_multipliers(names, prefilter))
        dropped = sorted(set(names) - kept)
        multipliers = [item for item in multipliers if _item_name(item) in kept]
        if dropped and log.enabled:
            log.emit("sweep_prefilter", keep=prefilter, dropped=dropped)
    result = SweepResult(
        config={
            "methods": list(methods),
            "temperatures": list(temperatures) if temperatures else "auto",
            "epochs": train_config.epochs,
            "batch_size": train_config.batch_size,
            "lr": train_config.lr,
            "workers": parallel_config.workers,
            "prefilter": prefilter,
        }
    )
    if resume:
        if state_path is None:
            raise ConfigError("resume=True requires state_path")
        if Path(state_path).exists():
            previous = SweepResult.from_json(state_path)
            result.points = previous.points
            if log.enabled:
                log.checkpoint(
                    "sweep_resume", path=str(state_path), completed=len(result.points)
                )
    done = {_cell_key(p.multiplier, p.method, p.temperature) for p in result.points}

    prior = list(result.points)
    pending = [c for c in _build_grid(multipliers, methods, temperatures) if c.key not in done]
    finished: dict[int, SweepPoint] = {}

    def record(cell: _Cell, point: SweepPoint) -> None:
        """Persist after every completed cell, keeping grid order."""
        finished[cell.index] = point
        result.points = prior + [finished[i] for i in sorted(finished)]
        if state_path is not None:
            result.to_json(state_path)
        met.emit_snapshot(scope="sweep_cell", cell=cell.key)

    context = _CellContext(quant_model, data, train_config, rng, retries)
    # Fan-out cannot amortise on a single usable CPU or a near-empty grid
    # (docs/PERFORMANCE.md); fall back to the inline loop.
    serial = (
        resolve_backend(parallel_config) == "serial"
        or amortized_workers(parallel_config.workers, tasks=len(pending)) <= 1
    )
    if serial:
        for cell in pending:
            if cell.resolve_failure is not None:
                record(cell, _failed_point(cell, cell.resolve_failure))
            else:
                record(cell, _run_cell(context, cell))
        return result

    # Parallel: broken-multiplier cells materialise instantly in the
    # parent; resolved cells fan out, persisting as each one completes.
    runnable = [cell for cell in pending if cell.resolve_failure is None]
    for cell in pending:
        if cell.resolve_failure is not None:
            record(cell, _failed_point(cell, cell.resolve_failure))
    map_workers(
        partial(_run_cell, context),
        runnable,
        parallel_config,
        on_result=lambda position, point: record(runnable[position], point),
    )
    return result


def _resolve(item: "str | Multiplier") -> tuple[Multiplier, float]:
    mult = resolve_multiplier(item)
    return mult, mean_relative_error(mult)
