"""Parameter-sweep harness over multipliers, methods and temperatures.

Productises what the table benchmarks do: run the approximation stage of
Algorithm 1 over a grid, collect a structured result set, and export it as
JSON for downstream analysis. Used by the examples and available to
library users who want the paper's protocol on their own models.

The sweep is fault-isolated (``docs/RESILIENCE.md``): every cell runs
inside a try/except boundary with optional per-cell retries, so one bad
multiplier becomes a recorded :class:`SweepPoint` failure (error type,
message, traceback, attempt count) instead of killing the grid. With
``state_path`` set, the partial result is persisted atomically after
every cell, and ``resume=True`` skips already-completed cells — an
interrupted sweep continues from the next cell, not from scratch.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.approx.metrics import mean_relative_error
from repro.approx.multiplier import Multiplier
from repro.data.synthetic_cifar import Dataset
from repro.distill.approxkd import recommended_t2
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.pipeline.algorithm1 import METHODS, approximation_stage
from repro.resilience.retry import call_with_retry
from repro.sim.proxsim import resolve_multiplier
from repro.train.trainer import TrainConfig
from repro.utils.serialization import load_results, save_results


@dataclass(frozen=True)
class SweepPoint:
    """One (multiplier, method, temperature) cell of the sweep grid.

    ``status`` is ``"ok"`` for a completed cell and ``"failed"`` for one
    whose every attempt raised; failed cells carry the error as data
    (``error_type``/``error``/``traceback``/``attempts``) and ``None`` in
    the accuracy fields.
    """

    multiplier: str
    method: str
    temperature: float
    mre: float
    energy_savings: float
    initial_accuracy: float | None
    final_accuracy: float | None
    best_accuracy: float | None
    wall_time: float
    status: str = "ok"
    error_type: str | None = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepResult:
    """All points of one sweep plus its configuration."""

    points: list[SweepPoint] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    def best_point(self) -> SweepPoint:
        candidates = [p for p in self.points if p.ok]
        if not candidates:
            raise ConfigError(
                "empty sweep" if not self.points else "sweep has no successful points"
            )
        return max(candidates, key=lambda p: p.final_accuracy)

    def filter(
        self,
        multiplier: str | None = None,
        method: str | None = None,
        include_failed: bool = False,
    ):
        """Successful points matching the given multiplier and/or method.

        ``include_failed=True`` also returns the recorded failure cells.
        """
        return [
            p
            for p in self.points
            if (include_failed or p.ok)
            and (multiplier is None or p.multiplier == multiplier)
            and (method is None or p.method == method)
        ]

    def failures(self) -> list[SweepPoint]:
        """The recorded failure cells of the sweep."""
        return [p for p in self.points if not p.ok]

    def to_json(self, path: str | Path) -> None:
        """Serialise the sweep (points + config) to a JSON file (atomic)."""
        save_results(
            {"config": self.config, "points": [asdict(p) for p in self.points]},
            path,
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "SweepResult":
        """Load a sweep saved by :meth:`to_json` (old files load fine —
        pre-resilience points default to ``status="ok"``)."""
        payload = load_results(path)
        known = {f.name for f in fields(SweepPoint)}
        points = [
            SweepPoint(**{k: v for k, v in p.items() if k in known})
            for p in payload.get("points", [])
        ]
        return cls(points=points, config=payload.get("config", {}))


def run_sweep(
    quant_model: Module,
    data: Dataset,
    multipliers: list[str | Multiplier],
    methods: tuple[str, ...] = ("normal", "approxkd_ge"),
    temperatures: tuple[float, ...] | None = None,
    train_config: TrainConfig | None = None,
    rng: int = 0,
    retries: int = 0,
    state_path: str | Path | None = None,
    resume: bool = False,
) -> SweepResult:
    """Run the approximation stage for every grid cell.

    ``temperatures=None`` uses the paper's MRE-based policy per multiplier
    (one temperature each); passing a tuple sweeps every temperature for
    every multiplier (the Table III protocol).

    A raising cell is retried ``retries`` times, then recorded as a
    structured failure — the grid always completes. ``state_path``
    persists the partial result atomically after every cell;
    ``resume=True`` reloads it and skips cells already present (completed
    *or* recorded as failed), so a killed sweep restarts from the
    interrupted cell.
    """
    for method in methods:
        if method not in METHODS:
            raise ConfigError(f"unknown method {method!r}; choose from {METHODS}")
    train_config = train_config or TrainConfig()
    result = SweepResult(
        config={
            "methods": list(methods),
            "temperatures": list(temperatures) if temperatures else "auto",
            "epochs": train_config.epochs,
            "batch_size": train_config.batch_size,
            "lr": train_config.lr,
        }
    )
    log = obs_events.get_event_log()
    if resume:
        if state_path is None:
            raise ConfigError("resume=True requires state_path")
        if Path(state_path).exists():
            previous = SweepResult.from_json(state_path)
            result.points = previous.points
            if log.enabled:
                log.checkpoint(
                    "sweep_resume", path=str(state_path), completed=len(result.points)
                )
    done = {(p.multiplier, p.method, float(p.temperature)) for p in result.points}

    def record(point: SweepPoint) -> None:
        result.points.append(point)
        if state_path is not None:
            result.to_json(state_path)

    for item in multipliers:
        resolved, failure = call_with_retry(
            lambda item=item: _resolve(item), where=f"sweep[{item}]"
        )
        if failure is not None:
            # The multiplier itself is broken: record one failed cell per
            # method so the grid shape stays predictable.
            for temperature in temperatures or (0.0,):
                for method in methods:
                    key = (str(item), method, float(temperature))
                    if key in done:
                        continue
                    record(
                        SweepPoint(
                            multiplier=str(item),
                            method=method,
                            temperature=float(temperature),
                            mre=0.0,
                            energy_savings=0.0,
                            initial_accuracy=None,
                            final_accuracy=None,
                            best_accuracy=None,
                            wall_time=0.0,
                            status="failed",
                            error_type=failure.error_type,
                            error=failure.error,
                            traceback=failure.traceback,
                            attempts=failure.attempts,
                        )
                    )
            continue
        mult, mre = resolved
        temps = temperatures or (recommended_t2(mre),)
        for temperature in temps:
            for method in methods:
                key = (mult.name, method, float(temperature))
                if key in done:
                    continue
                cell = f"sweep[{mult.name}/{method}/T{temperature:g}]"
                log.stage(cell, "start")
                stage, failure = call_with_retry(
                    lambda: approximation_stage(
                        quant_model,
                        data,
                        mult,
                        method=method,
                        train_config=train_config,
                        temperature=temperature,
                        rng=rng,
                    )[1],
                    where=cell,
                    retries=retries,
                )
                if failure is not None:
                    log.stage(cell, "end", status="failed", error=failure.error)
                    record(
                        SweepPoint(
                            multiplier=mult.name,
                            method=method,
                            temperature=temperature,
                            mre=mre,
                            energy_savings=mult.energy_savings,
                            initial_accuracy=None,
                            final_accuracy=None,
                            best_accuracy=None,
                            wall_time=0.0,
                            status="failed",
                            error_type=failure.error_type,
                            error=failure.error,
                            traceback=failure.traceback,
                            attempts=failure.attempts,
                        )
                    )
                    continue
                log.stage(
                    cell,
                    "end",
                    accuracy_before=stage.accuracy_before,
                    accuracy_after=stage.accuracy_after,
                    duration=stage.history.wall_time,
                )
                record(
                    SweepPoint(
                        multiplier=mult.name,
                        method=method,
                        temperature=temperature,
                        mre=mre,
                        energy_savings=mult.energy_savings,
                        initial_accuracy=stage.accuracy_before,
                        final_accuracy=stage.accuracy_after,
                        best_accuracy=stage.history.best_accuracy,
                        wall_time=stage.history.wall_time,
                    )
                )
    return result


def _resolve(item: "str | Multiplier") -> tuple[Multiplier, float]:
    mult = resolve_multiplier(item)
    return mult, mean_relative_error(mult)
