"""End-to-end optimization flow (Algorithm 1) and comparison harnesses."""

from repro.pipeline.algorithm1 import (
    METHODS,
    Algorithm1Result,
    StageResult,
    approximation_stage,
    quantization_stage,
    run_algorithm1,
)
from repro.pipeline.compare import MethodComparison, compare_methods
from repro.pipeline.replicate import ReplicateSummary, replicate_approximation_stage
from repro.pipeline.sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "METHODS",
    "StageResult",
    "Algorithm1Result",
    "quantization_stage",
    "approximation_stage",
    "run_algorithm1",
    "MethodComparison",
    "compare_methods",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "ReplicateSummary",
    "replicate_approximation_stage",
]
