"""Seed replication for statistically honest method comparisons.

The smoke-scale experiments run at tens of SGD steps, where single-seed
differences between fine-tuning methods can be noise. This module repeats a
stage across seeds and reports mean/std/min/max so comparisons can be made
with error bars — the missing statistical hygiene for small-budget runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.approx.multiplier import Multiplier
from repro.data.synthetic_cifar import Dataset
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.pipeline.algorithm1 import approximation_stage
from repro.train.trainer import TrainConfig


@dataclass(frozen=True)
class ReplicateSummary:
    """Accuracy statistics of one method across seeds."""

    method: str
    multiplier: str
    seeds: tuple[int, ...]
    final_accuracies: tuple[float, ...]
    mean: float
    std: float
    min: float
    max: float

    def overlaps(self, other: "ReplicateSummary", sigmas: float = 1.0) -> bool:
        """True when the ±``sigmas``·std intervals of both summaries overlap
        — i.e. the two methods are not separable at this budget."""
        lo_self, hi_self = self.mean - sigmas * self.std, self.mean + sigmas * self.std
        lo_other, hi_other = (
            other.mean - sigmas * other.std,
            other.mean + sigmas * other.std,
        )
        return lo_self <= hi_other and lo_other <= hi_self


def replicate_approximation_stage(
    quant_model: Module,
    data: Dataset,
    multiplier: Multiplier | str,
    method: str,
    train_config: TrainConfig,
    seeds: tuple[int, ...] = (0, 1, 2),
    temperature: float = 5.0,
) -> ReplicateSummary:
    """Run the approximation stage once per seed and summarise."""
    if not seeds:
        raise ConfigError("need at least one seed")
    finals = []
    for seed in seeds:
        config = replace(train_config, seed=seed)
        _, result = approximation_stage(
            quant_model,
            data,
            multiplier,
            method=method,
            train_config=config,
            temperature=temperature,
            rng=seed,
        )
        finals.append(result.accuracy_after)
    arr = np.asarray(finals)
    name = multiplier if isinstance(multiplier, str) else multiplier.name
    return ReplicateSummary(
        method=method,
        multiplier=name,
        seeds=tuple(seeds),
        final_accuracies=tuple(float(a) for a in arr),
        mean=float(arr.mean()),
        std=float(arr.std()),
        min=float(arr.min()),
        max=float(arr.max()),
    )
