"""Method-comparison harness used by the table benchmarks.

Runs the approximation stage of Algorithm 1 with several fine-tuning
methods on the same starting quantized model and multiplier, so the
resulting accuracies are directly comparable (Tables V–VII of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.metrics import mean_relative_error
from repro.approx.multiplier import Multiplier
from repro.approx.plan import cache_stats
from repro.data.synthetic_cifar import Dataset
from repro.distill.approxkd import recommended_t2
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.pipeline.algorithm1 import METHODS, StageResult, approximation_stage
from repro.sim.proxsim import resolve_multiplier
from repro.train.trainer import TrainConfig


@dataclass
class MethodComparison:
    """Per-multiplier comparison of fine-tuning methods."""

    multiplier_name: str
    mre: float
    energy_savings: float
    initial_accuracy: float
    results: dict[str, StageResult] = field(default_factory=dict)

    def final_accuracy(self, method: str) -> float:
        return self.results[method].accuracy_after

    def best_method(self) -> str:
        return max(self.results, key=lambda m: self.results[m].accuracy_after)


def compare_methods(
    quant_model: Module,
    data: Dataset,
    multiplier: Multiplier | str,
    methods: tuple[str, ...] = METHODS,
    train_config: TrainConfig | None = None,
    temperature: float | None = None,
    alpha: float = 1e-11,
    rng: int = 0,
) -> MethodComparison:
    """Fine-tune one multiplier with each method and collect the results.

    ``temperature`` defaults to the paper's Table III policy
    (:func:`repro.distill.approxkd.recommended_t2`) based on the
    multiplier's measured MRE.
    """
    mult = resolve_multiplier(multiplier)
    mre = mean_relative_error(mult)
    if temperature is None:
        temperature = recommended_t2(mre)
    comparison = MethodComparison(
        multiplier_name=mult.name,
        mre=mre,
        energy_savings=mult.energy_savings,
        initial_accuracy=0.0,
    )
    log = obs_events.get_event_log()
    for method in methods:
        _, result = approximation_stage(
            quant_model,
            data,
            mult,
            method=method,
            train_config=train_config,
            temperature=temperature,
            alpha=alpha,
            rng=rng,
        )
        comparison.results[method] = result
        comparison.initial_accuracy = result.accuracy_before
        if log.enabled:
            # Kernel-plan cache pressure per method (cumulative process-wide
            # counters; only non-zero under --profile).
            log.emit(
                "plan_cache",
                method=method,
                multiplier=mult.name,
                **cache_stats(),
            )
    return comparison
