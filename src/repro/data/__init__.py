"""Synthetic CIFAR10-like data, loaders, augmentation and the dataset protocol."""

from repro.data.dataloader import augment_batch, iterate_batches
from repro.data.protocol import DatasetProtocol
from repro.data.synthetic_cifar import Dataset, make_synthetic_cifar

__all__ = [
    "Dataset",
    "DatasetProtocol",
    "make_synthetic_cifar",
    "iterate_batches",
    "augment_batch",
]
