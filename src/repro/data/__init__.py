"""Synthetic CIFAR10-like data, loaders and augmentation."""

from repro.data.dataloader import augment_batch, iterate_batches
from repro.data.synthetic_cifar import Dataset, make_synthetic_cifar

__all__ = ["Dataset", "make_synthetic_cifar", "iterate_batches", "augment_batch"]
