"""Minibatch iteration and augmentation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DataError
from repro.utils.rng import new_rng


def iterate_batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng=None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches."""
    if len(x) != len(y):
        raise DataError(f"features ({len(x)}) and labels ({len(y)}) length mismatch")
    if batch_size < 1:
        raise DataError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(x))
    if shuffle:
        new_rng(rng).shuffle(indices)
    for start in range(0, len(x), batch_size):
        idx = indices[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield x[idx], y[idx]


def augment_batch(
    x: np.ndarray,
    rng=None,
    flip_prob: float = 0.5,
    max_shift: int = 2,
) -> np.ndarray:
    """Random horizontal flip + zero-padded random shift (CIFAR-style)."""
    rng = new_rng(rng)
    out = x.copy()
    n = len(out)
    flips = rng.random(n) < flip_prob
    out[flips] = out[flips, :, :, ::-1]
    if max_shift > 0:
        h, w = out.shape[2], out.shape[3]
        padded = np.pad(
            out, ((0, 0), (0, 0), (max_shift, max_shift), (max_shift, max_shift))
        )
        dys = rng.integers(0, 2 * max_shift + 1, size=n)
        dxs = rng.integers(0, 2 * max_shift + 1, size=n)
        for i in range(n):
            out[i] = padded[i, :, dys[i] : dys[i] + h, dxs[i] : dxs[i] + w]
    return out
