"""Formal dataset protocol (first slice of the pluggable data interface).

Pipelines, benchmarks and the serving load generator consume datasets
through three members instead of reaching into loader internals:

- :attr:`DatasetProtocol.io_shape` — ``(input_shape, num_classes)``,
  enough to build a matching model head;
- :meth:`DatasetProtocol.train_batches` — shuffled minibatch iterator
  over the training split;
- :meth:`DatasetProtocol.test_batches` — deterministic, in-order
  minibatch iterator over the held-out split.

Any object with these members is a dataset — the protocol is
``runtime_checkable``, so ``isinstance(obj, DatasetProtocol)`` verifies a
new workload structurally with no registration or base class. The
in-memory synthetic CIFAR10-like :class:`~repro.data.synthetic_cifar.Dataset`
is the reference implementation; streaming or sharded sources implement
the same three members and drop into every consumer unchanged.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

Batch = tuple[np.ndarray, np.ndarray]


@runtime_checkable
class DatasetProtocol(Protocol):
    """Structural interface every dataset-like object provides."""

    @property
    def io_shape(self) -> tuple[tuple[int, ...], int]:
        """``(input_shape, num_classes)`` — per-sample shape, label arity."""
        ...

    def train_batches(
        self,
        batch_size: int,
        *,
        shuffle: bool = True,
        rng=None,
        drop_last: bool = False,
    ) -> Iterator[Batch]:
        """Minibatches ``(x, y)`` over the training split."""
        ...

    def test_batches(self, batch_size: int) -> Iterator[Batch]:
        """Deterministic, in-order minibatches over the held-out split."""
        ...
