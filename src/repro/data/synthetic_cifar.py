"""Deterministic synthetic 10-class image dataset (CIFAR10 stand-in).

CIFAR10 itself cannot be downloaded in the offline reproduction environment,
so experiments run on a procedurally generated 10-class RGB image task with
the same tensor shapes (N, 3, 32, 32 by default). Each class is defined by a
distinct combination of oriented grating frequency/angle, a secondary
texture (radial blob or checkerboard) and a colour direction; per-sample
randomness (phase, jitter, amplitude, additive noise) makes the task require
genuine learning while remaining solvable to high accuracy by small CNNs —
the regime in which the paper's methodology operates.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DataError
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class Dataset:
    """In-memory dataset split into train and test parts.

    The reference implementation of the formal dataset protocol
    (:class:`repro.data.protocol.DatasetProtocol`): consumers draw
    batches through :meth:`train_batches` / :meth:`test_batches` and size
    models from :attr:`io_shape` instead of touching the arrays directly.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.train_x.shape[1:]

    @property
    def io_shape(self) -> tuple[tuple[int, ...], int]:
        """``(input_shape, num_classes)`` per the dataset protocol."""
        return tuple(self.train_x.shape[1:]), self.num_classes

    def train_batches(
        self,
        batch_size: int,
        *,
        shuffle: bool = True,
        rng=None,
        drop_last: bool = False,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Minibatches over the training split (shuffled by default)."""
        from repro.data.dataloader import iterate_batches

        return iterate_batches(
            self.train_x,
            self.train_y,
            batch_size,
            shuffle=shuffle,
            rng=rng,
            drop_last=drop_last,
        )

    def test_batches(self, batch_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Deterministic, in-order minibatches over the held-out split."""
        from repro.data.dataloader import iterate_batches

        return iterate_batches(self.test_x, self.test_y, batch_size, shuffle=False)

    def __post_init__(self) -> None:
        if len(self.train_x) != len(self.train_y) or len(self.test_x) != len(self.test_y):
            raise DataError("features/labels length mismatch")


# Fixed colour directions, one per class (RGB weights).
_CLASS_COLOURS = np.array(
    [
        [1.0, 0.2, 0.2],
        [0.2, 1.0, 0.2],
        [0.2, 0.2, 1.0],
        [1.0, 1.0, 0.2],
        [1.0, 0.2, 1.0],
        [0.2, 1.0, 1.0],
        [0.9, 0.6, 0.1],
        [0.4, 0.9, 0.5],
        [0.6, 0.4, 1.0],
        [0.8, 0.8, 0.8],
    ],
    dtype=np.float32,
)


def _grating(size: int, angle: float, freq: float, phase: float) -> np.ndarray:
    coords = np.linspace(-0.5, 0.5, size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    proj = xx * np.cos(angle) + yy * np.sin(angle)
    return np.sin(2.0 * np.pi * freq * proj + phase)


def _blob(size: int, cx: float, cy: float, sigma: float) -> np.ndarray:
    coords = np.linspace(-0.5, 0.5, size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    return np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * sigma**2))


def _checker(size: int, cells: int, phase: float) -> np.ndarray:
    coords = np.linspace(0.0, cells, size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    return np.sign(np.sin(np.pi * xx + phase) * np.sin(np.pi * yy + phase))


def _render_sample(label: int, size: int, num_classes: int, rng: np.random.Generator,
                   noise: float) -> np.ndarray:
    angle = np.pi * label / num_classes + rng.normal(0.0, 0.06)
    freq = 2.0 + (label % 5) + rng.normal(0.0, 0.15)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    base = _grating(size, angle, freq, phase)

    if label % 2 == 0:
        texture = _blob(size, rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2), 0.18)
    else:
        texture = _checker(size, 3 + label // 2, rng.uniform(0.0, np.pi))
    pattern = 0.7 * base + 0.5 * texture

    colour = _CLASS_COLOURS[label % len(_CLASS_COLOURS)].copy()
    colour += rng.normal(0.0, 0.05, size=3).astype(np.float32)
    image = pattern[None, :, :] * colour[:, None, None]
    image += rng.normal(0.0, noise, size=image.shape).astype(np.float32)
    return image.astype(np.float32)


def make_synthetic_cifar(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 32,
    num_classes: int = 10,
    noise: float = 0.3,
    seed: int = 0,
) -> Dataset:
    """Generate a balanced synthetic dataset.

    Parameters mirror the real CIFAR10 shapes by default; shrink
    ``image_size``/``num_train`` for CPU-fast benchmarks.
    """
    if num_classes < 2 or num_classes > len(_CLASS_COLOURS):
        raise DataError(f"num_classes must be in [2, {len(_CLASS_COLOURS)}]")
    if num_train < num_classes or num_test < num_classes:
        raise DataError("need at least one sample per class in each split")
    rng = new_rng(seed)

    def _make_split(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count) % num_classes
        rng.shuffle(labels)
        images = np.stack(
            [_render_sample(int(k), image_size, num_classes, rng, noise) for k in labels]
        )
        return images, labels.astype(np.int64)

    train_x, train_y = _make_split(num_train)
    test_x, test_y = _make_split(num_test)
    # Normalise with train statistics (per-channel), like CIFAR pipelines do.
    mean = train_x.mean(axis=(0, 2, 3), keepdims=True)
    std = train_x.std(axis=(0, 2, 3), keepdims=True) + 1e-6
    train_x = (train_x - mean) / std
    test_x = (test_x - mean) / std
    return Dataset(train_x, train_y, test_x, test_y, num_classes)
