"""The supported public API of :mod:`repro`, in one place.

Import nothing from this module — it re-documents what ``import repro``
already exposes. The names below (all reachable as ``repro.<name>``) are
the stability surface: ``tests/test_public_api.py`` snapshots them, so
removing or renaming one fails CI; everything imported from deeper
module paths is implementation detail that may change between PRs.

Data
----
- ``repro.make_synthetic_cifar(...)`` — the deterministic synthetic
  CIFAR10 stand-in used throughout the reproduction.
- ``repro.Dataset`` — its in-memory train/test container.
- ``repro.DatasetProtocol`` — the formal dataset contract
  (:mod:`repro.data.protocol`): ``io_shape``, ``train_batches()``,
  ``test_batches()``. Anything implementing it plugs into training,
  evaluation and the serving load generator.

Models and training
-------------------
- ``repro.create_model(name, ...)`` — model registry (``resnet20/32``,
  ``mobilenetv2``, ``simplecnn``, ``lenet5``, ``vggsmall``).
- ``repro.TrainConfig`` — epochs/batch size/LR/momentum/seed bundle
  accepted by every training stage.

Approximation
-------------
- ``repro.get_multiplier(name)`` / ``repro.Multiplier`` — approximate
  multiplier registry and base class (:mod:`repro.approx`).
- ``repro.PlanCache`` — the weight-stationary kernel-plan cache behind
  the fast quantized GEMM path (:mod:`repro.approx.plan`).

Pipeline (Algorithm 1)
----------------------
- ``repro.quantization_stage(...)`` — 8A4W quantization + KD fine-tune.
- ``repro.approximation_stage(...)`` — approximate retraining under a
  chosen multiplier and method.
- ``repro.run_algorithm1(...)`` — both stages end-to-end.
- ``repro.evaluate_accuracy(model, x, y)`` — test-set accuracy on the
  (possibly approximate) inference path.

Runtime configuration
---------------------
- ``repro.configure(**knobs)`` — process-wide knob overrides; returns
  the previous values for restoration.
- ``repro.config_scope(**knobs)`` — thread-local scoped overrides.
- The full precedence chain and knob registry live in
  :mod:`repro.config`; see ``docs/SERVING.md`` for the table.

Serving
-------
- ``repro.Server`` / ``repro.ServeConfig`` — micro-batched inference
  serving with replicas, backpressure and zero-downtime weight swap
  (:mod:`repro.serve`, ``docs/SERVING.md``).
- ``repro.Client`` — blocking/async submission with backpressure retry.

Errors
------
All library exceptions derive from ``repro.ReproError``; the serving
additions are ``ServeError`` and ``BackpressureError`` (importable from
:mod:`repro.errors` / :mod:`repro.serve`).
"""

from __future__ import annotations

PUBLIC_API: tuple[str, ...] = (
    "Client",
    "Dataset",
    "DatasetProtocol",
    "Multiplier",
    "PlanCache",
    "ServeConfig",
    "Server",
    "TrainConfig",
    "approximation_stage",
    "config_scope",
    "configure",
    "create_model",
    "evaluate_accuracy",
    "get_multiplier",
    "make_synthetic_cifar",
    "quantization_stage",
    "run_algorithm1",
)
