"""Multi-worker execution of embarrassingly parallel stages.

See ``docs/PERFORMANCE.md``. Entry points:

- :class:`ParallelConfig` / :func:`map_workers` — the executor layer used
  by ``run_sweep(workers=...)``, Monte-Carlo profiling and the chunked
  approximate GEMM;
- :func:`set_default_config` — process-wide worker default (the CLI's
  ``--workers`` flag lands here);
- :func:`fork_available` / :func:`resolve_backend` — platform probing.
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelConfig,
    amortized_workers,
    chunked,
    cpu_parallelism,
    effective_workers,
    force_parallel,
    fork_available,
    get_default_config,
    map_workers,
    persistent_executor,
    resolve_backend,
    set_default_config,
)

__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "amortized_workers",
    "chunked",
    "cpu_parallelism",
    "effective_workers",
    "force_parallel",
    "fork_available",
    "get_default_config",
    "map_workers",
    "persistent_executor",
    "resolve_backend",
    "set_default_config",
]
