"""Multi-worker executor: deterministic fan-out over independent work items.

The sweeps behind Tables 5-7, Monte-Carlo error profiling and large
approximate GEMMs are all embarrassingly parallel; this module is the one
place that knows how to spread them over workers (``docs/PERFORMANCE.md``):

- :class:`ParallelConfig` selects a worker count and a backend
  (``process`` via fork for Python-heavy work, ``thread`` for
  BLAS-dominated work, ``serial`` as the always-available fallback);
- :func:`map_workers` runs a function over items and returns results in
  **item order** regardless of completion order, spawning one
  statistically independent RNG per task when a seed is given — the same
  seed yields the same per-task streams at any worker count;
- worker processes capture their event-log records and profiling stats
  and ship them back with each result, so the parent's telemetry covers
  the whole fleet (:func:`repro.obs.profiling.merge_report`).

``workers=1`` (the default everywhere) executes inline with zero
overhead and no behaviour change; platforms without ``fork`` degrade to
the thread backend automatically.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import FIRST_EXCEPTION, Executor, ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

from repro import config
from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.utils.rng import spawn_rngs

BACKENDS = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ParallelConfig:
    """How a parallel region should execute.

    Parameters
    ----------
    workers:
        Number of concurrent workers; ``1`` means run serially inline.
    backend:
        ``"auto"`` picks ``process`` when fork is available and ``thread``
        otherwise; the explicit names force a backend, and ``"serial"``
        disables parallelism regardless of ``workers``.
    capture_obs:
        Capture event-log records and profiler stats inside worker
        processes and merge them back into the parent (process backend
        only; threads share the parent's log and registry directly).
    """

    workers: int = 1
    backend: str = "auto"
    capture_obs: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {self.backend!r}; choose from {BACKENDS}"
            )

    def with_workers(self, workers: int | None) -> "ParallelConfig":
        """This config with ``workers`` overridden (``None`` keeps it)."""
        return self if workers is None else replace(self, workers=workers)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(config: ParallelConfig) -> str:
    """The backend a config actually runs with on this platform."""
    if config.workers <= 1 or config.backend == "serial":
        return "serial"
    if config.backend == "thread":
        return "thread"
    # "process" and "auto" both need fork: the repo's models and datasets
    # pickle fine, but spawn would re-import numpy per worker and lose any
    # monkeypatched state callers rely on.
    return "process" if fork_available() else "thread"


def effective_workers(workers: int | None = None) -> int:
    """Worker count after applying the process-wide default config."""
    config = get_default_config().with_workers(workers)
    return 1 if resolve_backend(config) == "serial" else config.workers


def cpu_parallelism() -> int:
    """Usable hardware parallelism (the ``cpus`` knob overrides detection).

    The override — ``REPRO_CPUS`` or any higher :mod:`repro.config` tier —
    exists for tests and containers whose visible ``os.cpu_count()`` does
    not match the cores actually available.
    """
    value = config.resolve("cpus")
    if value is not None:
        return max(1, int(value))
    return os.cpu_count() or 1


def force_parallel() -> bool:
    """True when the ``force_parallel`` knob disables the small-work guard
    (``REPRO_FORCE_PARALLEL`` or any higher :mod:`repro.config` tier)."""
    return bool(config.resolve("force_parallel"))


def amortized_workers(
    workers: int | None,
    tasks: int,
    *,
    work: float | None = None,
    min_work: float = 0.0,
) -> int:
    """Worker count after the can-it-amortize guard (``docs/PERFORMANCE.md``).

    Pool dispatch has a fixed cost per task and per fork, so fanning out
    tiny workloads makes them *slower* — this is the one place that
    decides when fan-out cannot win and serial is the faster plan:

    - fewer than two tasks, or only one usable CPU
      (:func:`cpu_parallelism`), or
    - ``work`` (a caller-chosen size estimate, e.g. total MACs) below
      ``min_work``.

    ``REPRO_FORCE_PARALLEL=1`` bypasses the guard so the concurrency
    test-suite can exercise real pools on single-core CI runners.
    """
    requested = effective_workers(workers)
    if requested <= 1:
        return 1
    if force_parallel():
        return requested
    if tasks < 2 or cpu_parallelism() < 2:
        return 1
    if work is not None and work < min_work:
        return 1
    return requested


# ----------------------------------------------------------------------
# process-wide default (set by the CLI's --workers flag)
# ----------------------------------------------------------------------
_default_config = ParallelConfig()
_default_lock = threading.Lock()


def get_default_config() -> ParallelConfig:
    """The process-wide default :class:`ParallelConfig` (workers=1)."""
    return _default_config


def set_default_config(config: ParallelConfig) -> ParallelConfig:
    """Replace the default config; returns the previous one."""
    global _default_config
    with _default_lock:
        previous, _default_config = _default_config, config
    return previous


# ----------------------------------------------------------------------
# worker-side wrapper (module-level so the process backend can pickle it)
# ----------------------------------------------------------------------
@dataclass
class _WorkerResult:
    """A task's value plus the telemetry captured alongside it."""

    value: Any
    events: list[dict]
    profile: prof.ProfileReport | None
    pid: int
    spans: list | None = None  # finished tr.SpanRecord list (may be empty)
    metrics: dict | None = None  # met.MetricsRegistry.snapshot()


def _call_captured(
    fn: Callable,
    args: tuple,
    profile: bool,
    trace_ctx: "tr.TraceContext | None" = None,
    capture_metrics: bool = False,
) -> _WorkerResult:
    """Run ``fn(*args)`` in a worker process under a fresh capture scope.

    The forked child inherits the parent's event log *including its open
    sinks* (e.g. a ``--log-json`` file handle), so the first thing the
    wrapper does is swap in a private collecting log — worker records must
    travel back through the result, not race the parent on a shared file
    descriptor. Profiling state is likewise reset so the returned report
    is exactly this task's delta.

    Trace context shipped by the parent is adopted so the worker's spans
    parent onto the dispatching span; finished spans and a metrics
    snapshot travel back with the result for exact merge in the parent.
    """
    log = obs_events.EventLog()
    sink = log.add_sink(obs_events.CollectingSink())
    previous_log = obs_events.set_event_log(log)
    prof.reset_profiling()
    if profile:
        prof.enable_profiling()
    if trace_ctx is not None:
        tr.adopt_context(trace_ctx)
    if capture_metrics:
        met.set_metrics(met.MetricsRegistry())
        met.enable_metrics()
    else:
        # Uncaptured observations cannot travel back to the parent; keep
        # the (possibly inherited-enabled) metrics path off in the worker.
        met.disable_metrics()
    traced = trace_ctx is not None and trace_ctx.enabled
    try:
        if traced:
            with tr.span("parallel.task"):
                value = fn(*args)
        else:
            value = fn(*args)
    finally:
        obs_events.set_event_log(previous_log)
    report = prof.profile_report() if profile else None
    prof.reset_profiling()
    spans = tr.drain_spans() if traced else []
    metrics = met.get_metrics().snapshot() if capture_metrics else None
    return _WorkerResult(
        value=value,
        events=sink.records,
        profile=report,
        pid=os.getpid(),
        spans=spans,
        metrics=metrics,
    )


def _absorb(result: _WorkerResult) -> Any:
    """Merge a worker's captured telemetry into the parent and unwrap."""
    log = obs_events.get_event_log()
    if log.enabled:
        for record in result.events:
            payload = {
                k: v
                for k, v in record.items()
                if k not in ("type", "run", "seq", "t", "level")
            }
            log.emit(
                record.get("type", "event"),
                level=obs_events.level_from_name(record.get("level", "info")),
                worker=result.pid,
                **payload,
            )
    if result.profile is not None:
        prof.merge_report(result.profile)
    if result.spans:
        tr.get_trace_recorder().merge(result.spans)
    if result.metrics is not None:
        met.get_metrics().merge(result.metrics)
    return result.value


def map_workers(
    fn: Callable,
    items: Iterable,
    config: ParallelConfig | None = None,
    *,
    rng: "int | None" = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> list:
    """Run ``fn`` over ``items`` and return the results in item order.

    ``fn`` is called as ``fn(item)`` — or ``fn(item, task_rng)`` when
    ``rng`` is given, with one generator spawned per task from the seed so
    streams are independent of worker count and schedule. For the process
    backend ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one).

    ``on_result(index, value)`` fires in the parent in **completion
    order** as each task finishes — the hook sweeps use to persist partial
    state after every cell. Exceptions raised by ``fn`` propagate to the
    caller (pending tasks are cancelled); callers wanting fault isolation
    wrap their cells in :func:`repro.resilience.call_with_retry`.

    Worker-process event records are re-emitted on the parent log stamped
    with a ``worker`` PID (their envelope is restamped; the original
    relative times are worker-local and not comparable), and worker
    profiler stats are folded into the parent registry.
    """
    config = get_default_config() if config is None else config
    items = list(items)
    rngs = spawn_rngs(rng, len(items)) if rng is not None else None

    def task_args(index: int) -> tuple:
        return (items[index], rngs[index]) if rngs is not None else (items[index],)

    backend = resolve_backend(config)
    if backend == "serial" or len(items) <= 1:
        results = []
        for index in range(len(items)):
            value = fn(*task_args(index))
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results

    workers = min(config.workers, len(items))
    trace_ctx = tr.trace_context()
    executor: Executor
    if backend == "thread":
        # Threads share the parent's (now thread-safe) event log, profiler
        # registry, trace recorder and metrics registry; only the span
        # parentage needs installing per task (pool threads start with an
        # empty span stack and would otherwise produce orphan roots).
        executor = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro")
        if trace_ctx.enabled:
            submit = lambda i: executor.submit(  # noqa: E731
                tr.call_with_parent, trace_ctx.parent_id, fn, *task_args(i)
            )
        else:
            submit = lambda i: executor.submit(fn, *task_args(i))  # noqa: E731
        unwrap = lambda value: value  # noqa: E731
    else:
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("fork")
        )
        capture_profile = config.capture_obs and prof.enabled
        capture_metrics = config.capture_obs and met.enabled
        submit = lambda i: executor.submit(  # noqa: E731
            _call_captured,
            fn,
            task_args(i),
            capture_profile,
            trace_ctx if config.capture_obs else None,
            capture_metrics,
        )
        unwrap = _absorb if config.capture_obs else lambda r: r.value  # noqa: E731

    results: list = [None] * len(items)
    with executor:
        futures = {submit(index): index for index in range(len(items))}
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    index = futures[future]
                    value = unwrap(future.result())
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
        except BaseException:
            for future in pending:
                future.cancel()
            raise
    return results


def persistent_executor(
    workers: int, *, thread_name_prefix: str = "repro-worker"
) -> Executor:
    """A long-lived thread executor for resident services.

    Unlike :func:`map_workers` — which spins a pool up and down around one
    fan-out — this hands back an executor the caller owns for the life of
    a service. :mod:`repro.serve` runs its model replicas here: inference
    is BLAS-dominated (the GIL is released inside the GEMM), so threads
    scale while sharing the parent's event log, metrics registry and trace
    recorder directly. The caller must ``shutdown()`` it.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return ThreadPoolExecutor(max_workers=workers, thread_name_prefix=thread_name_prefix)


def chunked(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, order-preserving
    runs of near-equal length (no empty chunks)."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out, start = [], 0
    for index in range(chunks):
        stop = start + size + (1 if index < extra else 0)
        out.append(items[start:stop])
        start = stop
    return out
