"""Reproduction of *Knowledge Distillation and Gradient Estimation for Active
Error Compensation in Approximate Neural Networks* (De la Parra et al.,
DATE 2021).

The package is organised as one subpackage per subsystem:

- :mod:`repro.autograd` — pure-numpy reverse-mode automatic differentiation.
- :mod:`repro.nn` — neural-network layers and containers.
- :mod:`repro.models` — ResNet20/32, MobileNetV2 and small test CNNs.
- :mod:`repro.quant` — symmetric linear 8A4W quantization with STE.
- :mod:`repro.approx` — approximate multipliers (truncated, EvoApprox-style
  LUTs), approximate integer GEMM, MRE/energy metrics.
- :mod:`repro.ge` — Monte-Carlo error profiling and piecewise-linear gradient
  estimation of approximate GEMMs.
- :mod:`repro.distill` — knowledge-distillation losses and the two-stage
  ApproxKD scheme.
- :mod:`repro.train` — SGD optimizers, LR schedules, trainers and the
  baseline fine-tuners (normal/passive retraining, alpha-regularization).
- :mod:`repro.data` — synthetic CIFAR10-like dataset and loaders.
- :mod:`repro.sim` — ProxSim-style approximate execution of quantized models.
- :mod:`repro.pipeline` — Algorithm 1 end-to-end and experiment configs.
"""

from repro.errors import (
    AutogradError,
    CheckpointError,
    ConfigError,
    DataError,
    DivergenceError,
    MultiplierError,
    QuantizationError,
    ReproError,
    ShapeError,
)

__version__ = "1.0.0"

__all__ = [
    "AutogradError",
    "CheckpointError",
    "ConfigError",
    "DataError",
    "DivergenceError",
    "MultiplierError",
    "QuantizationError",
    "ReproError",
    "ShapeError",
    "__version__",
]

# Convenience re-exports of the most common entry points, loaded lazily so
# `import repro` stays cheap and the module graph stays acyclic.
_LAZY_EXPORTS = {
    "make_synthetic_cifar": ("repro.data", "make_synthetic_cifar"),
    "create_model": ("repro.models", "create_model"),
    "get_multiplier": ("repro.approx", "get_multiplier"),
    "quantization_stage": ("repro.pipeline", "quantization_stage"),
    "approximation_stage": ("repro.pipeline", "approximation_stage"),
    "run_algorithm1": ("repro.pipeline", "run_algorithm1"),
    "TrainConfig": ("repro.train", "TrainConfig"),
    "evaluate_accuracy": ("repro.sim", "evaluate_accuracy"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_LAZY_EXPORTS) | set(globals()))
