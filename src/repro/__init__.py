"""Reproduction of *Knowledge Distillation and Gradient Estimation for Active
Error Compensation in Approximate Neural Networks* (De la Parra et al.,
DATE 2021).

The package is organised as one subpackage per subsystem:

- :mod:`repro.autograd` — pure-numpy reverse-mode automatic differentiation.
- :mod:`repro.nn` — neural-network layers and containers.
- :mod:`repro.models` — ResNet20/32, MobileNetV2 and small test CNNs.
- :mod:`repro.quant` — symmetric linear 8A4W quantization with STE.
- :mod:`repro.approx` — approximate multipliers (truncated, EvoApprox-style
  LUTs), approximate integer GEMM, MRE/energy metrics.
- :mod:`repro.ge` — Monte-Carlo error profiling and piecewise-linear gradient
  estimation of approximate GEMMs.
- :mod:`repro.distill` — knowledge-distillation losses and the two-stage
  ApproxKD scheme.
- :mod:`repro.train` — SGD optimizers, LR schedules, trainers and the
  baseline fine-tuners (normal/passive retraining, alpha-regularization).
- :mod:`repro.data` — synthetic CIFAR10-like dataset and loaders.
- :mod:`repro.sim` — ProxSim-style approximate execution of quantized models.
- :mod:`repro.pipeline` — Algorithm 1 end-to-end and experiment configs.
- :mod:`repro.config` — unified runtime-knob resolution (one precedence
  chain for every ``REPRO_*`` setting).
- :mod:`repro.serve` — micro-batched inference serving on the plan-cached
  path.
- :mod:`repro.obs` / :mod:`repro.parallel` / :mod:`repro.resilience` —
  observability, multi-worker execution, fault tolerance.

The supported top-level surface is the names re-exported below (also
documented in :mod:`repro.api` and snapshot-tested by
``tests/test_public_api.py``); deeper imports reach into implementation
modules and carry no stability promise.
"""

from repro.errors import (
    AutogradError,
    CheckpointError,
    ConfigError,
    DataError,
    DivergenceError,
    MultiplierError,
    QuantizationError,
    ReproError,
    ShapeError,
)

__version__ = "1.0.0"

__all__ = [
    "AutogradError",
    "CheckpointError",
    "ConfigError",
    "DataError",
    "DivergenceError",
    "MultiplierError",
    "QuantizationError",
    "ReproError",
    "ShapeError",
    "__version__",
]

# The curated public API: stable re-exports of the supported entry
# points, loaded lazily so `import repro` stays cheap and the module
# graph stays acyclic. tests/test_public_api.py snapshots this table —
# additions are reviewed there, removals/renames are breaking.
_LAZY_EXPORTS = {
    # data
    "make_synthetic_cifar": ("repro.data", "make_synthetic_cifar"),
    "Dataset": ("repro.data", "Dataset"),
    "DatasetProtocol": ("repro.data", "DatasetProtocol"),
    # models / training
    "create_model": ("repro.models", "create_model"),
    "TrainConfig": ("repro.train", "TrainConfig"),
    # approximation
    "get_multiplier": ("repro.approx", "get_multiplier"),
    "Multiplier": ("repro.approx", "Multiplier"),
    "PlanCache": ("repro.approx", "PlanCache"),
    # pipeline (Algorithm 1)
    "quantization_stage": ("repro.pipeline", "quantization_stage"),
    "approximation_stage": ("repro.pipeline", "approximation_stage"),
    "run_algorithm1": ("repro.pipeline", "run_algorithm1"),
    # evaluation
    "evaluate_accuracy": ("repro.sim", "evaluate_accuracy"),
    # runtime configuration
    "configure": ("repro.config", "configure"),
    "config_scope": ("repro.config", "config_scope"),
    # serving
    "Server": ("repro.serve", "Server"),
    "ServeConfig": ("repro.serve", "ServeConfig"),
    "Client": ("repro.serve", "Client"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_LAZY_EXPORTS) | set(globals()))
