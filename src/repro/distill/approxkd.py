"""ApproxKD — the paper's two-stage knowledge distillation (section III-A).

Stage 1 (*quantization stage*) distills the full-precision teacher into the
8A4W-quantized student at temperature ``T1``. Stage 2 (*approximation
stage*) freezes the quantized model as the new teacher and distills it into
the approximate student at temperature ``T2``; the paper finds ``T2 > T1``
necessary for multipliers with large MRE because high temperatures flatten
the teacher distribution that the (differently-distributed) approximate
outputs must match.

This module provides the loss builders and temperature policy; the stage
drivers live in :mod:`repro.pipeline.algorithm1`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# Temperatures swept in the paper's ablation (Table III).
TEMPERATURE_GRID: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class ApproxKDConfig:
    """Temperatures and epoch budgets of the two distillation stages."""

    t1: float = 1.0  # quantization-stage temperature (paper uses T1 = 1)
    t2: float = 5.0  # approximation-stage temperature (T2 > T1 for large MRE)
    quantization_epochs: int = 30
    approximation_epochs: int = 30

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise ConfigError("distillation temperatures must be positive")
        if self.quantization_epochs < 0 or self.approximation_epochs < 0:
            raise ConfigError("epoch budgets must be non-negative")


def recommended_t2(mre: float) -> float:
    """Temperature policy distilled from the paper's Table III ablation.

    Low-MRE multipliers (< ~6%) prefer small temperatures, mid-MRE (~6-15%)
    prefer 5, and large-MRE multipliers need 10.
    """
    if mre < 0.06:
        return 2.0
    if mre < 0.15:
        return 5.0
    return 10.0
