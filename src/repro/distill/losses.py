"""Knowledge-distillation losses (Eqs. 1–3 of the paper).

The stage loss is the sum of a *hard* loss — plain cross-entropy against the
dataset labels (Eq. 1) — and a *soft* loss — cross-entropy between the
temperature-scaled teacher and student distributions, multiplied by ``T²``
to compensate the ``1/T²`` scaling of its gradients (Eqs. 2 and 3).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops_basic import add, mul
from repro.autograd.ops_loss import (
    cross_entropy_with_probs,
    softmax_cross_entropy,
    softmax_np,
)
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError


def hard_loss(student_logits: Tensor, labels: np.ndarray) -> Tensor:
    """``C_hard``: cross-entropy against hard labels (Eq. 1)."""
    return softmax_cross_entropy(student_logits, labels)


def soft_loss(
    student_logits: Tensor,
    teacher_logits: np.ndarray,
    temperature: float,
) -> Tensor:
    """``C_soft``: ``-T² Σ σ(y_t/T) log σ(y_s/T)`` (Eqs. 2/3), batch mean.

    Teacher logits are constants (no gradient flows into the teacher).
    """
    if temperature <= 0:
        raise ConfigError(f"distillation temperature must be positive, got {temperature}")
    t = float(temperature)
    targets = softmax_np(np.asarray(teacher_logits) / t, axis=1)
    scaled_student = mul(student_logits, 1.0 / t)
    return mul(cross_entropy_with_probs(scaled_student, targets), t * t)


def distillation_loss(
    student_logits: Tensor,
    teacher_logits: np.ndarray,
    labels: np.ndarray,
    temperature: float,
) -> Tensor:
    """Full stage loss ``C_s = C_soft + C_hard`` (Eq. 3 / ``C_s1``)."""
    return add(
        soft_loss(student_logits, teacher_logits, temperature),
        hard_loss(student_logits, labels),
    )
