"""Knowledge distillation for approximate CNNs (ApproxKD)."""

from repro.distill.approxkd import (
    TEMPERATURE_GRID,
    ApproxKDConfig,
    recommended_t2,
)
from repro.distill.losses import distillation_loss, hard_loss, soft_loss
from repro.distill.teacher import clone_model, kd_batch_loss, precompute_teacher_logits

__all__ = [
    "hard_loss",
    "soft_loss",
    "distillation_loss",
    "clone_model",
    "precompute_teacher_logits",
    "kd_batch_loss",
    "ApproxKDConfig",
    "TEMPERATURE_GRID",
    "recommended_t2",
]
