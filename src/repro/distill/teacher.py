"""Teacher-model utilities.

Teachers are frozen during each distillation stage, so their logits over the
training set are computed once up front and indexed per minibatch — this is
both faster than re-running the teacher per batch and exactly equivalent.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def clone_model(model: Module) -> Module:
    """Deep copy of a model (parameters, buffers and quantization state).

    Forward hooks (e.g. :class:`repro.obs.StatsHook`) are dropped from the
    clone — observability attachments on a source model must not silently
    tax every teacher/student copy derived from it.
    """
    clone = copy.deepcopy(model)
    for module in clone.modules():
        module._forward_hooks.clear()
    return clone


def precompute_teacher_logits(
    teacher: Module,
    x: np.ndarray,
    batch_size: int = 128,
) -> np.ndarray:
    """Teacher logits for every sample of ``x`` in eval mode."""
    was_training = teacher.training
    teacher.eval()
    chunks: list[np.ndarray] = []
    with no_grad():
        for start in range(0, len(x), batch_size):
            out = teacher(Tensor(x[start : start + batch_size]))
            chunks.append(out.data.copy())
    teacher.train(was_training)
    return np.concatenate(chunks, axis=0)


def kd_batch_loss(teacher_logits: np.ndarray, temperature: float):
    """Build a trainer ``batch_loss`` from precomputed teacher logits.

    Returned closure computes ``C_soft + C_hard`` for each minibatch using
    the trainer-provided sample indices.
    """
    from repro.distill.losses import distillation_loss

    def loss(student_logits: Tensor, labels: np.ndarray, indices: np.ndarray) -> Tensor:
        return distillation_loss(
            student_logits, teacher_logits[indices], labels, temperature
        )

    return loss
