"""Pure-numpy reverse-mode automatic differentiation.

Public surface: :class:`Tensor`, :class:`Function`, functional ops, gradient
mode switches and a numerical gradient checker.
"""

from repro.autograd.tensor import Tensor, as_tensor
from repro.autograd.function import Function, unbroadcast
from repro.autograd.grad_mode import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from repro.autograd import _bind  # noqa: F401  (side effect: operator overloads)
from repro.autograd.grad_check import check_gradients, numerical_gradient
from repro.autograd.im2col import col2im, conv_out_size, im2col, sliding_windows
from repro.autograd.ops_activation import leaky_relu, relu, relu6, sigmoid, tanh
from repro.autograd.ops_basic import (
    abs_,
    add,
    clip,
    div,
    exp,
    log,
    maximum,
    mul,
    neg,
    pow_scalar,
    sqrt,
    sub,
)
from repro.autograd.ops_loss import (
    cross_entropy_with_probs,
    log_softmax,
    log_softmax_np,
    softmax,
    softmax_cross_entropy,
    softmax_np,
)
from repro.autograd.ops_matmul import (
    avg_pool2d,
    conv2d,
    global_avg_pool,
    linear,
    matmul,
    max_pool2d,
)
from repro.autograd.ops_reduce import max_, mean, sum_
from repro.autograd.ops_shape import (
    broadcast_to,
    concat,
    flatten,
    getitem,
    pad2d,
    reshape,
    transpose,
)

__all__ = [
    "Tensor",
    "Function",
    "as_tensor",
    "unbroadcast",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "check_gradients",
    "numerical_gradient",
    "im2col",
    "col2im",
    "conv_out_size",
    "sliding_windows",
    # ops
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_scalar",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "clip",
    "maximum",
    "relu",
    "relu6",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "matmul",
    "linear",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool",
    "sum_",
    "mean",
    "max_",
    "reshape",
    "flatten",
    "transpose",
    "pad2d",
    "getitem",
    "concat",
    "broadcast_to",
    "log_softmax",
    "softmax",
    "softmax_np",
    "log_softmax_np",
    "softmax_cross_entropy",
    "cross_entropy_with_probs",
]
