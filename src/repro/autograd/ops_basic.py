"""Elementwise arithmetic and math ops."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function, unbroadcast
from repro.autograd.tensor import Tensor, as_tensor


class Add(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return np.asarray(a + b)

    def backward(self, grad_out):
        return unbroadcast(grad_out, self.a_shape), unbroadcast(grad_out, self.b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return np.asarray(a - b)

    def backward(self, grad_out):
        return unbroadcast(grad_out, self.a_shape), unbroadcast(-grad_out, self.b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.a, self.b = np.asarray(a), np.asarray(b)
        return self.a * self.b

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * self.b, self.a.shape),
            unbroadcast(grad_out * self.a, self.b.shape),
        )


class Div(Function):
    def forward(self, a, b):
        self.a, self.b = np.asarray(a), np.asarray(b)
        return self.a / self.b

    def backward(self, grad_out):
        grad_a = grad_out / self.b
        grad_b = -grad_out * self.a / (self.b * self.b)
        return unbroadcast(grad_a, self.a.shape), unbroadcast(grad_b, self.b.shape)


class Neg(Function):
    def forward(self, a):
        return -np.asarray(a)

    def backward(self, grad_out):
        return (-grad_out,)


class PowScalar(Function):
    """Raise a tensor to a fixed scalar exponent."""

    def forward(self, a, exponent: float):
        self.a = np.asarray(a)
        self.exponent = float(exponent)
        return self.a**self.exponent

    def backward(self, grad_out):
        return (grad_out * self.exponent * self.a ** (self.exponent - 1.0), None)


class Exp(Function):
    def forward(self, a):
        self.out = np.exp(a)
        return self.out

    def backward(self, grad_out):
        return (grad_out * self.out,)


class Log(Function):
    def forward(self, a):
        self.a = np.asarray(a)
        return np.log(self.a)

    def backward(self, grad_out):
        return (grad_out / self.a,)


class Sqrt(Function):
    def forward(self, a):
        self.out = np.sqrt(a)
        return self.out

    def backward(self, grad_out):
        return (grad_out / (2.0 * self.out),)


class Abs(Function):
    def forward(self, a):
        self.sign = np.sign(a)
        return np.abs(a)

    def backward(self, grad_out):
        return (grad_out * self.sign,)


class Clip(Function):
    """Clamp to ``[lo, hi]``; the gradient is zero outside the active range."""

    def forward(self, a, lo: float | None, hi: float | None):
        a = np.asarray(a)
        self.mask = np.ones_like(a, dtype=bool)
        if lo is not None:
            self.mask &= a >= lo
        if hi is not None:
            self.mask &= a <= hi
        return np.clip(a, lo, hi)

    def backward(self, grad_out):
        return (grad_out * self.mask, None, None)


class Maximum(Function):
    """Elementwise maximum of two tensors; ties route gradient to the first."""

    def forward(self, a, b):
        self.a, self.b = np.asarray(a), np.asarray(b)
        self.a_wins = self.a >= self.b
        return np.maximum(self.a, self.b)

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * self.a_wins, self.a.shape),
            unbroadcast(grad_out * ~self.a_wins, self.b.shape),
        )


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def add(a, b) -> Tensor:
    return Add.apply(as_tensor(a), as_tensor(b))


def sub(a, b) -> Tensor:
    return Sub.apply(as_tensor(a), as_tensor(b))


def mul(a, b) -> Tensor:
    return Mul.apply(as_tensor(a), as_tensor(b))


def div(a, b) -> Tensor:
    return Div.apply(as_tensor(a), as_tensor(b))


def neg(a) -> Tensor:
    return Neg.apply(as_tensor(a))


def pow_scalar(a, exponent: float) -> Tensor:
    return PowScalar.apply(as_tensor(a), float(exponent))


def exp(a) -> Tensor:
    return Exp.apply(as_tensor(a))


def log(a) -> Tensor:
    return Log.apply(as_tensor(a))


def sqrt(a) -> Tensor:
    return Sqrt.apply(as_tensor(a))


def abs_(a) -> Tensor:
    return Abs.apply(as_tensor(a))


def clip(a, lo: float | None = None, hi: float | None = None) -> Tensor:
    return Clip.apply(as_tensor(a), lo, hi)


def maximum(a, b) -> Tensor:
    return Maximum.apply(as_tensor(a), as_tensor(b))
