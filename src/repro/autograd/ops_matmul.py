"""Matrix multiplication, linear, convolution and pooling ops."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.im2col import col2im, conv_out_size, im2col, sliding_windows
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError

_backend_module = None  # lazily bound so autograd has no import-time approx dep


def _float_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Float GEMM through the active :mod:`repro.approx.backend`.

    Every shipped backend keeps float GEMMs exact, so backend selection
    never changes results here — it is the single seam where an
    accelerated substrate would plug in.
    """
    global _backend_module
    if _backend_module is None:
        from repro.approx import backend as _backend_module_

        _backend_module = _backend_module_
    return _backend_module.float_matmul(a, b)


class MatMul(Function):
    def forward(self, a, b):
        self.a, self.b = np.asarray(a), np.asarray(b)
        return _float_matmul(self.a, self.b)

    def backward(self, grad_out):
        grad_a = _float_matmul(grad_out, self.b.T)
        grad_b = _float_matmul(self.a.T, grad_out)
        return grad_a, grad_b


class LinearOp(Function):
    """Fused affine map ``x @ W.T + b`` with ``W`` of shape (out, in)."""

    def forward(self, x, weight, bias):
        self.x, self.weight = np.asarray(x), np.asarray(weight)
        self.has_bias = bias is not None
        out = _float_matmul(self.x, self.weight.T)
        if self.has_bias:
            out = out + bias
        return out

    def backward(self, grad_out):
        grad_x = _float_matmul(grad_out, self.weight)
        grad_w = _float_matmul(grad_out.T, self.x)
        grad_b = grad_out.sum(axis=0) if self.has_bias else None
        return grad_x, grad_w, grad_b


class Conv2dOp(Function):
    """Float convolution computed as an im2col GEMM.

    ``weight`` has shape ``(out_channels, in_channels/groups, kh, kw)``.
    Grouped convolutions are supported; depthwise (groups == in_channels)
    takes a fully vectorised windowed path.
    """

    def forward(self, x, weight, bias, stride: int = 1, padding: int = 0, groups: int = 1):
        x, weight = np.asarray(x), np.asarray(weight)
        n, c, h, w = x.shape
        oc, cg, kh, kw = weight.shape
        if c % groups or oc % groups:
            raise ShapeError(f"channels ({c} in, {oc} out) not divisible by groups={groups}")
        if cg != c // groups:
            raise ShapeError(
                f"weight expects {cg} input channels per group, input provides {c // groups}"
            )
        self.x_shape = x.shape
        self.weight = weight
        self.stride, self.padding, self.groups = stride, padding, groups
        self.has_bias = bias is not None
        oh = conv_out_size(h, kh, stride, padding)
        ow = conv_out_size(w, kw, stride, padding)

        if groups == 1:
            cols, _ = im2col(x, (kh, kw), stride, padding)  # (N*OH*OW, C*KH*KW)
            self.cols = cols
            out = _float_matmul(cols, weight.reshape(oc, -1).T)  # (N*OH*OW, OC)
            out = out.reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)
        elif groups == c and cg == 1:
            # Depthwise fast path: one filter (per output-channel multiplier m)
            # slides over its own input channel.
            m = oc // c
            windows = sliding_windows(x, (kh, kw), stride, padding)  # (N,C,OH,OW,KH,KW)
            self.windows = windows
            wdw = weight.reshape(c, m, kh, kw)
            # out[n, c, m, oh, ow] = sum_{kh,kw} windows * wdw
            out = np.einsum("nchwij,cmij->ncmhw", windows, wdw, optimize=True)
            out = out.reshape(n, oc, oh, ow)
        else:
            self.group_cols = []
            outs = []
            ocg = oc // groups
            for g in range(groups):
                xg = x[:, g * cg : (g + 1) * cg]
                wg = weight[g * ocg : (g + 1) * ocg]
                cols, _ = im2col(xg, (kh, kw), stride, padding)
                self.group_cols.append(cols)
                og = _float_matmul(cols, wg.reshape(ocg, -1).T)
                outs.append(og.reshape(n, oh, ow, ocg).transpose(0, 3, 1, 2))
            out = np.concatenate(outs, axis=1)

        if self.has_bias:
            out = out + np.asarray(bias).reshape(1, oc, 1, 1)
        self.out_spatial = (oh, ow)
        return np.ascontiguousarray(out)

    def backward(self, grad_out):
        n, c, h, w = self.x_shape
        oc, cg, kh, kw = self.weight.shape
        stride, padding, groups = self.stride, self.padding, self.groups
        oh, ow = self.out_spatial
        grad_b = grad_out.sum(axis=(0, 2, 3)) if self.has_bias else None

        if groups == 1:
            g2 = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, oc)
            grad_w = _float_matmul(g2.T, self.cols).reshape(oc, cg, kh, kw)
            grad_cols = _float_matmul(g2, self.weight.reshape(oc, -1))
            grad_x = col2im(grad_cols, self.x_shape, (kh, kw), stride, padding)
        elif groups == c and cg == 1:
            m = oc // c
            g5 = grad_out.reshape(n, c, m, oh, ow)
            grad_w = np.einsum("ncmhw,nchwij->cmij", g5, self.windows, optimize=True)
            grad_w = grad_w.reshape(oc, 1, kh, kw)
            wdw = self.weight.reshape(c, m, kh, kw)
            # grad wrt windows, then fold back with col2im per channel.
            grad_windows = np.einsum("ncmhw,cmij->nchwij", g5, wdw, optimize=True)
            cols = grad_windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
            grad_x = col2im(cols, self.x_shape, (kh, kw), stride, padding)
        else:
            ocg = oc // groups
            grad_w = np.empty_like(self.weight)
            grad_x_parts = []
            for g in range(groups):
                gg = grad_out[:, g * ocg : (g + 1) * ocg]
                g2 = gg.transpose(0, 2, 3, 1).reshape(n * oh * ow, ocg)
                cols = self.group_cols[g]
                grad_w[g * ocg : (g + 1) * ocg] = _float_matmul(g2.T, cols).reshape(
                    ocg, cg, kh, kw
                )
                grad_cols = _float_matmul(
                    g2, self.weight[g * ocg : (g + 1) * ocg].reshape(ocg, -1)
                )
                grad_x_parts.append(
                    col2im(grad_cols, (n, cg, h, w), (kh, kw), stride, padding)
                )
            grad_x = np.concatenate(grad_x_parts, axis=1)

        return grad_x, grad_w, grad_b, None, None, None


class AvgPool2d(Function):
    def forward(self, x, kernel: int, stride: int | None = None):
        x = np.asarray(x)
        stride = stride or kernel
        self.x_shape = x.shape
        self.kernel, self.stride = kernel, stride
        windows = sliding_windows(x, (kernel, kernel), stride, 0)
        self.out_spatial = windows.shape[2:4]
        return windows.mean(axis=(4, 5))

    def backward(self, grad_out):
        n, c, h, w = self.x_shape
        k, s = self.kernel, self.stride
        oh, ow = self.out_spatial
        grad_x = np.zeros(self.x_shape, dtype=grad_out.dtype)
        scaled = grad_out / (k * k)
        for i in range(k):
            for j in range(k):
                grad_x[:, :, i : i + s * oh : s, j : j + s * ow : s] += scaled
        return (grad_x, None, None)


class MaxPool2d(Function):
    def forward(self, x, kernel: int, stride: int | None = None):
        x = np.asarray(x)
        stride = stride or kernel
        self.x_shape = x.shape
        self.kernel, self.stride = kernel, stride
        windows = sliding_windows(x, (kernel, kernel), stride, 0)
        n, c, oh, ow = windows.shape[:4]
        flat = windows.reshape(n, c, oh, ow, kernel * kernel)
        self.argmax = flat.argmax(axis=-1)
        self.out_spatial = (oh, ow)
        return flat.max(axis=-1)

    def backward(self, grad_out):
        n, c, h, w = self.x_shape
        k, s = self.kernel, self.stride
        oh, ow = self.out_spatial
        grad_x = np.zeros(self.x_shape, dtype=grad_out.dtype)
        ki, kj = np.divmod(self.argmax, k)
        ni, ci, oi, oj = np.indices((n, c, oh, ow), sparse=False)
        np.add.at(grad_x, (ni, ci, oi * s + ki, oj * s + kj), grad_out)
        return (grad_x, None, None)


class GlobalAvgPool(Function):
    """Average over all spatial positions, producing (N, C)."""

    def forward(self, x):
        x = np.asarray(x)
        self.x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out):
        n, c, h, w = self.x_shape
        grad = np.broadcast_to(grad_out[:, :, None, None], self.x_shape) / (h * w)
        return (np.ascontiguousarray(grad),)


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def matmul(a, b) -> Tensor:
    return MatMul.apply(as_tensor(a), as_tensor(b))


def linear(x, weight, bias=None) -> Tensor:
    return LinearOp.apply(as_tensor(x), as_tensor(weight), bias)


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    return Conv2dOp.apply(as_tensor(x), as_tensor(weight), bias, stride, padding, groups)


def avg_pool2d(x, kernel: int, stride: int | None = None) -> Tensor:
    return AvgPool2d.apply(as_tensor(x), kernel, stride)


def max_pool2d(x, kernel: int, stride: int | None = None) -> Tensor:
    return MaxPool2d.apply(as_tensor(x), kernel, stride)


def global_avg_pool(x) -> Tensor:
    return GlobalAvgPool.apply(as_tensor(x))
