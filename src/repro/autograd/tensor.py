"""The :class:`Tensor` class — a numpy array with reverse-mode autodiff.

A tensor remembers the :class:`~repro.autograd.function.Function` that
produced it (``creator``); calling :meth:`Tensor.backward` walks the implicit
graph in reverse topological order and accumulates gradients into every
tensor with ``requires_grad=True``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import AutogradError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.autograd.function import Function

DEFAULT_DTYPE = np.float32


def _as_array(data, dtype=None) -> np.ndarray:
    if isinstance(data, (np.ndarray, np.generic)):
        data = np.asarray(data)
        if dtype is not None and data.dtype != dtype:
            return data.astype(dtype)
        if data.dtype.kind in "iub":  # integers become float tensors
            return data.astype(DEFAULT_DTYPE)
        return data
    return np.asarray(data, dtype=dtype or DEFAULT_DTYPE)


class Tensor:
    """N-dimensional array participating in automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; integer inputs are promoted to float32.
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` by
        :meth:`backward`.
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "creator", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data: np.ndarray = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self.creator: Function | None = None
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self):
        raise AutogradError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient. May be omitted only for single-element
            tensors, in which case it defaults to 1.
        """
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise AutogradError(
                    f"upstream gradient shape {grad.shape} does not match "
                    f"tensor shape {self.shape}"
                )

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for tensor in order:
            tgrad = grads.pop(id(tensor), None)
            if tgrad is None:
                continue
            if tensor.requires_grad and tensor.creator is None:
                # Leaf: accumulate.
                tensor.grad = tgrad if tensor.grad is None else tensor.grad + tgrad
            fn = tensor.creator
            if fn is None:
                continue
            if tensor.requires_grad and tensor.grad is not None:
                # Intermediate tensor that the user also asked gradients for.
                tensor.grad = tensor.grad + tgrad
            elif tensor.requires_grad:
                tensor.grad = tgrad
            parent_grads = fn.backward(tgrad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            if len(parent_grads) != len(fn.parents):
                raise AutogradError(
                    f"{type(fn).__name__}.backward returned {len(parent_grads)} "
                    f"gradients for {len(fn.parents)} parents"
                )
            for parent, pgrad in zip(fn.parents, parent_grads):
                if parent is None or pgrad is None:
                    continue
                if pgrad.shape != parent.data.shape:
                    raise AutogradError(
                        f"{type(fn).__name__}.backward produced gradient of shape "
                        f"{pgrad.shape} for parent of shape {parent.data.shape}"
                    )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # operator overloads (implemented in ops modules, bound lazily below)
    # ------------------------------------------------------------------


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in reverse-topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    # Iterative DFS (training graphs for deep CNNs overflow Python recursion).
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node.creator is not None:
            for parent in node.creator.parents:
                if parent is not None and id(parent) not in visited:
                    stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` (Tensor, array-like or scalar) into a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def stack_tensors(tensors: Iterable[Tensor]) -> np.ndarray:
    """Stack the raw data of ``tensors`` along a new leading axis."""
    return np.stack([t.data for t in tensors])
