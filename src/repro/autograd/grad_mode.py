"""Global gradient-recording switch, mirroring ``torch.no_grad`` semantics."""

from __future__ import annotations

import contextlib
import threading

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_state, "enabled", True)


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable graph recording for the current thread."""
    _state.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used for evaluation loops, teacher forward passes and calibration, where
    building the backward graph would waste memory.
    """
    previous = is_grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside ``no_grad``."""
    previous = is_grad_enabled()
    set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
