"""Shape-manipulation ops: reshape, transpose, pad, slicing, concat."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError


class Reshape(Function):
    def forward(self, a, shape):
        a = np.asarray(a)
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad_out):
        return (grad_out.reshape(self.in_shape), None)


class Transpose(Function):
    def forward(self, a, axes):
        a = np.asarray(a)
        self.axes = tuple(range(a.ndim))[::-1] if axes is None else tuple(axes)
        return a.transpose(self.axes)

    def backward(self, grad_out):
        inverse = np.argsort(self.axes)
        return (grad_out.transpose(inverse), None)


class Pad2d(Function):
    """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""

    def forward(self, a, padding: tuple[int, int]):
        a = np.asarray(a)
        if a.ndim != 4:
            raise ShapeError(f"pad2d expects an NCHW tensor, got ndim={a.ndim}")
        ph, pw = padding
        self.ph, self.pw = ph, pw
        if ph == 0 and pw == 0:
            return a
        return np.pad(a, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(self, grad_out):
        ph, pw = self.ph, self.pw
        if ph == 0 and pw == 0:
            return (grad_out, None)
        h, w = grad_out.shape[2], grad_out.shape[3]
        return (grad_out[:, :, ph : h - ph, pw : w - pw], None)


class GetItem(Function):
    def forward(self, a, index):
        a = np.asarray(a)
        self.in_shape = a.shape
        self.index = index
        return np.asarray(a[index])

    def backward(self, grad_out):
        grad = np.zeros(self.in_shape, dtype=grad_out.dtype)
        np.add.at(grad, self.index, grad_out)
        return (grad, None)


class Concat(Function):
    """Concatenate along ``axis``; only two operands are needed here."""

    def forward(self, a, b, axis: int):
        a, b = np.asarray(a), np.asarray(b)
        self.axis = axis
        self.split = a.shape[axis]
        return np.concatenate([a, b], axis=axis)

    def backward(self, grad_out):
        grad_a, grad_b = np.split(grad_out, [self.split], axis=self.axis)
        return (np.ascontiguousarray(grad_a), np.ascontiguousarray(grad_b), None)


class BroadcastTo(Function):
    def forward(self, a, shape):
        a = np.asarray(a)
        self.in_shape = a.shape
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad_out):
        from repro.autograd.function import unbroadcast

        return (unbroadcast(grad_out, self.in_shape), None)


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def reshape(a, shape) -> Tensor:
    return Reshape.apply(as_tensor(a), tuple(shape))


def flatten(a, start_axis: int = 1) -> Tensor:
    """Flatten everything from ``start_axis`` onward into one axis."""
    t = as_tensor(a)
    lead = t.shape[:start_axis]
    return reshape(t, lead + (-1,))


def transpose(a, axes=None) -> Tensor:
    return Transpose.apply(as_tensor(a), axes)


def pad2d(a, padding: tuple[int, int]) -> Tensor:
    return Pad2d.apply(as_tensor(a), padding)


def getitem(a, index) -> Tensor:
    return GetItem.apply(as_tensor(a), index)


def concat(a, b, axis: int = 1) -> Tensor:
    return Concat.apply(as_tensor(a), as_tensor(b), axis)


def broadcast_to(a, shape) -> Tensor:
    return BroadcastTo.apply(as_tensor(a), tuple(shape))
