"""Activation-function ops."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor


class ReLU(Function):
    def forward(self, a):
        a = np.asarray(a)
        self.mask = a > 0
        return a * self.mask

    def backward(self, grad_out):
        return (grad_out * self.mask,)


class ReLU6(Function):
    """``min(max(x, 0), 6)`` — the clipped ReLU used by MobileNetV2."""

    def forward(self, a):
        a = np.asarray(a)
        self.mask = (a > 0) & (a < 6.0)
        return np.clip(a, 0.0, 6.0)

    def backward(self, grad_out):
        return (grad_out * self.mask,)


class LeakyReLU(Function):
    def forward(self, a, negative_slope: float = 0.01):
        a = np.asarray(a)
        self.slope = float(negative_slope)
        self.mask = a > 0
        return np.where(self.mask, a, a * self.slope)

    def backward(self, grad_out):
        return (np.where(self.mask, grad_out, grad_out * self.slope), None)


class Sigmoid(Function):
    def forward(self, a):
        self.out = 1.0 / (1.0 + np.exp(-np.asarray(a)))
        return self.out

    def backward(self, grad_out):
        return (grad_out * self.out * (1.0 - self.out),)


class Tanh(Function):
    def forward(self, a):
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad_out):
        return (grad_out * (1.0 - self.out * self.out),)


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def relu(a) -> Tensor:
    return ReLU.apply(as_tensor(a))


def relu6(a) -> Tensor:
    return ReLU6.apply(as_tensor(a))


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    return LeakyReLU.apply(as_tensor(a), negative_slope)


def sigmoid(a) -> Tensor:
    return Sigmoid.apply(as_tensor(a))


def tanh(a) -> Tensor:
    return Tanh.apply(as_tensor(a))
