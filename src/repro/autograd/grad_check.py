"""Numerical gradient checking for autograd ops and custom Functions."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-3,
    rtol: float = 1e-3,
    eps: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``fn`` match central differences.

    ``fn`` must map the given tensors to a single output tensor; the check
    backpropagates from ``output.sum()``. Inputs should be float64 for tight
    tolerances.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates from the numerical one.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        assert t.grad is not None, f"input {i} received no gradient"
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        np.testing.assert_allclose(
            t.grad,
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"analytic/numeric gradient mismatch for input {i}",
        )
