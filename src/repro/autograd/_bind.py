"""Attach operator overloads and convenience methods to :class:`Tensor`.

Kept in its own module so :mod:`repro.autograd.tensor` stays free of import
cycles with the op modules.
"""

from __future__ import annotations

from repro.autograd import ops_activation, ops_basic, ops_matmul, ops_reduce, ops_shape
from repro.autograd.tensor import Tensor


def _bind() -> None:
    Tensor.__add__ = lambda self, other: ops_basic.add(self, other)
    Tensor.__radd__ = lambda self, other: ops_basic.add(other, self)
    Tensor.__sub__ = lambda self, other: ops_basic.sub(self, other)
    Tensor.__rsub__ = lambda self, other: ops_basic.sub(other, self)
    Tensor.__mul__ = lambda self, other: ops_basic.mul(self, other)
    Tensor.__rmul__ = lambda self, other: ops_basic.mul(other, self)
    Tensor.__truediv__ = lambda self, other: ops_basic.div(self, other)
    Tensor.__rtruediv__ = lambda self, other: ops_basic.div(other, self)
    Tensor.__neg__ = lambda self: ops_basic.neg(self)
    Tensor.__pow__ = lambda self, exponent: ops_basic.pow_scalar(self, exponent)
    Tensor.__matmul__ = lambda self, other: ops_matmul.matmul(self, other)
    Tensor.__getitem__ = lambda self, index: ops_shape.getitem(self, index)

    Tensor.sum = lambda self, axis=None, keepdims=False: ops_reduce.sum_(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: ops_reduce.mean(self, axis, keepdims)
    Tensor.max = lambda self, axis=None, keepdims=False: ops_reduce.max_(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: ops_shape.reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    )
    Tensor.transpose = lambda self, axes=None: ops_shape.transpose(self, axes)
    Tensor.flatten = lambda self, start_axis=1: ops_shape.flatten(self, start_axis)
    Tensor.exp = lambda self: ops_basic.exp(self)
    Tensor.log = lambda self: ops_basic.log(self)
    Tensor.sqrt = lambda self: ops_basic.sqrt(self)
    Tensor.abs = lambda self: ops_basic.abs_(self)
    Tensor.clip = lambda self, lo=None, hi=None: ops_basic.clip(self, lo, hi)
    Tensor.relu = lambda self: ops_activation.relu(self)


_bind()
