"""im2col / col2im transformations.

These turn convolutions into GEMMs, matching the paper's formulation of
convolutional layers as General Matrix Multiplications (section III-B). The
same helpers are reused by the exact float convolution, the fake-quantized
convolution and the approximate integer convolution.

Both directions are shape-stationary: for a fixed ``(input_shape, kernel,
stride, padding)`` the output geometry, the ``as_strided`` window layout
and the padded scratch shape never change. A :class:`ColPlan` memoizes
them per shape key and pools the padded scratch buffers, so the training
loop — which runs the same shapes every batch — stops re-deriving layout
and re-allocating/zeroing pad buffers per call. The planned paths perform
the identical copies in the identical order, so results are **bitwise
identical** to the unplanned reference; plans activate only while
:func:`repro.approx.plan.train_plans_enabled` (and plan caching) are on,
which is also how the equivalence tests force the reference path.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.obs import profiling as prof


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


class ColPlan:
    """Memoized im2col/col2im geometry for one shape key.

    Holds the output spatial size and padded-scratch shape, plus a small
    per-dtype pool of padded buffers. The pool keeps two kinds apart:
    ``im2col`` pad buffers only ever write their interior, so their
    borders stay zero for the buffer's lifetime and reuse is equivalent
    to a fresh ``np.pad``; ``col2im`` accumulation scratch writes the
    whole padded extent and is therefore zero-filled on every reuse and
    never handed back to the border-clean side.
    """

    __slots__ = ("oh", "ow", "padded_shape", "_free_pad", "_free_acc", "_lock")

    _MAX_POOLED = 4  # per dtype and kind; concurrent users allocate fresh

    def __init__(self, x_shape, kernel, stride, padding):
        n, c, h, w = x_shape
        kh, kw = kernel
        self.oh = conv_out_size(h, kh, stride, padding)
        self.ow = conv_out_size(w, kw, stride, padding)
        self.padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
        self._free_pad: dict[str, list[np.ndarray]] = {}
        self._free_acc: dict[str, list[np.ndarray]] = {}
        self._lock = threading.Lock()

    def _alloc(self, dtype) -> np.ndarray:
        buf = np.zeros(self.padded_shape, dtype=dtype)
        prof.count("autograd.col_pad_alloc", n=1, nbytes=buf.nbytes)
        return buf

    def take_pad(self, dtype: np.dtype) -> np.ndarray:
        """A buffer whose borders are guaranteed zero (interior is stale)."""
        key = np.dtype(dtype).str
        with self._lock:
            free = self._free_pad.get(key)
            if free:
                return free.pop()
        return self._alloc(dtype)

    def take_acc(self, dtype: np.dtype) -> np.ndarray:
        """An all-zero accumulation buffer (reused ones are re-zeroed)."""
        key = np.dtype(dtype).str
        with self._lock:
            free = self._free_acc.get(key)
            if free:
                buf = free.pop()
                buf.fill(0)
                return buf
        return self._alloc(dtype)

    def give_pad(self, buf: np.ndarray) -> None:
        with self._lock:
            free = self._free_pad.setdefault(buf.dtype.str, [])
            if len(free) < self._MAX_POOLED:
                free.append(buf)

    def give_acc(self, buf: np.ndarray) -> None:
        with self._lock:
            free = self._free_acc.setdefault(buf.dtype.str, [])
            if len(free) < self._MAX_POOLED:
                free.append(buf)


_col_plans: dict[tuple, ColPlan] = {}
_col_plans_lock = threading.Lock()
_MAX_COL_PLANS = 64

_plan_flags = None  # lazily bound repro.approx.plan (avoids an import cycle)


def _col_plans_active() -> bool:
    global _plan_flags
    if _plan_flags is None:
        from repro.approx import plan as _plan_module

        _plan_flags = _plan_module
    return _plan_flags.train_plans_enabled()


def clear_col_plans() -> None:
    """Drop all memoized im2col plans and their pooled scratch buffers."""
    with _col_plans_lock:
        _col_plans.clear()


def _get_col_plan(
    x_shape: tuple, kernel: tuple[int, int], stride: int, padding: int
) -> ColPlan:
    key = (x_shape, kernel, stride, padding)
    with _col_plans_lock:
        plan = _col_plans.get(key)
    if plan is None:
        plan = ColPlan(x_shape, kernel, stride, padding)
        prof.count("autograd.col_plan_built")
        with _col_plans_lock:
            if len(_col_plans) >= _MAX_COL_PLANS:
                _col_plans.clear()
            _col_plans[key] = plan
    return plan


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into GEMM columns.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(N*OH*OW, C*KH*KW)`` — one row per output pixel, one column per weight.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got ndim={x.ndim}")
    with prof.timer("autograd.im2col", nbytes=x.nbytes):
        n, c, h, w = x.shape
        kh, kw = kernel
        plan = (
            _get_col_plan(x.shape, kernel, stride, padding)
            if _col_plans_active()
            else None
        )
        if plan is not None:
            oh, ow = plan.oh, plan.ow
        else:
            oh = conv_out_size(h, kh, stride, padding)
            ow = conv_out_size(w, kw, stride, padding)
        pad_buf = None
        if padding > 0:
            if plan is not None:
                # Pooled scratch: only the interior is written, the borders
                # were zeroed at allocation — equivalent to a fresh np.pad.
                pad_buf = plan.take_pad(x.dtype)
                pad_buf[:, :, padding : padding + h, padding : padding + w] = x
                x = pad_buf
            else:
                x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        sn, sc, sh, sw = x.strides
        windows = as_strided(
            x,
            shape=(n, c, oh, ow, kh, kw),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
            writeable=False,
        )
        # reshape of the transposed view copies, so cols owns its memory
        # and the pooled pad buffer can be recycled immediately.
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
        cols = np.ascontiguousarray(cols)
        if pad_buf is not None:
            plan.give_pad(pad_buf)
        return cols, (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold GEMM columns back into an NCHW gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    plan = (
        _get_col_plan(tuple(x_shape), kernel, stride, padding)
        if _col_plans_active() and padding > 0
        else None
    )
    if plan is not None:
        oh, ow = plan.oh, plan.ow
    else:
        oh = conv_out_size(h, kh, stride, padding)
        ow = conv_out_size(w, kw, stride, padding)
    expected = (n * oh * ow, c * kh * kw)
    if cols.shape != expected:
        raise ShapeError(f"col2im expected cols of shape {expected}, got {cols.shape}")
    with prof.timer("autograd.col2im", nbytes=cols.nbytes):
        cols6 = cols.reshape(n, oh, ow, c, kh, kw)
        if plan is not None:
            # Accumulation scratch from the pool (zero-filled on take); the
            # unpadded interior is copied out below, so the buffer can be
            # recycled. padding == 0 keeps the fresh np.zeros — the result
            # array itself would otherwise escape into the pool.
            dx = plan.take_acc(cols.dtype)
        else:
            dx = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                    cols6[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                )
        if padding > 0:
            out = np.ascontiguousarray(dx[:, :, padding : padding + h, padding : padding + w])
            if plan is not None:
                plan.give_acc(dx)
            return out
        return np.ascontiguousarray(dx)


def sliding_windows(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Read-only sliding windows of shape ``(N, C, OH, OW, KH, KW)``.

    Used by the depthwise-convolution fast path and by pooling layers.
    """
    if x.ndim != 4:
        raise ShapeError(f"sliding_windows expects NCHW input, got ndim={x.ndim}")
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
