"""im2col / col2im transformations.

These turn convolutions into GEMMs, matching the paper's formulation of
convolutional layers as General Matrix Multiplications (section III-B). The
same helpers are reused by the exact float convolution, the fake-quantized
convolution and the approximate integer convolution.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.obs import profiling as prof


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into GEMM columns.

    Returns ``(cols, (oh, ow))`` where ``cols`` has shape
    ``(N*OH*OW, C*KH*KW)`` — one row per output pixel, one column per weight.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got ndim={x.ndim}")
    with prof.timer("autograd.im2col", nbytes=x.nbytes):
        n, c, h, w = x.shape
        kh, kw = kernel
        oh = conv_out_size(h, kh, stride, padding)
        ow = conv_out_size(w, kw, stride, padding)
        if padding > 0:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        sn, sc, sh, sw = x.strides
        windows = as_strided(
            x,
            shape=(n, c, oh, ow, kh, kw),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
            writeable=False,
        )
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
        return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold GEMM columns back into an NCHW gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    expected = (n * oh * ow, c * kh * kw)
    if cols.shape != expected:
        raise ShapeError(f"col2im expected cols of shape {expected}, got {cols.shape}")
    with prof.timer("autograd.col2im", nbytes=cols.nbytes):
        cols6 = cols.reshape(n, oh, ow, c, kh, kw)
        dx = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                    cols6[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                )
        if padding > 0:
            dx = dx[:, :, padding : padding + h, padding : padding + w]
        return np.ascontiguousarray(dx)


def sliding_windows(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Read-only sliding windows of shape ``(N, C, OH, OW, KH, KW)``.

    Used by the depthwise-convolution fast path and by pooling layers.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
