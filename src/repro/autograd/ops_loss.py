"""Softmax and loss ops (Eq. 1 of the paper and building blocks for KD)."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError


def softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a raw array (no autograd)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on a raw array (no autograd)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class LogSoftmax(Function):
    def forward(self, logits, axis: int = -1):
        self.axis = axis
        self.out = log_softmax_np(np.asarray(logits), axis)
        return self.out

    def backward(self, grad_out):
        softmax = np.exp(self.out)
        return (grad_out - softmax * grad_out.sum(axis=self.axis, keepdims=True), None)


class Softmax(Function):
    def forward(self, logits, axis: int = -1):
        self.axis = axis
        self.out = softmax_np(np.asarray(logits), axis)
        return self.out

    def backward(self, grad_out):
        dot = (grad_out * self.out).sum(axis=self.axis, keepdims=True)
        return (self.out * (grad_out - dot), None)


class SoftmaxCrossEntropy(Function):
    """Mean cross-entropy between logits and integer class labels (Eq. 1).

    Fuses softmax and NLL for numerical stability; the backward pass is the
    classic ``(softmax - onehot) / N``.
    """

    def forward(self, logits, labels):
        logits = np.asarray(logits)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"labels shape {labels.shape} does not match batch size {logits.shape[0]}"
            )
        self.labels = labels.astype(np.int64)
        self.log_probs = log_softmax_np(logits, axis=1)
        n = logits.shape[0]
        nll = -self.log_probs[np.arange(n), self.labels]
        return np.asarray(nll.mean(), dtype=logits.dtype)

    def backward(self, grad_out):
        n = self.log_probs.shape[0]
        grad = np.exp(self.log_probs)
        grad[np.arange(n), self.labels] -= 1.0
        grad *= grad_out / n
        return (grad, None)


class CrossEntropyWithProbs(Function):
    """Mean cross-entropy ``-Σ p log σ(y)`` against a soft target distribution.

    ``targets`` is treated as a constant (teacher outputs are detached), which
    matches the KD formulation in the paper — gradients flow only into the
    student logits.
    """

    def forward(self, logits, targets):
        logits = np.asarray(logits)
        targets = np.asarray(targets)
        if logits.shape != targets.shape:
            raise ShapeError(
                f"logits shape {logits.shape} != targets shape {targets.shape}"
            )
        self.targets = targets
        self.log_probs = log_softmax_np(logits, axis=1)
        n = logits.shape[0]
        loss = -(targets * self.log_probs).sum() / n
        return np.asarray(loss, dtype=logits.dtype)

    def backward(self, grad_out):
        n = self.log_probs.shape[0]
        softmax = np.exp(self.log_probs)
        row_mass = self.targets.sum(axis=1, keepdims=True)
        grad = (softmax * row_mass - self.targets) * (grad_out / n)
        return (grad, None)


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def log_softmax(logits, axis: int = -1) -> Tensor:
    return LogSoftmax.apply(as_tensor(logits), axis)


def softmax(logits, axis: int = -1) -> Tensor:
    return Softmax.apply(as_tensor(logits), axis)


def softmax_cross_entropy(logits, labels) -> Tensor:
    """Hard-label loss ``C(y)`` of Eq. 1 (mean over the minibatch)."""
    labels = labels.data if isinstance(labels, Tensor) else labels
    return SoftmaxCrossEntropy.apply(as_tensor(logits), np.asarray(labels))


def cross_entropy_with_probs(logits, targets) -> Tensor:
    """Soft-label cross-entropy; ``targets`` is detached."""
    targets = targets.data if isinstance(targets, Tensor) else targets
    return CrossEntropyWithProbs.apply(as_tensor(logits), np.asarray(targets))
