"""Differentiable operations as :class:`Function` subclasses.

Each op implements ``forward`` on raw numpy arrays and ``backward`` mapping
the upstream gradient to one gradient per parent (``None`` for
non-differentiable or non-tensor parents). ``Function.apply`` wires results
into the autograd graph when gradient recording is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.grad_mode import is_grad_enabled
from repro.autograd.tensor import Tensor


class Function:
    """Base class for differentiable operations.

    Subclasses override :meth:`forward` (numpy in / numpy out) and
    :meth:`backward` (upstream gradient in / per-parent gradients out).
    State needed by the backward pass is stashed on ``self`` during forward.
    """

    def __init__(self) -> None:
        self.parents: tuple[Tensor | None, ...] = ()

    # -- interface ------------------------------------------------------
    def forward(self, *args, **kwargs) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray):
        raise NotImplementedError

    # -- graph wiring ----------------------------------------------------
    @classmethod
    def apply(cls, *args, **kwargs) -> Tensor:
        """Run ``forward`` and, when recording, attach the node to the graph.

        Tensor arguments become graph parents; all other arguments are passed
        through to ``forward`` as plain values.
        """
        fn = cls()
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = fn.forward(*raw_args, **kwargs)
        tensor_parents = [a for a in args if isinstance(a, Tensor)]
        needs_grad = is_grad_enabled() and any(t.requires_grad for t in tensor_parents)
        out = Tensor(out_data, requires_grad=needs_grad)
        if needs_grad:
            fn.parents = tuple(a if isinstance(a, Tensor) else None for a in args)
            out.creator = fn
        return out


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
