"""Reduction ops: sum, mean, max, and variance building blocks."""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor


def _normalize_axis(axis, ndim: int):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad: np.ndarray, in_shape, axis, keepdims: bool) -> np.ndarray:
    """Reinsert reduced axes (as size-1) so grad broadcasts to ``in_shape``."""
    if axis is None:
        return np.broadcast_to(grad, in_shape)
    if not keepdims:
        grad = np.expand_dims(grad, axis)
    return np.broadcast_to(grad, in_shape)


class Sum(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.in_shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        return np.asarray(a.sum(axis=self.axis, keepdims=keepdims))

    def backward(self, grad_out):
        grad = _expand_reduced(grad_out, self.in_shape, self.axis, self.keepdims)
        return (np.ascontiguousarray(grad), None, None)


class Mean(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.in_shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        if self.axis is None:
            self.count = a.size
        else:
            self.count = int(np.prod([a.shape[i] for i in self.axis]))
        return np.asarray(a.mean(axis=self.axis, keepdims=keepdims))

    def backward(self, grad_out):
        grad = _expand_reduced(grad_out, self.in_shape, self.axis, self.keepdims)
        return (np.ascontiguousarray(grad) / self.count, None, None)


class Max(Function):
    """Max reduction; gradient is split evenly among tied maxima."""

    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.a = a
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        out = np.asarray(a.max(axis=self.axis, keepdims=True))
        self.mask = (a == out).astype(a.dtype)
        self.mask /= self.mask.sum(axis=self.axis, keepdims=True)
        if not keepdims and self.axis is not None:
            out = np.asarray(out.squeeze(self.axis))
        elif not keepdims:
            out = np.asarray(out.squeeze())
        return out

    def backward(self, grad_out):
        grad = _expand_reduced(grad_out, self.a.shape, self.axis, self.keepdims)
        return (grad * self.mask, None, None)


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    return Sum.apply(as_tensor(a), axis, keepdims)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    return Mean.apply(as_tensor(a), axis, keepdims)


def max_(a, axis=None, keepdims: bool = False) -> Tensor:
    return Max.apply(as_tensor(a), axis, keepdims)
