"""Model and result serialization.

Models serialise to ``.npz`` archives of their state dict plus, for
quantized models, the per-layer quantization state (step sizes and bit
widths), so a calibrated model can be reloaded ready to run. Experiment
results serialise to JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Module

_META_PREFIX = "__quant__/"
_WSTEP_PREFIX = "__quantstep__/"


def save_model(model: Module, path: str | Path) -> None:
    """Serialise parameters, buffers and quantization state to ``path``."""
    from repro.quant.convert import named_quant_layers

    arrays: dict[str, np.ndarray] = dict(model.state_dict())
    for name, layer in named_quant_layers(model):
        if not layer.is_calibrated:
            continue
        arrays[f"{_META_PREFIX}{name}"] = np.array(
            [
                layer.act_step,
                layer.qconfig.activation_bits,
                layer.qconfig.weight_bits,
            ],
            dtype=np.float64,
        )
        # Weight step: scalar (layer-wise) or per-output-channel vector.
        arrays[f"{_WSTEP_PREFIX}{name}"] = np.atleast_1d(
            np.asarray(layer.weight_step, dtype=np.float64)
        )
    np.savez(Path(path), **arrays)


def load_model(model: Module, path: str | Path) -> Module:
    """Load state saved by :func:`save_model` into ``model`` (in place).

    ``model`` must have the same architecture (and, for quantized state,
    the same quantized layers) as the saved one.
    """
    from repro.quant.convert import named_quant_layers

    path = Path(path)
    if not path.exists():
        raise ReproError(f"model file not found: {path}")
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    quant_meta = {
        key.removeprefix(_META_PREFIX): value
        for key, value in arrays.items()
        if key.startswith(_META_PREFIX)
    }
    weight_steps = {
        key.removeprefix(_WSTEP_PREFIX): value
        for key, value in arrays.items()
        if key.startswith(_WSTEP_PREFIX)
    }
    state = {
        k: v
        for k, v in arrays.items()
        if not k.startswith((_META_PREFIX, _WSTEP_PREFIX))
    }
    model.load_state_dict(state)

    layers = dict(named_quant_layers(model))
    missing = set(quant_meta) - set(layers)
    if missing:
        raise ReproError(
            f"saved quantization state for unknown layers: {sorted(missing)}"
        )
    for name, meta in quant_meta.items():
        layer = layers[name]
        act_step, act_bits, weight_bits = meta
        if (int(act_bits), int(weight_bits)) != (
            layer.qconfig.activation_bits,
            layer.qconfig.weight_bits,
        ):
            raise ReproError(
                f"layer {name}: saved bit-widths A{int(act_bits)}/W{int(weight_bits)} "
                f"do not match the model's {layer.qconfig.label}"
            )
        layer.act_step = float(act_step)
        step = weight_steps[name].astype(np.float32)
        layer.weight_step = float(step[0]) if step.size == 1 else step
    return model


def save_results(results: dict, path: str | Path) -> None:
    """Serialise an experiment-result dictionary to JSON."""
    Path(path).write_text(json.dumps(_jsonable(results), indent=2, sort_keys=True))


def load_results(path: str | Path) -> dict:
    """Load a result dictionary saved by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"results file not found: {path}")
    return json.loads(path.read_text())


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialise value of type {type(value).__name__}")
