"""Model and result serialization.

Models serialise to ``.npz`` archives of their state dict plus, for
quantized models, the per-layer quantization state (step sizes and bit
widths), so a calibrated model can be reloaded ready to run. Experiment
results serialise to JSON.

All writes are atomic (staged to a temp file, then ``os.replace``) so a
crash mid-write never leaves a truncated artifact behind, and all reads
convert low-level decode failures into :class:`ReproError` carrying the
offending path.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Module
from repro.utils.atomic import atomic_writer

_META_PREFIX = "__quant__/"
_WSTEP_PREFIX = "__quantstep__/"
_RESERVED_PREFIXES = (_META_PREFIX, _WSTEP_PREFIX)


def model_state_arrays(model: Module) -> dict[str, np.ndarray]:
    """Flat array view of a model: state dict plus quantization state.

    This is the exact content of a :func:`save_model` archive; the
    checkpoint manager embeds the same arrays inside training checkpoints.
    """
    from repro.quant.convert import named_quant_layers

    arrays: dict[str, np.ndarray] = dict(model.state_dict())
    for name, layer in named_quant_layers(model):
        if not layer.is_calibrated:
            continue
        arrays[f"{_META_PREFIX}{name}"] = np.array(
            [
                layer.act_step,
                layer.qconfig.activation_bits,
                layer.qconfig.weight_bits,
            ],
            dtype=np.float64,
        )
        # Weight step: scalar (layer-wise) or per-output-channel vector.
        arrays[f"{_WSTEP_PREFIX}{name}"] = np.atleast_1d(
            np.asarray(layer.weight_step, dtype=np.float64)
        )
    return arrays


def load_model_arrays(
    model: Module, arrays: dict[str, np.ndarray], context: str = "model state"
) -> Module:
    """Load arrays produced by :func:`model_state_arrays` into ``model``.

    Raises :class:`ReproError` naming ``context`` when the arrays and the
    model disagree — symmetrically for missing and extra/unconsumed keys,
    both for plain parameters/buffers and for quantization state.
    """
    from repro.quant.convert import named_quant_layers

    quant_meta = {
        key.removeprefix(_META_PREFIX): value
        for key, value in arrays.items()
        if key.startswith(_META_PREFIX)
    }
    weight_steps = {
        key.removeprefix(_WSTEP_PREFIX): value
        for key, value in arrays.items()
        if key.startswith(_WSTEP_PREFIX)
    }
    state = {
        k: v for k, v in arrays.items() if not k.startswith(_RESERVED_PREFIXES)
    }

    own_keys = {name for name, _ in model.named_parameters()}
    own_keys |= {name for name, _ in model.named_buffers()}
    missing = own_keys - set(state)
    unexpected = set(state) - own_keys
    if missing or unexpected:
        raise ReproError(
            f"{context} does not match the model: "
            f"missing={sorted(missing)}, unexpected={sorted(unexpected)}"
        )
    model.load_state_dict(state)

    layers = dict(named_quant_layers(model))
    unknown = (set(quant_meta) | set(weight_steps)) - set(layers)
    if unknown:
        raise ReproError(
            f"{context} holds quantization state for unknown layers: "
            f"{sorted(unknown)}"
        )
    lopsided = set(quant_meta) ^ set(weight_steps)
    if lopsided:
        raise ReproError(
            f"{context} holds incomplete quantization state (meta without "
            f"step or step without meta) for layers: {sorted(lopsided)}"
        )
    for name, meta in quant_meta.items():
        layer = layers[name]
        act_step, act_bits, weight_bits = meta
        if (int(act_bits), int(weight_bits)) != (
            layer.qconfig.activation_bits,
            layer.qconfig.weight_bits,
        ):
            raise ReproError(
                f"layer {name}: saved bit-widths A{int(act_bits)}/W{int(weight_bits)} "
                f"do not match the model's {layer.qconfig.label}"
            )
        layer.act_step = float(act_step)
        step = weight_steps[name].astype(np.float32)
        layer.weight_step = float(step[0]) if step.size == 1 else step
    return model


def save_model(model: Module, path: str | Path) -> None:
    """Serialise parameters, buffers and quantization state to ``path``.

    The write is atomic: a crash leaves either the previous complete file
    or no file, never a truncated archive.
    """
    arrays = model_state_arrays(model)
    with atomic_writer(path, "wb") as stream:
        np.savez(stream, **arrays)


def load_model(model: Module, path: str | Path) -> Module:
    """Load state saved by :func:`save_model` into ``model`` (in place).

    ``model`` must have the same architecture (and, for quantized state,
    the same quantized layers) as the saved one; mismatches — missing keys
    and extra/unconsumed arrays alike — raise :class:`ReproError`, as does
    a corrupt or truncated archive.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"model file not found: {path}")
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as exc:
        raise ReproError(f"corrupt or unreadable model file {path}: {exc}") from exc
    return load_model_arrays(model, arrays, context=f"model file {path}")


def save_results(results: dict, path: str | Path) -> None:
    """Serialise an experiment-result dictionary to JSON (atomically)."""
    text = json.dumps(_jsonable(results), indent=2, sort_keys=True)
    with atomic_writer(path, "w") as stream:
        stream.write(text)


def load_results(path: str | Path) -> dict:
    """Load a result dictionary saved by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"results file not found: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt results file {path}: {exc}") from exc


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialise value of type {type(value).__name__}")
