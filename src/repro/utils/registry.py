"""A minimal name → factory registry used for models and multipliers."""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Case-insensitive mapping from names to factories.

    Used by :mod:`repro.models` and :mod:`repro.approx` so that experiment
    configs can refer to components by string name.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: dict[str, Callable[..., T]] = {}

    def register(self, name: str, factory: Callable[..., T] | None = None):
        """Register ``factory`` under ``name``; usable as a decorator."""
        key = name.lower()

        def _do_register(fn: Callable[..., T]) -> Callable[..., T]:
            if key in self._entries:
                raise KeyError(f"{self._kind} {name!r} is already registered")
            self._entries[key] = fn
            return fn

        if factory is None:
            return _do_register
        return _do_register(factory)

    def create(self, name: str, /, **kwargs) -> T:
        """Instantiate the entry registered under ``name``."""
        key = name.lower()
        if key not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(f"unknown {self._kind} {name!r}; known: {known}")
        return self._entries[key](**kwargs)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._entries)
