"""Atomic, crash-safe file writes and content checksums.

A process killed mid-write must never leave a truncated artifact where a
good one used to be. Every writer here stages the content in a temporary
file in the *same directory* as the target (so the final rename stays on
one filesystem), fsyncs it, and moves it into place with ``os.replace`` —
which is atomic on POSIX. Readers either see the old complete file or the
new complete file, never a partial one.

Checksums (:func:`file_sha256`) pair with the writers to detect the
remaining failure mode: corruption of an already-written file (bad disk,
partial copy). The checkpoint manifests under
:mod:`repro.resilience.checkpoint` build on both.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_writer(path: str | Path, mode: str = "wb") -> Iterator[IO]:
    """Yield a stream whose content replaces ``path`` atomically on success.

    The stream writes to a hidden ``.<name>.*.tmp`` file next to the
    target; on clean exit it is flushed, fsynced and renamed over ``path``.
    On any exception the temporary file is removed and ``path`` is left
    untouched.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_writer supports modes 'w'/'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        kwargs = {} if "b" in mode else {"encoding": "utf-8"}
        with os.fdopen(fd, mode, **kwargs) as stream:
            yield stream
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path, "wb") as stream:
        stream.write(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    with atomic_writer(path, "w") as stream:
        stream.write(text)


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Atomically replace ``path`` with ``payload`` rendered as JSON."""
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def file_sha256(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file's content, streamed in chunks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as stream:
        while True:
            chunk = stream.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
