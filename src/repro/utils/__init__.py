"""Small shared utilities: seeded RNG helpers and a generic registry."""

from repro.utils.registry import Registry
from repro.utils.rng import new_rng, spawn_rngs

__all__ = ["Registry", "new_rng", "spawn_rngs"]
