"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``; these helpers normalise both into generators so
experiments are reproducible end to end.
"""

from __future__ import annotations

import copy

import numpy as np

SeedLike = "int | np.random.Generator | None"


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = new_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]


def get_rng_state(rng: np.random.Generator) -> dict:
    """Snapshot of a generator's internal state.

    The snapshot is a plain nested dict of strings and Python ints, so it
    JSON round-trips — checkpoints rely on this to restore the exact
    training-data order after a resume.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken with :func:`get_rng_state` (in place)."""
    rng.bit_generator.state = copy.deepcopy(state)
