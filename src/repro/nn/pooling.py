"""Pooling layers."""

from __future__ import annotations

from repro.autograd import ops_matmul
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops_matmul.avg_pool2d(x, self.kernel_size, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops_matmul.max_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool(Module):
    """Collapse all spatial positions into a per-channel average, (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops_matmul.global_avg_pool(x)
