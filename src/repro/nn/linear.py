"""Fully connected layer."""

from __future__ import annotations

from repro.autograd import ops_matmul
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with ``W`` of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops_matmul.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features})"
