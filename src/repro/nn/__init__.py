"""Neural-network layers, containers and initialisation schemes."""

from repro.nn.activations import LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh
from repro.nn.batchnorm import BatchNorm2d
from repro.nn.container import Dropout, Flatten, Identity, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn.pooling import AvgPool2d, GlobalAvgPool, MaxPool2d
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool",
    "Sequential",
    "Identity",
    "Flatten",
    "Dropout",
    "init",
]
