"""2D convolution layer."""

from __future__ import annotations

from repro.autograd import ops_matmul
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Conv2d(Module):
    """2D convolution over NCHW input, computed as an im2col GEMM.

    ``groups=in_channels`` gives a depthwise convolution (used by
    MobileNetV2's inverted residual blocks).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ShapeError(
                f"groups={groups} must divide in_channels={in_channels} and "
                f"out_channels={out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops_matmul.conv2d(
            x, self.weight, self.bias, self.stride, self.padding, self.groups
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, g={self.groups})"
        )
