"""Trainable parameter type."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` registered as trainable by :class:`~repro.nn.Module`.

    Parameters default to ``requires_grad=True`` and are discovered by
    ``Module.parameters()`` when assigned as module attributes.
    """

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(np.asarray(data), requires_grad=requires_grad, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"
