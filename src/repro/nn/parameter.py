"""Trainable parameter type."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

# The ``data`` slot descriptor of Tensor; Parameter shadows it with a
# version-counting property below.
_TENSOR_DATA = Tensor.data


class Parameter(Tensor):
    """A :class:`Tensor` registered as trainable by :class:`~repro.nn.Module`.

    Parameters default to ``requires_grad=True`` and are discovered by
    ``Module.parameters()`` when assigned as module attributes.

    Every rebind of :attr:`data` bumps :attr:`version` — optimizer steps,
    ``load_state_dict``, weight-fault injection and layer conversion all
    assign ``p.data``, so the counter is a reliable staleness key for
    anything derived from the weights (the approximate-GEMM kernel-plan
    cache keys on it; see :mod:`repro.approx.plan`).
    """

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        self._version = -1  # construction itself lands the counter on 0
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(np.asarray(data), requires_grad=requires_grad, name=name)

    @property
    def data(self) -> np.ndarray:
        return _TENSOR_DATA.__get__(self, type(self))

    @data.setter
    def data(self, value) -> None:
        _TENSOR_DATA.__set__(self, value)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter of weight rebinds since construction."""
        return self._version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"
