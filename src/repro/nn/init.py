"""Weight-initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"cannot infer fan for weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape, rng=None, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He initialisation for ReLU networks."""
    fan_in, _ = _fan_in_out(tuple(shape))
    std = gain / np.sqrt(fan_in)
    return new_rng(rng).normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape, rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialisation."""
    fan_in, fan_out = _fan_in_out(tuple(shape))
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return new_rng(rng).uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
